"""Packaging for the Wijsen PODS 2013 CERTAINTY reproduction.

The version is read from ``src/repro/__init__.py`` (single source of truth)
without importing the package, so building does not require dependencies.
"""

import pathlib
import re

from setuptools import find_packages, setup

_INIT = pathlib.Path(__file__).parent / "src" / "repro" / "__init__.py"
_VERSION = re.search(
    r'^__version__\s*=\s*"([^"]+)"', _INIT.read_text(encoding="utf-8"), re.MULTILINE
).group(1)

setup(
    name="repro-certainty-wijsen13",
    version=_VERSION,
    description=(
        "Certain conjunctive query answering over uncertain databases: "
        "a reproduction of Wijsen, 'Charting the Tractability Frontier of "
        "Certain Conjunctive Query Answering' (PODS 2013), with a "
        "compiled-plan certainty engine"
    ),
    long_description=(pathlib.Path(__file__).parent / "PAPER.md").read_text(encoding="utf-8"),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Database",
        "Topic :: Scientific/Engineering",
    ],
)
