"""E7 — Theorem 3 scaling: polynomial solver versus exponential oracle.

The paper's claim is asymptotic (membership in P).  The observable
consequence is that the Theorem 3 solver's runtime grows polynomially with
the database size while the repair-enumeration oracle blows up with the
number of conflicting blocks.  Each benchmark below pins one point of that
comparison; the EXPERIMENTS.md table collects the trend.
"""

import pytest

from repro.certainty import certain_brute_force, certain_terminal_cycles
from repro.query import cycle_query_c, figure4_query
from repro.workloads import synthetic_instance

C2 = cycle_query_c(2)


@pytest.mark.parametrize("size", [4, 8, 16, 32])
def test_theorem3_solver_scaling_c2(benchmark, size):
    db = synthetic_instance(C2, seed=size, domain_size=2 * size, witnesses=size, noise_per_relation=size)
    result = benchmark(certain_terminal_cycles, db, C2)
    assert result in (True, False)


@pytest.mark.parametrize("size", [2, 4, 6])
def test_oracle_scaling_c2(benchmark, size):
    """The oracle on the *same generator* quickly becomes the bottleneck."""
    db = synthetic_instance(C2, seed=size, domain_size=2 * size, witnesses=size, noise_per_relation=size)
    result = benchmark(certain_brute_force, db, C2)
    assert result == certain_terminal_cycles(db, C2)


@pytest.mark.parametrize("size", [2, 4, 8])
def test_theorem3_solver_scaling_figure4(benchmark, size):
    query = figure4_query(include_r0=False)
    db = synthetic_instance(query, seed=size, domain_size=2 * size, witnesses=size, noise_per_relation=size)
    result = benchmark(certain_terminal_cycles, db, query)
    assert result in (True, False)
