"""E2 — Figure 2: join tree, closures and attack graph of q1.

Measures attack-graph construction (the classifier's core primitive) on the
paper's q1 and on larger random queries, and asserts the structure reported
in Examples 2–4 (G ⤳ F is the only strong attack; strong 2- and 3-cycles
exist).
"""

from repro.attacks import AttackGraph, enumerate_cycles, has_strong_cycle
from repro.core import ComplexityBand, classify
from repro.query import build_join_tree, figure2_q1
from repro.workloads import random_acyclic_query


def test_fig2_join_tree_construction(benchmark):
    query = figure2_q1()
    tree = benchmark(build_join_tree, query)
    assert tree.satisfies_connectedness()


def test_fig2_attack_graph_construction(benchmark):
    query = figure2_q1()
    graph = benchmark(AttackGraph, query)
    strong = [a for a in graph.attacks if a.is_strong]
    assert len(strong) == 1
    assert (strong[0].source.name, strong[0].target.name) == ("S", "R")


def test_fig2_cycle_classification(benchmark):
    graph = AttackGraph(figure2_q1())
    cycles = benchmark(enumerate_cycles, graph)
    assert any(c.is_strong and c.length == 2 for c in cycles)
    assert any(c.is_strong and c.length == 3 for c in cycles)
    assert has_strong_cycle(graph)


def test_fig2_full_classification(benchmark):
    classification = benchmark(classify, figure2_q1())
    assert classification.band is ComplexityBand.CONP_COMPLETE


def test_attack_graph_on_larger_random_query(benchmark):
    query = random_acyclic_query(seed=42, atoms=8, max_arity=4)
    graph = benchmark(AttackGraph, query)
    assert len(graph.atoms) == 8
