"""E12 — #CERTAINTY: repair counting and the uniform-repair probability."""

from repro.counting import count_satisfying_repairs, repair_frequency
from repro.probability import BIDDatabase, probability_by_worlds
from repro.query import fuxman_miller_cfree_example
from repro.workloads import figure1_database, figure1_query, uniform_random_instance


def test_counting_on_figure1(benchmark):
    db = figure1_database()
    query = figure1_query()
    count = benchmark(count_satisfying_repairs, db, query)
    assert count == 3


def test_repair_frequency_matches_uniform_probability(benchmark):
    query = fuxman_miller_cfree_example()
    db = uniform_random_instance(query, seed=6, domain_size=2, facts_per_relation=3)

    def both():
        frequency = repair_frequency(db, query)
        probability = probability_by_worlds(BIDDatabase.uniform_repairs(db), query)
        return frequency, probability

    frequency, probability = benchmark(both)
    assert frequency == probability


def test_counting_medium_instance(benchmark):
    query = fuxman_miller_cfree_example()
    db = uniform_random_instance(query, seed=8, domain_size=3, facts_per_relation=6)
    count = benchmark(count_satisfying_repairs, db, query)
    assert count >= 0
