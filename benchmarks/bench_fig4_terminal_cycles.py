"""E3 — Figure 4 / Theorem 3: weak terminal cycles.

Asserts the attack-graph structure of the Figure 4 query (three weak
terminal 2-cycles plus the unattacked R0), and measures the Theorem 3 solver
against the brute-force oracle on the same instances — the solver must agree
and stay fast while the oracle's cost explodes with the number of
conflicting blocks.
"""

from repro.attacks import AttackGraph, enumerate_cycles
from repro.certainty import certain_brute_force, certain_terminal_cycles
from repro.core import ComplexityBand, classify
from repro.query import figure4_query
from repro.workloads import synthetic_instance


def test_fig4_classification(benchmark):
    classification = benchmark(classify, figure4_query())
    assert classification.band is ComplexityBand.PTIME_NOT_FO
    cycles = enumerate_cycles(AttackGraph(figure4_query()))
    assert len(cycles) == 3 and all(c.is_weak and c.is_terminal for c in cycles)


def test_fig4_theorem3_solver_small(benchmark):
    query = figure4_query()
    db = synthetic_instance(query, seed=1, domain_size=3, witnesses=2, noise_per_relation=2)
    certain = benchmark(certain_terminal_cycles, db, query)
    assert certain == certain_brute_force(db, query)


def test_fig4_theorem3_solver_medium(benchmark):
    query = figure4_query(include_r0=False)
    db = synthetic_instance(query, seed=2, domain_size=6, witnesses=8, noise_per_relation=6)
    result = benchmark(certain_terminal_cycles, db, query)
    assert result in (True, False)


def test_fig4_oracle_small(benchmark):
    """The exponential oracle on the same small instance (reference point)."""
    query = figure4_query()
    db = synthetic_instance(query, seed=1, domain_size=3, witnesses=2, noise_per_relation=2)
    certain = benchmark(certain_brute_force, db, query)
    assert certain == certain_terminal_cycles(db, query)
