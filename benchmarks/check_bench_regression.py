"""Guard the columnar-store benchmark against performance regressions.

Compares a freshly emitted ``columnar_store`` report against the committed
baseline (``BENCH_columnar_store.json``) and fails when any size present in
both regresses by more than ``--factor`` (default 2×).  The compared metric
is the *speedup ratio* (object seconds / columnar seconds), not absolute
wall-clock: ratios are stable across machines of different speed, so the
guard works on shared CI boxes where raw timings are meaningless.

The snapshot shrink factor (pickled fact graph / pickled columnar snapshot)
is guarded the same way — it is timing-free and must never silently decay.

Run with::

    python benchmarks/emit_bench.py --suite columnar_store --smoke \
        --output bench_columnar_store_smoke.json
    python benchmarks/check_bench_regression.py \
        BENCH_columnar_store.json bench_columnar_store_smoke.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, Sequence


def _rows_by_size(report: Dict) -> Dict[int, Dict]:
    return {row["planted_chains"]: row for row in report.get("results", ())}


def check_regression(baseline: Dict, current: Dict, factor: float) -> int:
    """Return 0 when *current* holds up against *baseline*, 1 otherwise."""
    if current.get("benchmark") != "columnar_store" or baseline.get(
        "benchmark"
    ) != "columnar_store":
        print("ERROR: both reports must come from the columnar_store suite", file=sys.stderr)
        return 1
    if not current.get("all_agree", False):
        print("ERROR: current report records a backend disagreement", file=sys.stderr)
        return 1
    baseline_rows = _rows_by_size(baseline)
    current_rows = _rows_by_size(current)
    shared = sorted(set(baseline_rows) & set(current_rows))
    if not shared:
        print("ERROR: the reports share no benchmark sizes", file=sys.stderr)
        return 1
    status = 0
    for size in shared:
        base, cur = baseline_rows[size], current_rows[size]
        base_speedup = base.get("speedup_vs_object") or 0.0
        cur_speedup = cur.get("speedup_vs_object") or 0.0
        floor = base_speedup / factor
        verdict = "ok" if cur_speedup >= floor else "REGRESSED"
        print(
            f"chains={size:5d} baseline={base_speedup:6.2f}x "
            f"current={cur_speedup:6.2f}x floor={floor:6.2f}x {verdict}"
        )
        if cur_speedup < floor:
            status = 1
        base_shrink = base.get("snapshot_shrink_factor") or 0.0
        cur_shrink = cur.get("snapshot_shrink_factor") or 0.0
        if cur_shrink < base_shrink / factor:
            print(
                f"chains={size:5d} snapshot shrink REGRESSED: "
                f"baseline={base_shrink:.2f}x current={cur_shrink:.2f}x",
                file=sys.stderr,
            )
            status = 1
    return status


def main(argv: Sequence[str] = ()) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=pathlib.Path, help="committed baseline JSON")
    parser.add_argument("current", type=pathlib.Path, help="freshly emitted JSON")
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="maximum tolerated regression factor on the speedup ratio",
    )
    args = parser.parse_args(list(argv) or None)
    baseline = json.loads(args.baseline.read_text())
    current = json.loads(args.current.read_text())
    return check_regression(baseline, current, args.factor)


if __name__ == "__main__":
    raise SystemExit(main())
