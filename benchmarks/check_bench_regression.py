"""Guard the emitted benchmark reports against performance regressions.

Compares a freshly emitted report against the committed baseline of the
same suite and fails when a guarded metric regresses by more than
``--factor`` (default 2×).  The guarded metrics are *ratios* (columnar
speedup over the object path, parallel speedup over sequential, snapshot
shrink factor), not absolute wall-clock: ratios are stable across machines
of different speed, so the guard works on shared CI boxes where raw
timings are meaningless.

Supported suites (detected from the reports' ``benchmark`` field, which
must match between baseline and current):

``columnar_store``
    Guards ``speedup_vs_object`` and ``snapshot_shrink_factor`` per shared
    planted-chain size.

``all_bands``
    Guards ``speedup_vs_object`` per band per shared size, and requires
    the in-run backend identity checks to have passed.

``parallel_answers``
    Guards ``speedup_vs_sequential`` per worker count — but only when the
    current machine has at least 4 CPUs: parallel scaling ratios measured
    on 1–2 core boxes are dominated by process startup, not by the code
    under test.  The skip is recorded in the guard's output (and the
    agreement / purify-fast-path checks still run).

``sharded_runtime``
    Guards ``speedup_delta_vs_rebuild`` per worker count (worst case over
    the suite's sizes), with the same recorded cpu-count skip as
    ``parallel_answers``.  The in-run identity check (``all_agree``) and
    the O(delta) shipping invariant (``all_deltas_below_snapshot``: no
    single delta flush may outweigh a pickled full snapshot) are enforced
    unconditionally — they are correctness properties, not timings.

``service_load``
    Guards the concurrent-vs-sequential throughput ratio of the
    multi-tenant service (same cpu-count skip).  The in-run identity check
    (``all_answers_match``: every admitted answer equals a sequential
    per-tenant replay) and the isolation check (``zero_intern_collisions``)
    are enforced unconditionally.

``fault_recovery``
    The chaos identity checks are enforced unconditionally: every answer
    produced under the injected fault schedule must equal the sequential
    replay (``all_agree``), the fault plan must actually have fired
    (``faults_exercised``), and the durable store must not have lost a
    single acknowledged batch across the injected-fsync crash
    (``zero_acknowledged_lost``).  The two bigger-is-better ratios —
    ``throughput_retained_under_faults`` and ``recovery_responsiveness``
    per size — are guarded only on runners with at least
    :data:`MIN_CPUS_FOR_PARALLEL_CHECK` CPUs (recorded skip below that):
    both are dominated by worker respawn cost, which a contended 1–2 core
    box measures too noisily to guard on.

``durability``
    Guards ``speedup_restart_vs_rebuild`` per shared changelog-tail size —
    cold restart from segment + changelog tail must keep beating a
    full-history rebuild.  The suite is single-process, so the ratio is
    checked on any CPU count.  The in-run recovery identity
    (``all_agree``: recovered facts, ``mutation_version``, and certain
    answers equal the pre-crash live state) is enforced unconditionally.

Run with::

    python benchmarks/emit_bench.py --suite columnar_store --smoke \
        --output bench_columnar_store_smoke.json
    python benchmarks/check_bench_regression.py \
        BENCH_columnar_store.json bench_columnar_store_smoke.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, Sequence

#: Below this CPU count, parallel-scaling ratios are skipped (recorded in
#: the output): a 1–2 core box measures process startup, not scaling.
MIN_CPUS_FOR_PARALLEL_CHECK = 4


def _rows_by_size(report: Dict, key: str = "planted_chains") -> Dict[int, Dict]:
    return {row[key]: row for row in report.get("results", ())}


def _check_ratio(label: str, baseline: float, current: float, factor: float) -> int:
    floor = baseline / factor
    verdict = "ok" if current >= floor else "REGRESSED"
    print(
        f"{label} baseline={baseline:6.2f}x current={current:6.2f}x "
        f"floor={floor:6.2f}x {verdict}"
    )
    return 0 if current >= floor else 1


def check_columnar_store(baseline: Dict, current: Dict, factor: float) -> int:
    """Guard the columnar_store speedup and snapshot shrink per size."""
    if not current.get("all_agree", False):
        print("ERROR: current report records a backend disagreement", file=sys.stderr)
        return 1
    baseline_rows = _rows_by_size(baseline)
    current_rows = _rows_by_size(current)
    shared = sorted(set(baseline_rows) & set(current_rows))
    if not shared:
        print("ERROR: the reports share no benchmark sizes", file=sys.stderr)
        return 1
    status = 0
    for size in shared:
        base, cur = baseline_rows[size], current_rows[size]
        status |= _check_ratio(
            f"chains={size:5d}",
            base.get("speedup_vs_object") or 0.0,
            cur.get("speedup_vs_object") or 0.0,
            factor,
        )
        base_shrink = base.get("snapshot_shrink_factor") or 0.0
        cur_shrink = cur.get("snapshot_shrink_factor") or 0.0
        if cur_shrink < base_shrink / factor:
            print(
                f"chains={size:5d} snapshot shrink REGRESSED: "
                f"baseline={base_shrink:.2f}x current={cur_shrink:.2f}x",
                file=sys.stderr,
            )
            status = 1
    return status


def check_all_bands(baseline: Dict, current: Dict, factor: float) -> int:
    """Guard the per-band columnar speedup ratios of the all_bands suite."""
    if not current.get("all_agree", False):
        print("ERROR: current report records a backend disagreement", file=sys.stderr)
        return 1
    baseline_bands = {band["band"]: band for band in baseline.get("bands", ())}
    current_bands = {band["band"]: band for band in current.get("bands", ())}
    shared_bands = [name for name in baseline_bands if name in current_bands]
    if not shared_bands:
        print("ERROR: the reports share no bands", file=sys.stderr)
        return 1
    status = 0
    compared = 0
    for name in shared_bands:
        baseline_rows = _rows_by_size(baseline_bands[name], key="size")
        current_rows = _rows_by_size(current_bands[name], key="size")
        for size in sorted(set(baseline_rows) & set(current_rows)):
            compared += 1
            status |= _check_ratio(
                f"band={name:18s} size={size:5d}",
                baseline_rows[size].get("speedup_vs_object") or 0.0,
                current_rows[size].get("speedup_vs_object") or 0.0,
                factor,
            )
    if not compared:
        print("ERROR: the reports share no (band, size) cells", file=sys.stderr)
        return 1
    return status


def check_parallel_answers(baseline: Dict, current: Dict, factor: float) -> int:
    """Guard parallel scaling per worker count; skip ratios on small boxes."""
    if not current.get("all_agree", False):
        print(
            "ERROR: current report records a parallel/sequential disagreement",
            file=sys.stderr,
        )
        return 1
    fast_path = current.get("purify_fast_path", {})
    if not fast_path.get("zero_copies", True):
        print(
            "ERROR: purify copied an already-purified database", file=sys.stderr
        )
        return 1
    cpus = current.get("cpu_count") or 0
    if cpus < MIN_CPUS_FOR_PARALLEL_CHECK:
        # Recorded skip: ratios from a box this small measure process
        # startup, not the sharded loop.  Agreement was still checked above.
        print(
            f"SKIPPED: parallel-scaling ratio checks skipped "
            f"(cpu_count={cpus} < {MIN_CPUS_FOR_PARALLEL_CHECK}); "
            f"agreement and purify fast-path checks passed"
        )
        return 0
    baseline_rows = {row["workers"]: row for row in baseline.get("results", ())}
    current_rows = {row["workers"]: row for row in current.get("results", ())}
    shared = sorted(set(baseline_rows) & set(current_rows))
    if not shared:
        print("ERROR: the reports share no worker counts", file=sys.stderr)
        return 1
    status = 0
    for workers in shared:
        status |= _check_ratio(
            f"workers={workers}",
            baseline_rows[workers].get("speedup_vs_sequential") or 0.0,
            current_rows[workers].get("speedup_vs_sequential") or 0.0,
            factor,
        )
    return status


def _worst_sharded_speedups(report: Dict) -> Dict[int, float]:
    """Per worker count, the minimum delta-vs-rebuild speedup over sizes."""
    worst: Dict[int, float] = {}
    for row in report.get("results", ()):
        for worker_row in row.get("workers", ()):
            workers = worker_row["workers"]
            speedup = worker_row.get("speedup_delta_vs_rebuild") or 0.0
            worst[workers] = min(worst.get(workers, speedup), speedup)
    return worst


def check_sharded_runtime(baseline: Dict, current: Dict, factor: float) -> int:
    """Guard delta-shipping vs snapshot-rebuild; skip ratios on small boxes."""
    if not current.get("all_agree", False):
        print(
            "ERROR: current report records a sharded/sequential disagreement",
            file=sys.stderr,
        )
        return 1
    if not current.get("all_deltas_below_snapshot", False):
        print(
            "ERROR: a delta flush outweighed a full snapshot "
            "(delta shipping is not O(delta))",
            file=sys.stderr,
        )
        return 1
    cpus = current.get("cpu_count") or 0
    if cpus < MIN_CPUS_FOR_PARALLEL_CHECK:
        # Recorded skip, mirroring parallel_answers: the delta-vs-rebuild
        # ratio is dominated by pool respawn cost, which a contended 1–2
        # core CI box measures too noisily to guard on.  Agreement and the
        # O(delta) invariant were still enforced above.
        print(
            f"SKIPPED: delta-vs-rebuild ratio checks skipped "
            f"(cpu_count={cpus} < {MIN_CPUS_FOR_PARALLEL_CHECK}); "
            f"agreement and delta-below-snapshot checks passed"
        )
        return 0
    baseline_worst = _worst_sharded_speedups(baseline)
    current_worst = _worst_sharded_speedups(current)
    shared = sorted(set(baseline_worst) & set(current_worst))
    if not shared:
        print("ERROR: the reports share no worker counts", file=sys.stderr)
        return 1
    status = 0
    for workers in shared:
        status |= _check_ratio(
            f"workers={workers}",
            baseline_worst[workers],
            current_worst[workers],
            factor,
        )
    return status


def check_service_load(baseline: Dict, current: Dict, factor: float) -> int:
    """Guard the multi-tenant service suite; skip the ratio on small boxes.

    The identity assertion (every concurrent answer equals the sequential
    per-tenant replay) and the isolation assertion (zero cross-tenant
    intern-id collisions) are enforced unconditionally.  The concurrent-vs
    -sequential throughput ratio is only guarded on runners with at least
    :data:`MIN_CPUS_FOR_PARALLEL_CHECK` CPUs — below that, the concurrent
    run measures GIL churn and thread wakeups, not the serving layer.
    """
    if not current.get("all_answers_match", False):
        print(
            "ERROR: current report records a service answer diverging "
            "from the sequential replay",
            file=sys.stderr,
        )
        return 1
    if not current.get("zero_intern_collisions", False):
        print(
            "ERROR: current report records a cross-tenant intern-id "
            "collision (tenant isolation broken)",
            file=sys.stderr,
        )
        return 1
    cpus = current.get("cpu_count") or 0
    if cpus < MIN_CPUS_FOR_PARALLEL_CHECK:
        # Recorded skip: identity and isolation were still enforced above.
        print(
            f"SKIPPED: service throughput ratio check skipped "
            f"(cpu_count={cpus} < {MIN_CPUS_FOR_PARALLEL_CHECK}); "
            f"answer-identity and intern-isolation checks passed"
        )
        return 0
    return _check_ratio(
        "service_load throughput",
        baseline.get("throughput_ratio_vs_sequential") or 0.0,
        current.get("throughput_ratio_vs_sequential") or 0.0,
        factor,
    )


def check_durability(baseline: Dict, current: Dict, factor: float) -> int:
    """Guard restart-vs-rebuild per tail; recovery identity unconditional.

    No cpu-count skip: both legs are single-process and the ratio divides
    out machine speed, so it is meaningful even on a 1-core runner.
    """
    if not current.get("all_agree", False):
        print(
            "ERROR: current report records a recovered database diverging "
            "from the pre-crash state",
            file=sys.stderr,
        )
        return 1
    baseline_rows = _rows_by_size(baseline, key="tail")
    current_rows = _rows_by_size(current, key="tail")
    shared = sorted(set(baseline_rows) & set(current_rows))
    if not shared:
        print("ERROR: the reports share no changelog-tail sizes", file=sys.stderr)
        return 1
    status = 0
    for tail in shared:
        status |= _check_ratio(
            f"tail={tail:6d}",
            baseline_rows[tail].get("speedup_restart_vs_rebuild") or 0.0,
            current_rows[tail].get("speedup_restart_vs_rebuild") or 0.0,
            factor,
        )
    return status


def check_fault_recovery(baseline: Dict, current: Dict, factor: float) -> int:
    """Chaos identity unconditional; recovery ratios guarded on big boxes."""
    if not current.get("all_agree", False):
        print(
            "ERROR: current report records an answer under injected faults "
            "diverging from the sequential replay",
            file=sys.stderr,
        )
        return 1
    if not current.get("zero_acknowledged_lost", False):
        print(
            "ERROR: current report records an acknowledged batch lost "
            "across the injected crash",
            file=sys.stderr,
        )
        return 1
    if not current.get("faults_exercised", False):
        print(
            "ERROR: current report records the fault plan never firing "
            "(the chaos run measured nothing)",
            file=sys.stderr,
        )
        return 1
    cpus = current.get("cpu_count") or 0
    if cpus < MIN_CPUS_FOR_PARALLEL_CHECK:
        # Recorded skip: identity, fault-coverage, and durability checks
        # were still enforced above.  The guarded ratios price worker
        # respawns, which small contended boxes time too noisily.
        print(
            f"SKIPPED: fault-recovery ratio checks skipped "
            f"(cpu_count={cpus} < {MIN_CPUS_FOR_PARALLEL_CHECK}); "
            f"identity, fault-coverage, and zero-loss checks passed"
        )
        return 0
    baseline_rows = _rows_by_size(baseline, key="size")
    current_rows = _rows_by_size(current, key="size")
    shared = sorted(set(baseline_rows) & set(current_rows))
    if not shared:
        print("ERROR: the reports share no benchmark sizes", file=sys.stderr)
        return 1
    status = 0
    for size in shared:
        base, cur = baseline_rows[size], current_rows[size]
        status |= _check_ratio(
            f"size={size:5d} retained      ",
            base.get("throughput_retained_under_faults") or 0.0,
            cur.get("throughput_retained_under_faults") or 0.0,
            factor,
        )
        status |= _check_ratio(
            f"size={size:5d} responsiveness",
            base.get("recovery_responsiveness") or 0.0,
            cur.get("recovery_responsiveness") or 0.0,
            factor,
        )
    return status


_CHECKERS = {
    "columnar_store": check_columnar_store,
    "all_bands": check_all_bands,
    "parallel_answers": check_parallel_answers,
    "sharded_runtime": check_sharded_runtime,
    "service_load": check_service_load,
    "durability": check_durability,
    "fault_recovery": check_fault_recovery,
}


def check_regression(baseline: Dict, current: Dict, factor: float) -> int:
    """Return 0 when *current* holds up against *baseline*, 1 otherwise."""
    suite = current.get("benchmark")
    if suite != baseline.get("benchmark"):
        print(
            "ERROR: baseline and current reports come from different suites",
            file=sys.stderr,
        )
        return 1
    checker = _CHECKERS.get(suite)
    if checker is None:
        print(
            f"ERROR: no regression checks defined for suite {suite!r} "
            f"(supported: {', '.join(sorted(_CHECKERS))})",
            file=sys.stderr,
        )
        return 1
    return checker(baseline, current, factor)


def main(argv: Sequence[str] = ()) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=pathlib.Path, help="committed baseline JSON")
    parser.add_argument("current", type=pathlib.Path, help="freshly emitted JSON")
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="maximum tolerated regression factor on the guarded ratios",
    )
    args = parser.parse_args(list(argv) or None)
    baseline = json.loads(args.baseline.read_text())
    current = json.loads(args.current.read_text())
    return check_regression(baseline, current, args.factor)


if __name__ == "__main__":
    raise SystemExit(main())
