"""E11 — Section 8: classifying a whole corpus on the tractability frontier."""

from repro.core import ComplexityBand, band_counts, classify, classify_corpus
from repro.workloads import mixed_corpus, random_corpus


def test_census_of_mixed_corpus(benchmark):
    corpus = mixed_corpus(40, seed=17)
    classifications = benchmark(classify_corpus, corpus)
    counts = band_counts(classifications)
    assert sum(counts.values()) == len(corpus)
    assert counts[ComplexityBand.FO] > 0
    assert counts[ComplexityBand.CONP_COMPLETE] > 0


def test_classification_throughput_random_queries(benchmark):
    corpus = random_corpus(60, seed=23)

    def classify_all():
        return [classify(q).band for q in corpus]

    bands = benchmark(classify_all)
    assert len(bands) == 60
