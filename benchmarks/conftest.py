"""Benchmark harness configuration.

Every benchmark module regenerates one experiment of EXPERIMENTS.md (one
figure, example, or theorem of the paper).  Benchmarks both *measure* the
runtime of the relevant algorithm and *assert* the qualitative claim the
paper makes (who wins, what the answer is), so ``pytest benchmarks/
--benchmark-only`` doubles as an end-to-end reproduction run.

The repository-root ``conftest.py`` already puts ``src/`` on ``sys.path``.
"""
