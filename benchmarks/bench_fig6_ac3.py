"""E4 — Figures 5–7 / Theorem 4: AC(3) and its fact-graph algorithm.

Reproduces the Figure 6 instance (not certain; the Figure 7 repairs falsify
it) and measures the Theorem 4 algorithm on Figure 6 and on larger ring
instances.
"""

from repro.certainty import certain_brute_force, certain_cycle_query
from repro.core import ComplexityBand, classify
from repro.model.repairs import is_repair
from repro.query import cycle_query_ac, satisfies
from repro.workloads import figure6_database, figure7_falsifying_repairs, ring_instance


def test_fig6_theorem4_algorithm(benchmark):
    db = figure6_database()
    query = cycle_query_ac(3)
    certain = benchmark(certain_cycle_query, db, query)
    assert certain is False
    assert certain == certain_brute_force(db, query)


def test_fig7_falsifying_repairs(benchmark):
    db = figure6_database()
    query = cycle_query_ac(3)

    def check_repairs():
        repairs = figure7_falsifying_repairs()
        return all(is_repair(db, r) and not satisfies(r, query) for r in repairs)

    assert benchmark(check_repairs)


def test_ac3_classification(benchmark):
    classification = benchmark(classify, cycle_query_ac(3))
    assert classification.band is ComplexityBand.PTIME_CYCLE_QUERY


def test_ac3_ring_instance_medium(benchmark):
    query, db = ring_instance(3, copies=8, chords=6, encoded_fraction=0.5, seed=3)
    result = benchmark(certain_cycle_query, db, query)
    assert result in (True, False)


def test_ac4_ring_instance(benchmark):
    query, db = ring_instance(4, copies=6, chords=4, encoded_fraction=0.5, seed=4)
    result = benchmark(certain_cycle_query, db, query)
    assert result in (True, False)
