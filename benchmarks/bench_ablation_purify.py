"""Ablation — the cost and necessity of purification (Lemma 1).

DESIGN.md calls out purification as a design choice to ablate: every
polynomial solver purifies first, and the graph-based solvers rely on it for
their structural preconditions.  This module measures the purification step
in isolation and the end-to-end solver with purification included, on
databases with a controlled amount of irrelevant noise.
"""

from repro.certainty import certain_cycle_query, certain_terminal_cycles, purify
from repro.query import cycle_query_c
from repro.workloads import ring_instance, synthetic_instance


def test_purification_cost_with_noise(benchmark):
    query = cycle_query_c(2)
    db = synthetic_instance(query, seed=5, domain_size=20, witnesses=15, noise_per_relation=40)
    purified = benchmark(purify, db, query)
    assert len(purified) <= len(db)


def test_solver_end_to_end_with_noise(benchmark):
    query = cycle_query_c(2)
    db = synthetic_instance(query, seed=5, domain_size=20, witnesses=15, noise_per_relation=40)
    result = benchmark(certain_terminal_cycles, db, query)
    assert result in (True, False)


def test_theorem4_purification_share(benchmark):
    query, db = ring_instance(3, copies=10, chords=5, encoded_fraction=0.5, seed=6)
    # Add irrelevant ring edges pointing at vertices with no outgoing edge.
    r1 = query.schema()["R1"]
    for i in range(30):
        db.add(r1.fact(f"noise{i}", f"dead_end{i}"))
    result = benchmark(certain_cycle_query, db, query)
    assert result in (True, False)


def test_purify_only_theorem4_instance(benchmark):
    query, db = ring_instance(3, copies=10, chords=5, encoded_fraction=0.5, seed=6)
    r1 = query.schema()["R1"]
    for i in range(30):
        db.add(r1.fact(f"noise{i}", f"dead_end{i}"))
    purified = benchmark(purify, db, query)
    assert len(purified) < len(db)
