"""E5 — Theorem 1: first-order expressibility and the certain FO rewriting.

Measures construction and evaluation of the certain first-order rewriting
for FO-band queries and checks agreement with the operational peeling solver
and the brute-force oracle.
"""

from repro.certainty import certain_brute_force, certain_fo
from repro.core import ComplexityBand, classify
from repro.fo import certain_rewriting, evaluate_sentence
from repro.query import fuxman_miller_cfree_example, path_query
from repro.workloads import synthetic_instance, uniform_random_instance


def test_rewriting_construction(benchmark):
    formula = benchmark(certain_rewriting, path_query(4))
    assert formula.free_variables() == frozenset()


def test_fo_solver_on_fm_query(benchmark):
    query = fuxman_miller_cfree_example()
    db = synthetic_instance(query, seed=7, domain_size=8, witnesses=10, noise_per_relation=10)
    result = benchmark(certain_fo, db, query)
    assert result == certain_brute_force(db, query)


def test_rewriting_evaluation_matches_oracle(benchmark):
    query = fuxman_miller_cfree_example()
    formula = certain_rewriting(query)
    db = uniform_random_instance(query, seed=5, domain_size=3, facts_per_relation=5)

    result = benchmark(evaluate_sentence, db, formula)
    assert result == certain_brute_force(db, query)


def test_classification_of_fo_band(benchmark):
    assert benchmark(classify, fuxman_miller_cfree_example()).band is ComplexityBand.FO
