"""E5 — Theorem 1: first-order expressibility and the certain FO rewriting.

Measures construction, compilation and evaluation of the certain
first-order rewriting for FO-band queries and checks agreement with the
operational peeling solver and the brute-force oracle.  The naive
active-domain evaluator and the compiled set-at-a-time plans
(:mod:`repro.fo.compile`) are benchmarked on the same adversarial workload
as ``emit_bench.py``, so ``pytest-benchmark`` numbers and the
``BENCH_fo_rewriting.json`` trajectory measure the same thing.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from emit_bench import bench_query, fo_bench_instance

from repro.certainty import certain_brute_force, certain_fo, certain_fo_rewriting
from repro.core import ComplexityBand, classify
from repro.fo import certain_rewriting, certain_rewriting_cached, evaluate_sentence
from repro.query import fuxman_miller_cfree_example, path_query
from repro.workloads import synthetic_instance, uniform_random_instance


def test_rewriting_construction(benchmark):
    formula = benchmark(certain_rewriting, path_query(4))
    assert formula.free_variables() == frozenset()


def test_rewriting_compilation(benchmark):
    from repro.fo.compile import _compile  # bypass the memo: time real compilation

    formula = certain_rewriting(path_query(4))
    root = benchmark(_compile, formula)
    assert root.free == frozenset()


def test_fo_solver_on_fm_query(benchmark):
    query = fuxman_miller_cfree_example()
    db = synthetic_instance(query, seed=7, domain_size=8, witnesses=10, noise_per_relation=10)
    result = benchmark(certain_fo, db, query)
    assert result == certain_brute_force(db, query)


def test_compiled_rewriting_solver_on_fm_query(benchmark):
    query = fuxman_miller_cfree_example()
    db = synthetic_instance(query, seed=7, domain_size=8, witnesses=10, noise_per_relation=10)
    result = benchmark(certain_fo_rewriting, db, query)
    assert result == certain_brute_force(db, query)


def test_rewriting_evaluation_matches_oracle(benchmark):
    query = fuxman_miller_cfree_example()
    formula = certain_rewriting(query)
    db = uniform_random_instance(query, seed=5, domain_size=3, facts_per_relation=5)

    result = benchmark(evaluate_sentence, db, formula)
    assert result == certain_brute_force(db, query)


def test_naive_evaluation_on_bench_workload(benchmark):
    """The naive active-domain recursion on the emit_bench workload (small)."""
    query = bench_query()
    formula = certain_rewriting_cached(query)
    db = fo_bench_instance(query, size=16)
    result = benchmark(evaluate_sentence, db, formula, compiled=False)
    assert result == certain_fo(db, query)


def test_compiled_evaluation_on_bench_workload(benchmark):
    """The compiled set-at-a-time plans on the same workload, 4× larger."""
    query = bench_query()
    formula = certain_rewriting_cached(query)
    db = fo_bench_instance(query, size=64)
    result = benchmark(evaluate_sentence, db, formula, compiled=True)
    assert result == certain_fo(db, query)


def test_compiled_beats_naive_on_bench_workload():
    """The headline claim of this PR: compiled ≥ 10× faster than naive."""
    from emit_bench import _best_of

    query = bench_query()
    formula = certain_rewriting_cached(query)
    db = fo_bench_instance(query, size=32)
    compiled_result = evaluate_sentence(db, formula, compiled=True)  # warm the plan memo
    naive_result = evaluate_sentence(db, formula, compiled=False)
    assert compiled_result == naive_result
    compiled_seconds = _best_of(3, lambda: evaluate_sentence(db, formula, compiled=True))
    naive_seconds = _best_of(3, lambda: evaluate_sentence(db, formula, compiled=False))
    assert naive_seconds > 10 * compiled_seconds


def test_classification_of_fo_band(benchmark):
    assert benchmark(classify, fuxman_miller_cfree_example()).band is ComplexityBand.FO
