"""E-engine — compiled plans and sessions vs. one-shot solving.

The engine separates one-time query compilation (classification, dispatch,
atom ordering) from per-database execution.  These benchmarks measure the
two workloads that separation targets:

* a *repeated-query* workload: the same query solved many times against one
  database (a session reuses the compiled plan and the shared fact index;
  the pre-engine path re-classified and re-indexed every call);
* a *certain-answers* workload: one open query with many candidate tuples
  (the batched path classifies the query shape once; the historical loop
  classified once per candidate).

The classification-count assertions encode the contract, not just timing:
``CertaintySession.certain_answers`` must classify at least 2× less often
than once-per-candidate on a 10-candidate workload.  Counts are asserted on
a single warm-up run outside the timing loop, because the benchmark harness
replays the callable many rounds.
"""

from repro import CertaintySession, PlanCache, UncertainDatabase, parse_facts, parse_query
from repro.certainty.solver import certain_answers, solve
from repro.core import classify_invocations, reset_classify_invocations
from repro.query import answer_tuples
from repro.workloads import figure1_database, figure1_query


def _employee_workload(n_candidates: int = 10, conflicts: int = 4):
    """An open query with *n_candidates* candidate answers over a mixed database."""
    query = parse_query("Emp(name | dept), Dept(dept | city)", free=["name"])
    schema = query.schema()
    rows = []
    for i in range(n_candidates):
        rows.append(f"Emp('e{i}' | 'd{i % 3}')")
    for j in range(3):
        rows.append(f"Dept('d{j}' | 'city{j}')")
    for j in range(conflicts):
        rows.append(f"Dept('d{j % 3}' | 'elsewhere{j}')")  # key-conflicting cities
    db = UncertainDatabase(parse_facts(rows, schema=schema))
    return db, query


def test_repeated_query_session(benchmark):
    """100 solves of one FO query through a session: one classification total."""
    db = figure1_database()
    query = figure1_query()
    cache = PlanCache(maxsize=8)

    def repeated_session_solves():
        with CertaintySession(db, plan_cache=cache) as session:
            return sum(1 for _ in range(100) if session.is_certain(query))

    reset_classify_invocations()
    assert repeated_session_solves() == 0  # Figure 1: the query is not certain
    # At most one classification for 100 solves (zero when the process-wide
    # classify_cached memo already knows the query).
    assert classify_invocations() <= 1

    certain_count = benchmark(repeated_session_solves)
    assert certain_count == 0


def test_repeated_query_one_shot(benchmark):
    """Baseline: the same 100 solves through the one-shot API (shared cache)."""
    db = figure1_database()
    query = figure1_query()

    def repeated_one_shot_solves():
        return sum(1 for _ in range(100) if solve(db, query).certain)

    certain_count = benchmark(repeated_one_shot_solves)
    assert certain_count == 0


def test_certain_answers_batched_classification(benchmark):
    """Acceptance: >= 2x fewer classify calls than once-per-candidate."""
    db, query = _employee_workload(n_candidates=10)
    n_candidates = len(answer_tuples(query, db.facts))
    assert n_candidates == 10
    cache = PlanCache(maxsize=8)

    def batched():
        with CertaintySession(db, plan_cache=cache) as session:
            return session.certain_answers(query)

    reset_classify_invocations()
    answers = batched()
    calls = classify_invocations()
    # Every candidate whose department block is conflict-free stays certain.
    assert answers == certain_answers(db, query)
    # The batched session classifies the query *shape* at most once per
    # compiled plan, never per candidate: >= 2x reduction on 10 candidates
    # (the pre-engine loop classified 10 times per certain_answers call).
    assert calls <= n_candidates / 2
    assert calls <= 1

    benchmark(batched)


def test_certain_answers_scales_with_candidates(benchmark):
    """The batched path on a 40-candidate workload stays classification-flat."""
    db, query = _employee_workload(n_candidates=40, conflicts=6)
    cache = PlanCache(maxsize=8)

    def batched():
        with CertaintySession(db, plan_cache=cache) as session:
            return session.certain_answers(query)

    reset_classify_invocations()
    answers = batched()
    assert len(answers) <= 40
    assert classify_invocations() <= 1  # flat in the number of candidates

    benchmark(batched)
