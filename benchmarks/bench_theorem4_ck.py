"""E8 — Theorem 4 / Corollary 1: AC(k) and C(k) scaling in size and in k.

Measures the fact-graph algorithm as the number of ring copies grows and as
``k`` grows, and cross-checks the direct C(k) algorithm against the Lemma 9
reduction on a small instance.
"""

import pytest

from repro.certainty import (
    certain_brute_force,
    certain_ck_via_reduction,
    certain_cycle_query,
)
from repro.query import cycle_query_c
from repro.workloads import ring_instance, uniform_random_instance


@pytest.mark.parametrize("copies", [4, 8, 16])
def test_theorem4_scaling_in_database_size(benchmark, copies):
    query, db = ring_instance(3, copies=copies, chords=copies // 2, encoded_fraction=0.5, seed=copies)
    result = benchmark(certain_cycle_query, db, query)
    assert result in (True, False)


@pytest.mark.parametrize("k", [2, 3, 4, 5])
def test_theorem4_scaling_in_k(benchmark, k):
    query, db = ring_instance(k, copies=5, chords=3, encoded_fraction=0.5, seed=k)
    result = benchmark(certain_cycle_query, db, query)
    assert result in (True, False)


def test_ck_direct_vs_lemma9_reduction(benchmark):
    query = cycle_query_c(3)
    db = uniform_random_instance(query, seed=9, domain_size=3, facts_per_relation=4)
    direct = benchmark(certain_cycle_query, db, query)
    assert direct == certain_ck_via_reduction(db, query) == certain_brute_force(db, query)


def test_ck_oracle_reference(benchmark):
    query = cycle_query_c(3)
    db = uniform_random_instance(query, seed=9, domain_size=3, facts_per_relation=4)
    result = benchmark(certain_brute_force, db, query)
    assert result == certain_cycle_query(db, query)
