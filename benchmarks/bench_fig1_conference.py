"""E1 — Figure 1: the conference-planning example.

Regenerates the four repairs of the Figure 1 database, checks that the query
"Will Rome host some A conference?" holds in exactly three of them (hence is
not certain), and measures repair enumeration and the FO certainty check.
"""

from repro.certainty import certain_fo
from repro.model.repairs import enumerate_repairs
from repro.query import satisfies
from repro.workloads import figure1_database, figure1_query


def test_fig1_repair_enumeration(benchmark):
    db = figure1_database()
    query = figure1_query()

    def enumerate_and_count():
        repairs = list(enumerate_repairs(db))
        return len(repairs), sum(1 for r in repairs if satisfies(r, query))

    total, satisfied = benchmark(enumerate_and_count)
    assert total == 4 and satisfied == 3  # the paper: true in 3 of 4 repairs


def test_fig1_certainty_via_fo_solver(benchmark):
    db = figure1_database()
    query = figure1_query()
    certain = benchmark(certain_fo, db, query)
    assert certain is False


def test_fig1_certainty_at_scale(benchmark):
    """The same query over a database with 200 extra conference rows."""
    db = figure1_database()
    query = figure1_query()
    conference = db.schema["C"]
    ranking = db.schema["R"]
    for i in range(200):
        # Every added conference is uncertain about both its city and its rank,
        # so the enlarged database still has a repair falsifying the query.
        db.add(conference.fact(f"CONF{i}", 2000 + (i % 20), "Rome"))
        db.add(conference.fact(f"CONF{i}", 2000 + (i % 20), "Paris"))
        db.add(ranking.fact(f"CONF{i}", "A"))
        db.add(ranking.fact(f"CONF{i}", "B"))
    certain = benchmark(certain_fo, db, query)
    assert certain is False
