"""E6 — Theorem 2: the reduction from CERTAINTY(q0) to strong-cycle queries.

Measures the θ̂ reduction and checks that it preserves certainty (verified
against the brute-force oracle on small instances), i.e. the equivalence at
the heart of the coNP-completeness proof.
"""

from repro.certainty import Theorem2Reduction, certain_brute_force, purify
from repro.query import figure2_q1, kolaitis_pema_q0
from repro.workloads import uniform_random_instance


def test_reduction_transform(benchmark):
    reduction = Theorem2Reduction(figure2_q1())
    db0 = uniform_random_instance(kolaitis_pema_q0(), seed=11, domain_size=4, facts_per_relation=12)
    transformed = benchmark(reduction.transform, db0)
    assert len(transformed) <= len(figure2_q1()) * len(db0) ** 2


def test_reduction_preserves_certainty(benchmark):
    q0 = kolaitis_pema_q0()
    target = figure2_q1()
    reduction = Theorem2Reduction(target)

    def round_trip(seed):
        db0 = uniform_random_instance(q0, seed=seed, domain_size=3, facts_per_relation=4)
        source = certain_brute_force(purify(db0, q0), q0)
        image = certain_brute_force(reduction.transform(db0), target)
        return source == image

    def run_trials():
        return all(round_trip(seed) for seed in range(5))

    assert benchmark(run_trials)


def test_brute_force_on_reduced_hard_instance(benchmark):
    """Brute force on the coNP-complete target query (reference for scaling)."""
    q0 = kolaitis_pema_q0()
    target = figure2_q1()
    db0 = uniform_random_instance(q0, seed=3, domain_size=3, facts_per_relation=5)
    transformed = Theorem2Reduction(target).transform(db0)
    result = benchmark(certain_brute_force, transformed, target)
    assert result in (True, False)
