"""E10 — Section 7: IsSafe, safe-plan evaluation, and Proposition 1."""

from repro.probability import (
    BIDDatabase,
    compare_frontiers,
    is_safe,
    probability_by_worlds,
    probability_safe_plan,
    proposition1_holds,
)
from repro.query import figure2_q1, fuxman_miller_cfree_example, kolaitis_pema_q0, parse_query
from repro.workloads import named_corpus, uniform_random_instance

SAFE_QUERY = parse_query("A(x | y), B(x | z)")


def test_issafe_over_corpus(benchmark):
    corpus = [q for q in named_corpus() if not q.has_self_join]
    verdicts = benchmark(lambda: [is_safe(q) for q in corpus])
    assert len(verdicts) == len(corpus)
    assert not is_safe(kolaitis_pema_q0())


def test_safe_plan_evaluation(benchmark):
    db = uniform_random_instance(SAFE_QUERY, seed=2, domain_size=4, facts_per_relation=8)
    bid = BIDDatabase.uniform_repairs(db)
    result = benchmark(probability_safe_plan, bid, SAFE_QUERY)
    assert 0 <= result <= 1


def test_world_enumeration_evaluation(benchmark):
    """The exponential evaluator on a small instance (reference point)."""
    db = uniform_random_instance(SAFE_QUERY, seed=2, domain_size=3, facts_per_relation=4)
    bid = BIDDatabase.uniform_repairs(db)
    exact = benchmark(probability_by_worlds, bid, SAFE_QUERY)
    assert exact == probability_safe_plan(bid, SAFE_QUERY)


def test_proposition1_check(benchmark):
    query = fuxman_miller_cfree_example()
    db = uniform_random_instance(query, seed=4, domain_size=3, facts_per_relation=4)
    bid = BIDDatabase.uniform_repairs(db)
    assert benchmark(proposition1_holds, bid, query)


def test_frontier_comparison(benchmark):
    queries = [SAFE_QUERY, fuxman_miller_cfree_example(), figure2_q1(), kolaitis_pema_q0()]
    comparisons = benchmark(compare_frontiers, queries)
    assert all(c.consistent_with_theorem6 for c in comparisons)


def test_scoped_session_bridge(benchmark):
    """Proposition 1 through the engine: band dispatch on a private id space.

    The bridge runs a scoped :class:`CertaintySession` (compiled rewritings
    for the FO band, brute force only when forced) over ``db'`` instead of
    calling ``certain_brute_force`` directly; its verdict must match brute
    force, and the process-global intern table must stay untouched.
    """
    from repro.certainty.brute_force import certain_brute_force
    from repro.probability import certainty_session_for
    from repro.store import global_intern_table

    query = fuxman_miller_cfree_example()
    db = uniform_random_instance(query, seed=4, domain_size=3, facts_per_relation=4)
    bid = BIDDatabase.uniform_repairs(db)
    global_size_before = len(global_intern_table())

    def decide():
        with certainty_session_for(bid) as session:
            return session.is_certain(query)

    verdict = benchmark(decide)
    assert verdict == certain_brute_force(bid.restrict_to_certain_blocks(), query)
    assert len(global_intern_table()) == global_size_before
