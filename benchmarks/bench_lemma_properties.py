"""E9 — Lemmas 2–7: structural properties checked over a query corpus."""

from repro.attacks import AttackGraph, lemma_report
from repro.query import is_acyclic
from repro.workloads import mixed_corpus


def test_lemma_checks_over_corpus(benchmark):
    corpus = [q for q in mixed_corpus(20, seed=13) if not q.has_self_join and is_acyclic(q)]

    def check_all():
        violations = 0
        for query in corpus:
            graph = AttackGraph(query)
            violations += sum(1 for _, holds in lemma_report(graph) if not holds)
        return violations

    assert benchmark(check_all) == 0


def test_lemma_checks_single_large_query(benchmark):
    from repro.workloads import random_acyclic_query

    query = random_acyclic_query(seed=7, atoms=8, max_arity=4)
    graph = AttackGraph(query)
    report = benchmark(lemma_report, graph)
    assert all(holds for _, holds in report)
