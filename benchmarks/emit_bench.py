"""Emit benchmark JSON reports recording the engine's performance trajectory.

Nine suites:

``fo_rewriting`` (default) → ``BENCH_fo_rewriting.json``
    Times the certain first-order rewriting of Theorem 1 under the two
    evaluation strategies of :class:`repro.fo.evaluate.FormulaEvaluator` —
    the naive active-domain recursion and the compiled set-at-a-time plans
    of :mod:`repro.fo.compile` — on a scaling workload and checks that they
    agree.  The workload (:func:`fo_bench_instance`) is adversarial for the
    naive strategy: the early relations of a path query are dense while the
    final relation is sparse, so the instance is rarely certain and the
    naive evaluator must exhaust the ``|adom|^k`` quantifier space before
    concluding — exactly the exponential behaviour the compiled plans
    eliminate.

``parallel_answers`` → ``BENCH_parallel_answers.json``
    Times the batched sequential ``certain_answers`` against the sharded
    :class:`repro.engine.ParallelCertaintySession` at 1/2/4 workers on a
    large FO-band open-query workload, cross-checks that every strategy
    returns the identical answer set, and records the purify fast path
    (zero database copies on already-purified inputs).  Speedup scales
    with physical cores; ``cpu_count`` is recorded alongside so numbers
    from single-core CI boxes are read in context.

``incremental_views`` → ``BENCH_incremental_views.json``
    Times a :class:`repro.incremental.ViewManager`-maintained certain-answer
    view against recompute-per-mutation over a stream of single-block
    mutations, at several database scales.  After every mutation the
    maintained answers are differentially checked against a cold
    ``certain_answers``, and the support index is used to assert that the
    view re-decided *exactly* the candidates whose decisions read the
    mutated block (plus delta-discovered new candidates) — the block-local
    maintenance the paper's FO rewritings make possible.

``columnar_store`` → ``BENCH_columnar_store.json``
    Times batched ``certain_answers`` on the interned columnar backend
    (integer-row kernels, compiled candidate enumeration, set-at-a-time
    batched deciding) against the object-level reference backend on the
    same scaling workload, asserting in-run that the two backends return
    identical answer sets at every size.  Also records the pickled size of
    the columnar worker snapshot versus the fact object graph, the store's
    per-component memory footprint, and the process-wide intern-table
    statistics.  ``benchmarks/check_bench_regression.py`` guards CI against
    the recorded speedups regressing more than 2× versus the committed
    baseline.

``sharded_runtime`` → ``BENCH_sharded_runtime.json``
    Times the delta-shipped shard runtime
    (:class:`repro.engine.ShardedCertaintySession`: long-lived block-hash
    -sharded workers receiving O(delta) mutation payloads) against the
    full-snapshot-rebuild baseline (:class:`ParallelCertaintySession`,
    whose pool rebuilds and re-ships the whole columnar snapshot after any
    mutation) at 1/2/4 workers on a mixed read/write stream — bursty,
    Zipf-skewed mutation batches interleaved with ``certain_answers``
    reads.  The identical pre-recorded stream replays under every
    strategy; after every step the answers are checked against a
    sequential replay, and the run asserts that the largest single delta
    flush stays below one pickled snapshot (bytes shipped scale with the
    delta, not the database).  The headline ratio compares the two
    strategies at the *same* worker count, so it measures serialization
    and pool-respawn cost, not parallelism, and is meaningful on any core
    count (``cpu_count`` is recorded alongside).

``all_bands`` → ``BENCH_all_bands.json``
    Times the columnar id kernels against the object reference path on one
    workload per complexity band of the trichotomy: the FO band (compiled
    rewriting on an open path query), the PTIME-not-FO band (Theorem 3
    terminal-cycle recursion on the Figure 4 query), the PTIME cycle-query
    band (Theorem 4 on ``C(3)`` ring instances), and the coNP band (the
    pruned brute-force repair search on Figure 2's ``q1`` over gadget
    instances whose conflicts live only in ``T``, keeping the search tree
    linear on both backends).  Every size asserts in-run that the two
    backends return identical verdicts/answer sets before any timing is
    recorded.

``service_load`` → ``BENCH_service_load.json``
    Drives N concurrent tenants (deterministic mixed read/write traces,
    Zipf-skewed keys, tenant-prefixed constants) through the multi-tenant
    :class:`repro.service.CertaintyService` and compares against a
    sequential per-tenant replay on throwaway engine sessions.  Band-aware
    admission routes FO-band reads inline (p50/p95 latency reported
    separately) and queues PTIME-band reads onto the bounded worker pool
    (completion p50/p95).  Every answer is asserted identical in-run to the
    sequential replay, and the tenants' private intern tables are asserted
    pairwise disjoint — zero cross-tenant id collisions.

``durability`` → ``BENCH_durability.json``
    Times cold restart from the durability tier
    (:class:`repro.durability.DurableStore`: checksummed segment snapshot
    + framed write-ahead changelog) against rebuilding the database by
    replaying the full mutation history from its initial facts.  One
    mutation stream runs per *tail* size; the checkpoint lands ``tail``
    mutations before the end, so restart decodes the segment and replays
    exactly ``tail`` changelog records (``tail=0`` is the snapshot-only
    restart, the largest tail replays the whole log).  Both legs are timed
    to the same finish line — a served ``certain_answers`` — and every
    restart asserts in-run that the recovered facts, ``mutation_version``,
    and certain answers equal the pre-crash live state.  Single-process,
    so the guarded restart-vs-rebuild ratio holds on any CI box.

``fault_recovery`` → ``BENCH_fault_recovery.json``
    Replays the sharded-runtime mutation stream twice — fault-free, then
    under a deterministic :class:`repro.faults.FaultPlan` that kills shard
    workers mid-stream and drops a dispatch pipe — and records how much of
    the clean throughput the supervised runtime retains while every
    per-step answer set stays identical to a sequential replay
    (``throughput_retained_under_faults``; no answer may differ, degrade,
    or be dropped while workers die).  Post-kill dispatches (the ones that
    re-spawn and re-bootstrap a worker) are timed separately:
    ``recovery_p50_seconds`` / ``recovery_max_seconds``, with
    ``recovery_responsiveness`` comparing them against the fault-free
    per-step p50.  A durability leg drives the same stream through a
    ``sync="commit"`` :class:`repro.durability.DurableStore` under injected
    fsync failures and a torn changelog write, crashes, recovers, and
    asserts zero acknowledged-but-lost batches.

Run with::

    PYTHONPATH=src python benchmarks/emit_bench.py            # full sizes
    PYTHONPATH=src python benchmarks/emit_bench.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/emit_bench.py --suite parallel_answers
    PYTHONPATH=src python benchmarks/emit_bench.py --suite incremental_views
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import pickle
import random
import statistics
import sys
import tempfile
import threading
import time
from typing import Dict, List, Optional, Sequence

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.certainty import is_purified, purify, purify_copy_count, reset_purify_copy_count
from repro.durability import DurableStore
from repro.engine import (
    CertaintySession,
    ParallelCertaintySession,
    ShardedCertaintySession,
)
from repro.faults import FaultPlan, FaultSpec, inject
from repro.fo import certain_rewriting_cached, compile_formula, evaluate_sentence
from repro.model.database import UncertainDatabase
from repro.model.symbols import Variable
from repro.query import parse_query
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.evaluation import answer_tuples
from repro.query.families import figure2_q1, figure4_query, path_query
from repro.service import INLINE, CertaintyService
from repro.store import global_intern_table
from repro.workloads import (
    apply_batch,
    bursty_mutation_stream,
    multi_tenant_workload,
    mutation_stream,
    replay_trace,
    synthetic_instance,
    zipfian_instance,
)
from repro.workloads.instances import ring_instance

#: Default scaling sizes (active-domain size n; facts grow linearly in n).
FULL_SIZES = (8, 16, 32, 64, 96)
SMOKE_SIZES = (8, 16)


def bench_query() -> ConjunctiveQuery:
    """The benchmark query: ``path_query(3)``, an FO-band three-atom chain."""
    return path_query(3)


def fo_bench_instance(query: ConjunctiveQuery, size: int, seed: int = 5) -> UncertainDatabase:
    """A database of scale *size* that is hard for naive FO evaluation.

    All but the last relation receive ``2·size`` random facts over a
    domain of *size* constants; the last relation only ``size // 4`` — so
    witnesses almost never complete, certainty usually fails, and the naive
    evaluator cannot short-circuit its quantifier loops.
    """
    rng = random.Random(seed)
    domain = [f"c{i}" for i in range(size)]
    relations = [atom.relation for atom in query.atoms]
    db = UncertainDatabase()
    for position, relation in enumerate(relations):
        count = 2 * size if position < len(relations) - 1 else max(1, size // 4)
        for _ in range(count):
            db.add(relation.fact(*[rng.choice(domain) for _ in range(relation.arity)]))
    return db


def _best_of(repeats: int, run) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmark(sizes: Sequence[int], repeats: int = 3, seed: int = 5) -> Dict:
    """Time naive vs compiled evaluation per size; verify agreement."""
    query = bench_query()
    formula = certain_rewriting_cached(query)
    compile_start = time.perf_counter()
    compile_formula(formula)
    compile_seconds = time.perf_counter() - compile_start

    results: List[Dict] = []
    for size in sizes:
        db = fo_bench_instance(query, size, seed=seed)
        compiled_result = evaluate_sentence(db, formula, compiled=True)
        naive_result = evaluate_sentence(db, formula, compiled=False)
        agree = compiled_result == naive_result
        compiled_seconds = _best_of(
            repeats, lambda: evaluate_sentence(db, formula, compiled=True)
        )
        naive_seconds = _best_of(
            repeats, lambda: evaluate_sentence(db, formula, compiled=False)
        )
        results.append(
            {
                "size": size,
                "facts": len(db),
                "certain": compiled_result,
                "agree": agree,
                "naive_seconds": naive_seconds,
                "compiled_seconds": compiled_seconds,
                "speedup": naive_seconds / compiled_seconds if compiled_seconds else None,
            }
        )
    return {
        "benchmark": "fo_rewriting",
        "query": str(query),
        "formula_compile_seconds": compile_seconds,
        "repeats": repeats,
        "results": results,
        "largest_size_speedup": results[-1]["speedup"] if results else None,
        "all_agree": all(r["agree"] for r in results),
    }


#: Planted-chain counts for the parallel_answers suite (the actual candidate
#: count is higher: cross-links between chains create extra matches).
PARALLEL_FULL_CANDIDATES = 1024
PARALLEL_SMOKE_CANDIDATES = 48

#: Worker counts compared against the sequential baseline.
PARALLEL_WORKER_COUNTS = (1, 2, 4)


def parallel_bench_query() -> ConjunctiveQuery:
    """The FO-band open query: ``path_query(3)`` with its head variable free."""
    base = path_query(3)
    return ConjunctiveQuery(base.atoms, free_variables=[Variable("x1")])


def parallel_bench_instance(
    query: ConjunctiveQuery, candidates: int, seed: int = 13
) -> UncertainDatabase:
    """A database with ~*candidates* candidate answers and heavy key conflicts.

    Each candidate ``x1 = s{i}`` roots one witness chain; every chain link
    gets extra key-conflicting facts so the certain rewriting must reason
    over multi-fact blocks for every candidate — the per-candidate work the
    sharded loop distributes.
    """
    rng = random.Random(seed)
    relations = [atom.relation for atom in query.atoms]
    db = UncertainDatabase()
    for i in range(candidates):
        chain = [f"s{i}"] + [f"v{i}_{level}" for level in range(1, len(relations) + 1)]
        conflicted = rng.random() < 0.75  # ~25% of chains stay certain
        for level, relation in enumerate(relations):
            db.add(relation.fact(chain[level], chain[level + 1]))
            if conflicted:
                # Conflicting claims inside the block of every chain link.
                # Live targets (other chains' nodes) keep the rewriting's
                # universal quantifier chasing real continuations; dead
                # targets give the falsifier a pick with no continuation, so
                # a fair share of candidates decide NOT-certain and the
                # sequential-vs-parallel cross-check covers both branches.
                for conflict in range(3):
                    if conflict == 0 and level < len(relations) - 1:
                        # No fact ever continues from a dead node, so a
                        # repair picking this conflict breaks the chain.
                        target = f"dead{rng.randrange(candidates)}"
                    else:
                        target = f"v{rng.randrange(candidates)}_{level + 1}"
                    db.add(relation.fact(chain[level], target))
        # Cross-links between chains keep the join fan-out honest.
        for _ in range(3):
            level = rng.randrange(len(relations))
            relation = relations[level]
            db.add(
                relation.fact(
                    f"v{rng.randrange(candidates)}_{level}",
                    f"v{rng.randrange(candidates)}_{level + 1}",
                )
            )
    return db


def run_parallel_benchmark(
    candidates: int, repeats: int = 3, seed: int = 13
) -> Dict:
    """Sequential vs parallel certain answers at 1/2/4 workers, cross-checked."""
    query = parallel_bench_query()
    db = parallel_bench_instance(query, candidates, seed=seed)

    with CertaintySession(db) as session:
        candidate_count = len(answer_tuples(query, session.index))
        sequential_answers = session.certain_answers(query)
        sequential_seconds = _best_of(
            repeats, lambda: session.certain_answers(query)
        )

    results: List[Dict] = []
    all_agree = True
    for workers in PARALLEL_WORKER_COUNTS:
        with ParallelCertaintySession(
            db, max_workers=workers, mode="process", min_parallel_candidates=1
        ) as parallel_session:
            parallel_answers = parallel_session.certain_answers(query)
            agree = parallel_answers == sequential_answers
            all_agree = all_agree and agree
            parallel_seconds = _best_of(
                repeats, lambda: parallel_session.certain_answers(query)
            )
        results.append(
            {
                "workers": workers,
                "parallel_seconds": parallel_seconds,
                "speedup_vs_sequential": (
                    sequential_seconds / parallel_seconds if parallel_seconds else None
                ),
                "answers": len(parallel_answers),
                "agree": agree,
            }
        )

    # The purify fast path: re-purifying an already-purified database must
    # copy nothing (the polynomial solvers funnel through purify per call).
    purified = purify(db, query.as_boolean())
    assert is_purified(purified, query.as_boolean())
    reset_purify_copy_count()
    for _ in range(100):
        purify(purified, query.as_boolean())
    zero_copy_purifies = purify_copy_count()

    return {
        "benchmark": "parallel_answers",
        "query": str(query),
        "cpu_count": os.cpu_count(),
        "facts": len(db),
        "planted_chains": candidates,
        "candidate_answers": candidate_count,
        "certain_answers": len(sequential_answers),
        "repeats": repeats,
        "sequential_seconds": sequential_seconds,
        "results": results,
        "all_agree": all_agree,
        "purify_fast_path": {
            "repurify_runs": 100,
            "copies": zero_copy_purifies,
            "zero_copies": zero_copy_purifies == 0,
        },
    }


#: Planted same-key pairs for the sharded_runtime suite (candidate volume).
SHARDED_FULL_SIZES = (64, 256)
SHARDED_SMOKE_SIZES = (16, 48)

#: Shard/worker counts; both strategies run at the *same* count, so the
#: headline ratio isolates snapshot-vs-delta cost rather than parallelism.
SHARDED_WORKER_COUNTS = (1, 2, 4)

#: Mutation batches interleaved with reads in the replayed stream.
SHARDED_FULL_STEPS = 12
SHARDED_SMOKE_STEPS = 5


def sharded_bench_query() -> ConjunctiveQuery:
    """An open same-key join: both atoms key on ``x``.

    Every candidate's support lives in the two blocks keyed by its own
    ``x`` value, which hash to one shard, so decisions stay shard-local
    (no cross-shard fallbacks) and the benchmark measures the runtime, not
    the routing miss path.  The ``'ok'``-constant atom keeps the query
    discriminating: a candidate is certain iff *every* fact in its
    ``S``-block carries ``'ok'``, so the stream's key-conflicting bursts
    flip answers in both directions.
    """
    return parse_query("R(x | y), S(x | 'ok')", free=["x"])


def sharded_bench_instance(
    query: ConjunctiveQuery, size: int, seed: int = 29
) -> UncertainDatabase:
    """*size* planted same-key pairs over a Zipf-skewed noise instance.

    Each pair ``x = s{i}`` contributes one candidate; ~40% get a non-OK
    ``S`` conflict (not certain) and ~30% an extra ``R`` conflict (certain,
    but the rewriting must reason over a multi-fact block).  The Zipfian
    background adds hot blocks the mutation stream keeps hammering.
    """
    rng = random.Random(seed)
    db = zipfian_instance(
        query,
        seed=seed + 1,
        domain_size=max(8, size // 2),
        facts_per_relation=size // 2,
    )
    schema = query.schema()
    relation_r, relation_s = schema["R"], schema["S"]
    for i in range(size):
        key = f"s{i}"
        db.add(relation_r.fact(key, f"w{i}"))
        db.add(relation_s.fact(key, "ok"))
        if rng.random() < 0.4:
            db.add(relation_s.fact(key, f"bad{i}"))
        if rng.random() < 0.3:
            db.add(relation_r.fact(key, f"alt{i}"))
    return db


def _record_stream(query, db0, steps: int, seed: int):
    """Materialize a bursty mutation stream so every strategy replays the
    exact same batches (the generator's live contract needs a scratch db)."""
    scratch = db0.copy()
    batches = []
    for batch in bursty_mutation_stream(query, scratch, steps=steps, seed=seed):
        batches.append(batch)
        apply_batch(scratch, batch)
    return batches


def _replay_stream(db0, batches, query, make_session):
    """Replay the recorded mixed read/write stream on a fresh database copy.

    Returns ``(seconds, per_step_answers, session)`` — the session is
    already closed; its stats survive for the caller to read.
    """
    db = db0.copy()
    session = make_session(db)
    try:
        start = time.perf_counter()
        per_step = [session.certain_answers(query)]
        for batch in batches:
            apply_batch(db, batch)
            per_step.append(session.certain_answers(query))
        seconds = time.perf_counter() - start
    finally:
        session.close()
    return seconds, per_step, session


def run_sharded_benchmark(
    sizes: Sequence[int], steps: int, repeats: int = 3, seed: int = 29
) -> Dict:
    """Delta-shipped shards vs full-snapshot rebuild on a mutation stream.

    Per size the same pre-recorded batches replay under three strategies:
    a sequential :class:`CertaintySession` (the per-step ground truth), a
    full-snapshot-rebuild :class:`ParallelCertaintySession`, and the
    delta-shipped :class:`ShardedCertaintySession` — the latter two at each
    worker count, answers checked step-by-step against the sequential run.
    """
    query = sharded_bench_query()
    results: List[Dict] = []
    all_agree = True
    all_deltas_below_snapshot = True
    for size in sizes:
        db0 = sharded_bench_instance(query, size, seed=seed)
        batches = _record_stream(query, db0, steps, seed=seed + 7)
        mutated_facts = sum(len(batch) for batch in batches)

        sequential_seconds = float("inf")
        expected = None
        for _ in range(repeats):
            seconds, per_step, _session = _replay_stream(
                db0, batches, query, lambda db: CertaintySession(db)
            )
            sequential_seconds = min(sequential_seconds, seconds)
            expected = per_step

        worker_rows: List[Dict] = []
        for workers in SHARDED_WORKER_COUNTS:
            rebuild_seconds = float("inf")
            rebuild_session = None
            rebuild_agree = True
            for _ in range(repeats):
                seconds, per_step, session = _replay_stream(
                    db0,
                    batches,
                    query,
                    lambda db: ParallelCertaintySession(
                        db,
                        max_workers=workers,
                        mode="process",
                        min_parallel_candidates=1,
                        track_bytes=True,
                    ),
                )
                rebuild_agree = rebuild_agree and per_step == expected
                if seconds < rebuild_seconds:
                    rebuild_seconds, rebuild_session = seconds, session

            sharded_seconds = float("inf")
            sharded_session = None
            sharded_agree = True
            snapshot_pickle_bytes = 0
            for _ in range(repeats):
                db = db0.copy()
                session = ShardedCertaintySession(
                    db, n_shards=workers, min_shard_candidates=1
                )
                try:
                    start = time.perf_counter()
                    per_step = [session.certain_answers(query)]
                    for batch in batches:
                        apply_batch(db, batch)
                        per_step.append(session.certain_answers(query))
                    seconds = time.perf_counter() - start
                    # Size of one full snapshot of the *final* store: the
                    # payload a rebuild strategy would ship per worker after
                    # the last mutation.  Every delta flush must undercut it.
                    snapshot_pickle_bytes = len(
                        pickle.dumps(
                            session.store.snapshot(), pickle.HIGHEST_PROTOCOL
                        )
                    )
                finally:
                    session.close()
                sharded_agree = sharded_agree and per_step == expected
                if seconds < sharded_seconds:
                    sharded_seconds, sharded_session = seconds, session

            stats = sharded_session.stats
            delta_below_snapshot = (
                stats.max_flush_bytes < snapshot_pickle_bytes
            )
            agree = rebuild_agree and sharded_agree
            all_agree = all_agree and agree
            all_deltas_below_snapshot = (
                all_deltas_below_snapshot and delta_below_snapshot
            )
            worker_rows.append(
                {
                    "workers": workers,
                    "rebuild_seconds": rebuild_seconds,
                    "rebuilds": rebuild_session.stats.rebuilds,
                    "snapshot_bytes_shipped": (
                        rebuild_session.stats.snapshot_bytes_shipped
                    ),
                    "sharded_seconds": sharded_seconds,
                    "speedup_delta_vs_rebuild": (
                        rebuild_seconds / sharded_seconds
                        if sharded_seconds
                        else None
                    ),
                    "delta_flushes": stats.delta_flushes,
                    "delta_bytes_shipped": stats.delta_bytes_shipped,
                    "delta_facts_shipped": stats.delta_facts_shipped,
                    "max_flush_bytes": stats.max_flush_bytes,
                    "bootstrap_bytes_shipped": stats.bootstrap_bytes_shipped,
                    "snapshot_pickle_bytes": snapshot_pickle_bytes,
                    "delta_below_snapshot": delta_below_snapshot,
                    "shard_decides": stats.shard_decides,
                    "parent_decides": stats.parent_decides,
                    "cross_shard_fallbacks": stats.cross_shard_fallbacks,
                    "worker_restarts": stats.worker_restarts,
                    "agree": agree,
                }
            )
        results.append(
            {
                "size": size,
                "facts": len(db0),
                "steps": steps,
                "mutated_facts": mutated_facts,
                "certain_answers_final": len(expected[-1]),
                "sequential_seconds": sequential_seconds,
                "workers": worker_rows,
            }
        )
    return {
        "benchmark": "sharded_runtime",
        "query": str(query),
        "cpu_count": os.cpu_count(),
        "repeats": repeats,
        "results": results,
        "all_agree": all_agree,
        "all_deltas_below_snapshot": all_deltas_below_snapshot,
    }


#: Planted-chain counts for the incremental_views suite.
INCREMENTAL_FULL_SIZES = (64, 256, 1024)
INCREMENTAL_SMOKE_SIZES = (16, 48)

#: Single-block mutations applied (and differentially checked) per size.
INCREMENTAL_FULL_MUTATIONS = 12
INCREMENTAL_SMOKE_MUTATIONS = 6


def _incremental_mutations(query, chains: int, count: int, seed: int):
    """Single-block mutations against a ``parallel_bench_instance`` database.

    Each mutation adds one key-conflicting fact to the block of an existing
    chain link — the block-local write pattern a mutation-heavy workload
    produces — so the support index can be checked for exact dirtying.
    """
    rng = random.Random(seed)
    relations = [atom.relation for atom in query.atoms]
    ops = []
    for m in range(count):
        level = rng.randrange(len(relations))
        chain = rng.randrange(chains)
        node = f"s{chain}" if level == 0 else f"v{chain}_{level}"
        ops.append(relations[level].fact(node, f"mut{m}"))
    return ops


def run_incremental_benchmark(
    sizes: Sequence[int], mutations: int, seed: int = 21
) -> Dict:
    """Maintained view vs recompute-per-mutation, differentially checked."""
    from repro.incremental import ViewManager, delta_candidates
    from repro.model.database import ChangeSet

    query = parallel_bench_query()
    results: List[Dict] = []
    all_agree = True
    only_dependents = True
    for chains in sizes:
        db = parallel_bench_instance(query, chains, seed=seed)
        with CertaintySession(db) as cold_session, ViewManager(db) as manager:
            materialize_start = time.perf_counter()
            view = manager.register(query)
            materialize_seconds = time.perf_counter() - materialize_start
            assert view.fine_grained, "the FO-band open query must be fine-grained"
            candidate_count = len(view.tracked_candidates)

            maintain_seconds = 0.0
            recompute_seconds = 0.0
            dirty_sizes: List[int] = []
            decisions_before = view.stats.decisions
            for fact in _incremental_mutations(query, chains, mutations, seed + 1):
                expected = view.support.dirty_for(ChangeSet(added=(fact,)))
                tracked_before = view.tracked_candidates
                start = time.perf_counter()
                db.add(fact)  # index update + incremental view maintenance
                maintain_seconds += time.perf_counter() - start
                # Exact dirtying: the view decided the support-dirty
                # candidates plus the delta-discovered new ones — nothing else.
                new = {
                    c
                    for c in delta_candidates(query, manager.session.index, [fact])
                    if c not in tracked_before
                }
                if view.stats.last_decided != len(expected | new):
                    only_dependents = False
                dirty_sizes.append(view.stats.last_decided)
                start = time.perf_counter()
                recomputed = cold_session.certain_answers(query)
                recompute_seconds += time.perf_counter() - start
                if view.answers != recomputed:
                    all_agree = False
        decisions = view.stats.decisions - decisions_before
        results.append(
            {
                "planted_chains": chains,
                "facts": len(db),
                "candidate_answers": candidate_count,
                "mutations": mutations,
                "materialize_seconds": materialize_seconds,
                "maintain_seconds": maintain_seconds,
                "recompute_seconds": recompute_seconds,
                "speedup_vs_recompute": (
                    recompute_seconds / maintain_seconds if maintain_seconds else None
                ),
                "view_decisions": decisions,
                "recompute_decisions": mutations * candidate_count,
                "avg_dirty": sum(dirty_sizes) / len(dirty_sizes) if dirty_sizes else 0,
                "max_dirty": max(dirty_sizes) if dirty_sizes else 0,
                "incremental_refreshes": view.stats.incremental_refreshes,
                "full_refreshes": view.stats.full_refreshes,
            }
        )
    return {
        "benchmark": "incremental_views",
        "query": str(query),
        "cpu_count": os.cpu_count(),
        "results": results,
        "all_agree": all_agree,
        "support_dirties_only_dependents": only_dependents,
        "largest_size_speedup": (
            results[-1]["speedup_vs_recompute"] if results else None
        ),
    }


#: Planted-chain counts for the columnar_store suite.  The small sizes are
#: shared with the smoke run so the committed baseline always covers the
#: sizes the CI regression guard compares against.
COLUMNAR_FULL_SIZES = (16, 48, 64, 256, 1024)
COLUMNAR_SMOKE_SIZES = (16, 48)


def run_columnar_benchmark(
    sizes: Sequence[int], repeats: int = 3, seed: int = 13
) -> Dict:
    """Columnar vs object backend on batched certain answers, cross-checked.

    Every size runs both backends on the *same* database and asserts the
    answer sets are identical before any timing is recorded, so a kernel
    bug can never masquerade as a speedup.
    """
    query = parallel_bench_query()
    results: List[Dict] = []
    all_agree = True
    for chains in sizes:
        db = parallel_bench_instance(query, chains, seed=seed)
        with CertaintySession(db, backend="object") as object_session:
            with CertaintySession(db, backend="columnar") as columnar_session:
                object_answers = object_session.certain_answers(query)
                columnar_answers = columnar_session.certain_answers(query)
                agree = object_answers == columnar_answers
                all_agree = all_agree and agree
                candidate_count = len(columnar_session.candidate_answers(query))
                object_seconds = _best_of(
                    repeats, lambda: object_session.certain_answers(query)
                )
                columnar_seconds = _best_of(
                    repeats, lambda: columnar_session.certain_answers(query)
                )
                # Worker-snapshot wire sizes: integer columns + raw values
                # versus the pickled fact object graph.
                snapshot_bytes = len(
                    pickle.dumps(columnar_session.store.snapshot())
                )
                fact_graph_bytes = len(pickle.dumps(db.facts))
                store_stats = columnar_session.store.memory_stats()
        results.append(
            {
                "planted_chains": chains,
                "facts": len(db),
                "candidate_answers": candidate_count,
                "certain_answers": len(columnar_answers),
                "agree": agree,
                "object_seconds": object_seconds,
                "columnar_seconds": columnar_seconds,
                "speedup_vs_object": (
                    object_seconds / columnar_seconds if columnar_seconds else None
                ),
                "snapshot_pickle_bytes": snapshot_bytes,
                "fact_graph_pickle_bytes": fact_graph_bytes,
                "snapshot_shrink_factor": (
                    fact_graph_bytes / snapshot_bytes if snapshot_bytes else None
                ),
                "store_memory": store_stats,
            }
        )
    return {
        "benchmark": "columnar_store",
        "query": str(query),
        "cpu_count": os.cpu_count(),
        "repeats": repeats,
        "results": results,
        "all_agree": all_agree,
        "largest_size_speedup": (
            results[-1]["speedup_vs_object"] if results else None
        ),
        "intern_table": global_intern_table().memory_stats(),
    }


#: Scale parameter per band for the all_bands suite (chains / planted
#: witnesses / ring copies / conflict gadgets, depending on the band).  The
#: smoke sizes are a prefix of the full sizes so the committed baseline
#: always covers the sizes the CI regression guard compares against.
ALL_BANDS_FULL_SIZES = (8, 16, 64, 256)
ALL_BANDS_SMOKE_SIZES = (8, 16)


def figure4_band_instance(size: int, seed: int = 31) -> UncertainDatabase:
    """A scaling instance for the Figure 4 query (PTIME-not-FO band)."""
    return synthetic_instance(
        figure4_query(),
        seed=seed,
        domain_size=2 * size,
        witnesses=size,
        noise_per_relation=size,
        conflict_rate=0.4,
    )


def conp_band_instance(gadgets: int, falsifiable: bool = True) -> UncertainDatabase:
    """A Figure 2 ``q1`` instance with all conflicts confined to ``T``.

    Each gadget plants one witness whose ``R``/``S``/``P`` blocks are
    singletons; only its ``T`` block carries a conflicting claim
    ``T(x_i, w_i)`` with no matching ``S`` row, so choosing it breaks the
    gadget's witness.  The repair search therefore walks forced singleton
    choices followed by one binary choice per ``T`` block, and its pruning
    (a branch with a completed witness can never falsify) makes the tree
    *linear* in the gadget count on both backends — the falsifying repair
    picks the bad claim in every ``T`` block.

    With ``falsifiable=False`` an unbreakable witness over ``.``-prefixed
    constants is inserted first: its names sort before every gadget name
    (``.`` < digits) and its constants intern first, so both the object
    path's string-ordered and the columnar path's id-ordered block sweeps
    decide its singleton blocks first, complete the witness, and prune
    every branch immediately — the certain verdict is also linear.
    """
    query = figure2_q1()
    schema = {atom.relation.name: atom.relation for atom in query.atoms}
    r, s, t, p = schema["R"], schema["S"], schema["T"], schema["P"]
    db = UncertainDatabase()
    if not falsifiable:
        db.add(r.fact(".u", "a", ".x"))
        db.add(s.fact(".y", ".x", ".z"))
        db.add(t.fact(".x", ".y"))
        db.add(p.fact(".x", ".z"))
    for i in range(gadgets):
        u, x, y, z = (f"{prefix}{i:06d}" for prefix in "uxyz")
        db.add(r.fact(u, "a", x))
        db.add(s.fact(y, x, z))
        db.add(t.fact(x, y))
        db.add(t.fact(x, f"w{i:06d}"))  # conflicting claim; no S row keys w
        db.add(p.fact(x, z))
    return db


def _time_backends(
    query: ConjunctiveQuery,
    db: UncertainDatabase,
    repeats: int,
    allow_exponential: bool = False,
) -> Dict:
    """Decide *query* on both backends, assert identity, time best-of-*repeats*."""
    row: Dict = {"facts": len(db)}
    with CertaintySession(
        db, backend="object", allow_exponential=allow_exponential
    ) as object_session:
        with CertaintySession(
            db, backend="columnar", allow_exponential=allow_exponential
        ) as columnar_session:
            if query.is_boolean:
                object_result = object_session.is_certain(query)
                columnar_result = columnar_session.is_certain(query)
                object_run = lambda: object_session.is_certain(query)  # noqa: E731
                columnar_run = lambda: columnar_session.is_certain(query)  # noqa: E731
                row["certain"] = columnar_result
            else:
                object_result = object_session.certain_answers(query)
                columnar_result = columnar_session.certain_answers(query)
                object_run = lambda: object_session.certain_answers(query)  # noqa: E731
                columnar_run = lambda: columnar_session.certain_answers(query)  # noqa: E731
                row["certain_answers"] = len(columnar_result)
            agree = object_result == columnar_result
            assert agree, f"backends disagree on {query}"
            row["agree"] = agree
            object_seconds = _best_of(repeats, object_run)
            columnar_seconds = _best_of(repeats, columnar_run)
    row["object_seconds"] = object_seconds
    row["columnar_seconds"] = columnar_seconds
    row["speedup_vs_object"] = (
        object_seconds / columnar_seconds if columnar_seconds else None
    )
    return row


def run_all_bands_benchmark(
    sizes: Sequence[int], repeats: int = 3, seed: int = 13
) -> Dict:
    """Columnar vs object path, one workload per band, identity-checked.

    Every (band, size) cell decides the same database on both backends and
    asserts the verdicts/answer sets are identical before timing, so a
    kernel bug in any band can never masquerade as a speedup.
    """
    # The coNP repair search recurses one frame per relevant block; the
    # gadget instances keep the tree linear but still ~5 blocks deep per
    # gadget, so 256 gadgets need more than CPython's default 1000 frames.
    sys.setrecursionlimit(max(sys.getrecursionlimit(), 50_000))

    bands: List[Dict] = []

    fo_query = parallel_bench_query()
    fo_rows = [
        {"size": size, **_time_backends(
            fo_query, parallel_bench_instance(fo_query, size, seed=seed), repeats
        )}
        for size in sizes
    ]
    bands.append(
        {
            "band": "fo",
            "method": "fo-rewriting",
            "query": str(fo_query),
            "results": fo_rows,
        }
    )

    fig4 = figure4_query()
    fig4_rows = [
        {"size": size, **_time_backends(fig4, figure4_band_instance(size), repeats)}
        for size in sizes
    ]
    bands.append(
        {
            "band": "ptime_not_fo",
            "method": "theorem3-terminal-cycles",
            "query": str(fig4),
            "results": fig4_rows,
        }
    )

    cycle_rows = []
    for size in sizes:
        cycle_query, cycle_db = ring_instance(
            3, copies=size, chords=max(2, size // 4), with_sk=False, seed=7
        )
        cycle_rows.append(
            {"size": size, **_time_backends(cycle_query, cycle_db, repeats)}
        )
    bands.append(
        {
            "band": "ptime_cycle_query",
            "method": "theorem4-cycle-query",
            "query": str(cycle_query),
            "results": cycle_rows,
        }
    )

    q1 = figure2_q1()
    conp_rows = []
    for size in sizes:
        row = {
            "size": size,
            **_time_backends(
                q1, conp_band_instance(size), repeats, allow_exponential=True
            ),
        }
        # Cross-check the certain variant too (untimed): the unbreakable
        # witness must yield True on both backends via immediate pruning.
        certain_db = conp_band_instance(size, falsifiable=False)
        with CertaintySession(
            certain_db, backend="object", allow_exponential=True
        ) as object_session:
            with CertaintySession(
                certain_db, backend="columnar", allow_exponential=True
            ) as columnar_session:
                object_verdict = object_session.is_certain(q1)
                columnar_verdict = columnar_session.is_certain(q1)
        assert object_verdict and columnar_verdict, "certain variant must be certain"
        row["certain_variant_agree"] = object_verdict == columnar_verdict
        conp_rows.append(row)
    bands.append(
        {
            "band": "conp",
            "method": "brute-force",
            "query": str(q1),
            "results": conp_rows,
        }
    )

    for band in bands:
        band["all_agree"] = all(r["agree"] for r in band["results"])
        band["largest_size_speedup"] = (
            band["results"][-1]["speedup_vs_object"] if band["results"] else None
        )
    return {
        "benchmark": "all_bands",
        "cpu_count": os.cpu_count(),
        "repeats": repeats,
        "bands": bands,
        "all_agree": all(band["all_agree"] for band in bands),
    }


def _emit_all_bands(args: argparse.Namespace, output: pathlib.Path) -> int:
    if args.sizes:
        sizes: Sequence[int] = args.sizes
    else:
        sizes = ALL_BANDS_SMOKE_SIZES if args.smoke else ALL_BANDS_FULL_SIZES
    # Always best-of-3: the CI regression guard compares speedup ratios
    # against the committed baseline, and single samples are too noisy.
    report = run_all_bands_benchmark(sizes, repeats=3)
    output.write_text(json.dumps(report, indent=2) + "\n")
    for band in report["bands"]:
        print(f"[{band['band']}] {band['method']}")
        for row in band["results"]:
            verdict = row.get("certain", row.get("certain_answers"))
            print(
                f"  size={row['size']:5d} facts={row['facts']:6d} "
                f"result={verdict!s:5s} object={row['object_seconds']:.4f}s "
                f"columnar={row['columnar_seconds']:.4f}s "
                f"speedup={row['speedup_vs_object']:.1f}x"
            )
    print(f"wrote {output}")
    if not report["all_agree"]:
        print("ERROR: columnar and object backends disagree", file=sys.stderr)
        return 1
    return 0


def _emit_columnar_store(args: argparse.Namespace, output: pathlib.Path) -> int:
    if args.sizes:
        sizes: Sequence[int] = args.sizes
    else:
        sizes = COLUMNAR_SMOKE_SIZES if args.smoke else COLUMNAR_FULL_SIZES
    # Always best-of-3: the CI regression guard compares this run's speedup
    # ratios against the committed baseline, and a single millisecond-scale
    # sample on a shared runner is too noisy to guard on (the smoke sizes
    # cost well under a second even with repeats).
    report = run_columnar_benchmark(sizes, repeats=3)
    output.write_text(json.dumps(report, indent=2) + "\n")
    for row in report["results"]:
        print(
            f"chains={row['planted_chains']:5d} facts={row['facts']:6d} "
            f"candidates={row['candidate_answers']:5d} "
            f"object={row['object_seconds']:.4f}s "
            f"columnar={row['columnar_seconds']:.4f}s "
            f"speedup={row['speedup_vs_object']:.1f}x "
            f"snapshot={row['snapshot_pickle_bytes']}B "
            f"({row['snapshot_shrink_factor']:.1f}x smaller)"
        )
    intern = report["intern_table"]
    print(
        f"intern table: {intern['constants']} constants, "
        f"{intern['total_bytes']} bytes"
    )
    print(f"wrote {output}")
    if not report["all_agree"]:
        print("ERROR: columnar and object backends disagree", file=sys.stderr)
        return 1
    return 0


def _emit_incremental_views(args: argparse.Namespace, output: pathlib.Path) -> int:
    if args.sizes:
        sizes: Sequence[int] = args.sizes
    else:
        sizes = INCREMENTAL_SMOKE_SIZES if args.smoke else INCREMENTAL_FULL_SIZES
    mutations = INCREMENTAL_SMOKE_MUTATIONS if args.smoke else INCREMENTAL_FULL_MUTATIONS
    report = run_incremental_benchmark(sizes, mutations)
    output.write_text(json.dumps(report, indent=2) + "\n")
    for row in report["results"]:
        print(
            f"chains={row['planted_chains']:5d} facts={row['facts']:6d} "
            f"candidates={row['candidate_answers']:5d} "
            f"maintain={row['maintain_seconds']:.4f}s "
            f"recompute={row['recompute_seconds']:.4f}s "
            f"speedup={row['speedup_vs_recompute']:.1f}x "
            f"avg_dirty={row['avg_dirty']:.1f}"
        )
    print(f"wrote {output}")
    if not report["all_agree"]:
        print("ERROR: maintained view and cold recompute disagree", file=sys.stderr)
        return 1
    if not report["support_dirties_only_dependents"]:
        print(
            "ERROR: the view re-decided candidates outside the support-dirty set",
            file=sys.stderr,
        )
        return 1
    return 0


def _emit_fo_rewriting(args: argparse.Namespace, output: pathlib.Path) -> int:
    if args.sizes:
        sizes: Sequence[int] = args.sizes
    else:
        sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    report = run_benchmark(sizes, repeats=1 if args.smoke else 3)
    output.write_text(json.dumps(report, indent=2) + "\n")
    for row in report["results"]:
        print(
            f"size={row['size']:4d} facts={row['facts']:5d} certain={row['certain']!s:5s} "
            f"naive={row['naive_seconds']:.4f}s compiled={row['compiled_seconds']:.4f}s "
            f"speedup={row['speedup']:.1f}x"
        )
    print(f"wrote {output}")
    if not report["all_agree"]:
        print("ERROR: naive and compiled evaluation disagree", file=sys.stderr)
        return 1
    return 0


def _emit_parallel_answers(args: argparse.Namespace, output: pathlib.Path) -> int:
    if args.sizes:
        candidates = args.sizes[0]  # chain count for this suite
    else:
        candidates = PARALLEL_SMOKE_CANDIDATES if args.smoke else PARALLEL_FULL_CANDIDATES
    report = run_parallel_benchmark(candidates, repeats=1 if args.smoke else 3)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"sequential: {report['sequential_seconds']:.4f}s over "
        f"{report['candidate_answers']} candidates ({report['facts']} facts, "
        f"{report['cpu_count']} cpus)"
    )
    for row in report["results"]:
        print(
            f"workers={row['workers']} parallel={row['parallel_seconds']:.4f}s "
            f"speedup={row['speedup_vs_sequential']:.2f}x agree={row['agree']}"
        )
    fast_path = report["purify_fast_path"]
    print(
        f"purify fast path: {fast_path['copies']} copies over "
        f"{fast_path['repurify_runs']} re-purifications"
    )
    print(f"wrote {output}")
    if not report["all_agree"]:
        print("ERROR: parallel and sequential answers disagree", file=sys.stderr)
        return 1
    if not fast_path["zero_copies"]:
        print("ERROR: purify copied an already-purified database", file=sys.stderr)
        return 1
    return 0


def _emit_sharded_runtime(args: argparse.Namespace, output: pathlib.Path) -> int:
    if args.sizes:
        sizes: Sequence[int] = args.sizes
    else:
        sizes = SHARDED_SMOKE_SIZES if args.smoke else SHARDED_FULL_SIZES
    steps = SHARDED_SMOKE_STEPS if args.smoke else SHARDED_FULL_STEPS
    report = run_sharded_benchmark(sizes, steps, repeats=1 if args.smoke else 3)
    output.write_text(json.dumps(report, indent=2) + "\n")
    for row in report["results"]:
        print(
            f"size={row['size']:4d} facts={row['facts']:5d} steps={row['steps']} "
            f"mutations={row['mutated_facts']:3d} "
            f"sequential={row['sequential_seconds']:.4f}s "
            f"({report['cpu_count']} cpus)"
        )
        for worker_row in row["workers"]:
            print(
                f"  workers={worker_row['workers']} "
                f"rebuild={worker_row['rebuild_seconds']:.4f}s "
                f"sharded={worker_row['sharded_seconds']:.4f}s "
                f"speedup={worker_row['speedup_delta_vs_rebuild']:.2f}x "
                f"snapshot_shipped={worker_row['snapshot_bytes_shipped']}B "
                f"delta_shipped={worker_row['delta_bytes_shipped']}B "
                f"max_flush={worker_row['max_flush_bytes']}B "
                f"agree={worker_row['agree']}"
            )
    print(f"wrote {output}")
    if not report["all_agree"]:
        print(
            "ERROR: sharded/rebuild answers disagree with sequential replay",
            file=sys.stderr,
        )
        return 1
    if not report["all_deltas_below_snapshot"]:
        print(
            "ERROR: a delta flush outweighed a full snapshot "
            "(delta shipping is not O(delta))",
            file=sys.stderr,
        )
        return 1
    return 0


#: service_load suite: concurrent tenants and per-tenant trace lengths.
SERVICE_TENANTS = 8
SERVICE_FULL_STEPS = 48
SERVICE_SMOKE_STEPS = 12
SERVICE_MAX_WORKERS = 4
SERVICE_QUEUE_DEPTH = 16


def _percentile(samples: Sequence[float], q: float):
    """The q-quantile (nearest-rank on the sorted samples); None when empty."""
    if not samples:
        return None
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def run_service_load_benchmark(
    num_tenants: int,
    steps: int,
    repeats: int = 1,
    seed: int = 17,
    max_workers: int = SERVICE_MAX_WORKERS,
    queue_depth: int = SERVICE_QUEUE_DEPTH,
) -> Dict:
    """Concurrent multi-tenant serving vs sequential per-tenant replay.

    One deterministic mixed read/write trace per tenant (Zipf-skewed keys,
    tenant-prefixed constants).  The *sequential* leg replays every trace
    one after another on throwaway engine sessions — that is both the
    baseline wall-clock and the per-read ground truth.  The *concurrent*
    leg provisions one tenant per trace in a :class:`CertaintyService` and
    drives all traces from concurrent threads through band-aware admission:
    every FO-band read runs inline (its latency recorded separately), every
    PTIME-band read is queued onto the bounded worker pool (its completion
    time recorded).  Every answer is asserted identical in-run to the
    sequential replay, and after the run the tenants' private intern tables
    are asserted pairwise disjoint (zero cross-tenant id collisions).
    """
    workload = multi_tenant_workload(
        num_tenants=num_tenants, steps=steps, seed=seed
    )

    expected: Dict[str, Dict[int, frozenset]] = {}
    sequential_seconds = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        replayed = {
            trace.tenant_id: dict(replay_trace(trace))
            for trace in workload.traces
        }
        sequential_seconds = min(
            sequential_seconds, time.perf_counter() - start
        )
        expected = replayed

    concurrent_seconds = float("inf")
    fo_latencies: List[float] = []
    queued_latencies: List[float] = []
    mismatches = 0
    zero_intern_collisions = True
    service_totals: Dict = {}
    per_tenant_rows: List[Dict] = []

    for _ in range(repeats):
        run_fo: List[float] = []
        run_queued: List[float] = []
        run_mismatches = [0]
        lock = threading.Lock()

        with CertaintyService(
            max_workers=max_workers, queue_depth=queue_depth
        ) as svc:
            start = time.perf_counter()
            for trace in workload.traces:
                svc.create_tenant(trace.tenant_id, facts=trace.facts)

            def drive(trace) -> None:
                answers = expected[trace.tenant_id]
                local_fo: List[float] = []
                local_queued: List[float] = []
                wrong = 0
                for index, (kind, payload) in enumerate(trace.steps):
                    if kind == "write":
                        svc.apply(trace.tenant_id, payload)
                        continue
                    begin = time.perf_counter()
                    ticket = svc.submit(trace.tenant_id, payload)
                    got = ticket.result(timeout=120)
                    elapsed = time.perf_counter() - begin
                    if ticket.outcome == INLINE:
                        local_fo.append(elapsed)
                    else:
                        local_queued.append(elapsed)
                    if got != answers[index]:
                        wrong += 1
                with lock:
                    run_fo.extend(local_fo)
                    run_queued.extend(local_queued)
                    run_mismatches[0] += wrong

            threads = [
                threading.Thread(target=drive, args=(trace,))
                for trace in workload.traces
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            seconds = time.perf_counter() - start

            snapshots = {
                trace.tenant_id: set(
                    svc.tenant(trace.tenant_id).intern_table.snapshot()
                )
                for trace in workload.traces
            }
            for trace in workload.traces:
                values = snapshots[trace.tenant_id]
                if not all(str(v).startswith(trace.prefix) for v in values):
                    zero_intern_collisions = False
            ids = sorted(snapshots)
            for i, left in enumerate(ids):
                for right in ids[i + 1 :]:
                    if snapshots[left] & snapshots[right]:
                        zero_intern_collisions = False

            stats = svc.stats()
            service_totals = stats["totals"]
            per_tenant_rows = [
                {
                    "tenant": trace.tenant_id,
                    "facts": stats["tenants"][trace.tenant_id]["facts"],
                    "reads": trace.reads,
                    "writes": trace.writes,
                    "intern_constants": stats["tenants"][trace.tenant_id][
                        "intern_memory"
                    ]["constants"],
                    "intern_bytes": stats["tenants"][trace.tenant_id][
                        "intern_memory"
                    ]["total_bytes"],
                    "inline_served": stats["tenants"][trace.tenant_id][
                        "admission"
                    ]["inline_served"],
                    "queued": stats["tenants"][trace.tenant_id]["admission"][
                        "queued"
                    ],
                    "rejected": stats["tenants"][trace.tenant_id]["admission"][
                        "rejected"
                    ],
                    "stale_reads": stats["tenants"][trace.tenant_id][
                        "staleness"
                    ]["stale_reads"],
                }
                for trace in workload.traces
            ]

        mismatches += run_mismatches[0]
        if seconds < concurrent_seconds:
            concurrent_seconds = seconds
            fo_latencies = run_fo
            queued_latencies = run_queued

    return {
        "benchmark": "service_load",
        "fo_query": str(workload.fo_query),
        "queued_query": str(workload.queued_query),
        "cpu_count": os.cpu_count(),
        "repeats": repeats,
        "tenants": num_tenants,
        "steps_per_tenant": steps,
        "max_workers": max_workers,
        "queue_depth_cap": queue_depth,
        "fo_requests": len(fo_latencies),
        "queued_requests": len(queued_latencies),
        "fo_p50_seconds": _percentile(fo_latencies, 0.5),
        "fo_p95_seconds": _percentile(fo_latencies, 0.95),
        "queued_p50_seconds": _percentile(queued_latencies, 0.5),
        "queued_p95_seconds": _percentile(queued_latencies, 0.95),
        "sequential_seconds": sequential_seconds,
        "concurrent_seconds": concurrent_seconds,
        "throughput_ratio_vs_sequential": (
            sequential_seconds / concurrent_seconds
            if concurrent_seconds
            else None
        ),
        "all_answers_match": mismatches == 0,
        "answer_mismatches": mismatches,
        "zero_intern_collisions": zero_intern_collisions,
        "service_totals": service_totals,
        "per_tenant": per_tenant_rows,
    }


def _emit_service_load(args: argparse.Namespace, output: pathlib.Path) -> int:
    tenants = args.sizes[0] if args.sizes else SERVICE_TENANTS
    steps = SERVICE_SMOKE_STEPS if args.smoke else SERVICE_FULL_STEPS
    report = run_service_load_benchmark(
        tenants, steps, repeats=1 if args.smoke else 3
    )
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"tenants={report['tenants']} steps={report['steps_per_tenant']} "
        f"workers={report['max_workers']} ({report['cpu_count']} cpus)"
    )
    print(
        f"  fo: {report['fo_requests']} requests "
        f"p50={report['fo_p50_seconds']:.6f}s p95={report['fo_p95_seconds']:.6f}s"
    )
    print(
        f"  queued: {report['queued_requests']} requests "
        f"p50={report['queued_p50_seconds']:.6f}s "
        f"p95={report['queued_p95_seconds']:.6f}s"
    )
    print(
        f"  sequential={report['sequential_seconds']:.4f}s "
        f"concurrent={report['concurrent_seconds']:.4f}s "
        f"ratio={report['throughput_ratio_vs_sequential']:.2f}x "
        f"match={report['all_answers_match']} "
        f"isolated={report['zero_intern_collisions']}"
    )
    print(f"wrote {output}")
    if not report["all_answers_match"]:
        print(
            "ERROR: a service answer diverged from the sequential replay",
            file=sys.stderr,
        )
        return 1
    if not report["zero_intern_collisions"]:
        print(
            "ERROR: two tenants share interned constants "
            "(intern-table isolation broken)",
            file=sys.stderr,
        )
        return 1
    return 0


#: durability suite: changelog tails replayed on restart.  Each tail row
#: runs a stream of ``DURABILITY_PRE_MUTATIONS + tail`` single-op batches,
#: checkpointing ``tail`` mutations before the end — so a (chains, tail)
#: cell is the *same workload* in smoke and full runs, and the smoke tails
#: are a prefix of the full tails (the committed baseline always covers
#: the cells the CI regression guard compares against).
DURABILITY_FULL_TAILS = (0, 1_000, 10_000)
DURABILITY_SMOKE_TAILS = (0, 1_000)
DURABILITY_PRE_MUTATIONS = 2_000
DURABILITY_CHAINS = 48


def run_durability_benchmark(
    tails: Sequence[int],
    pre_mutations: int = DURABILITY_PRE_MUTATIONS,
    chains: int = DURABILITY_CHAINS,
    repeats: int = 3,
    seed: int = 43,
) -> Dict:
    """Cold restart (segment + changelog tail) vs full-history rebuild.

    Per tail, a recorded stream of ``pre_mutations + tail`` single-op
    batches runs against a durably attached database, checkpointing
    ``tail`` mutations before the end.  *Restart* opens the directory —
    segment decode plus exactly ``tail`` replayed changelog records — and
    returns a ready database.  *Rebuild* reconstructs the same database
    from an **empty** one by replaying the full recorded history (initial
    bulk load + every mutation batch), which is what a restart would cost
    without the durability tier.  Before any timing, the restarted
    database's facts, ``mutation_version``, and certain answers are
    asserted identical to the live pre-crash state (and the rebuild leg's
    likewise), so the guarded ratio can never trade correctness for speed.
    """
    query = parallel_bench_query()
    results: List[Dict] = []
    all_agree = True
    with tempfile.TemporaryDirectory(prefix="repro-durability-") as base:
        for tail in tails:
            workdir = pathlib.Path(base) / f"tail{tail}"
            db = parallel_bench_instance(query, chains, seed=seed)
            mutations = pre_mutations + tail
            # The full history an external source-of-truth would replay:
            # the initial bulk load, then every recorded mutation batch.
            history: List = [[("add", fact) for fact in sorted(db.facts, key=str)]]
            durable = DurableStore(workdir, sync="never").attach(db)
            for step, batch in enumerate(
                mutation_stream(
                    query, db, steps=mutations, seed=seed + 1, batch_range=(1, 1)
                )
            ):
                history.append(batch)
                apply_batch(db, batch)
                if step + 1 == pre_mutations:
                    durable.checkpoint()
            with CertaintySession(db) as live_session:
                ground_truth = live_session.certain_answers(query)
            live_facts = db.facts
            live_version = db.mutation_version
            durable.close()  # flush, then abandon — restart reads disk only

            def restart():
                store = DurableStore.open(workdir)
                return store, store.database()

            recovered_store, recovered_db = restart()
            with CertaintySession(recovered_db) as session:
                recovered_answers = session.certain_answers(query)
            agree = (
                recovered_db.facts == live_facts
                and recovered_db.mutation_version == live_version
                and recovered_answers == ground_truth
            )
            all_agree = all_agree and agree
            restart_seconds = _best_of(repeats, restart)

            def rebuild():
                rebuilt = UncertainDatabase()
                for batch in history:
                    apply_batch(rebuilt, batch)
                return rebuilt

            rebuilt_db = rebuild()
            with CertaintySession(rebuilt_db) as session:
                agree = agree and rebuilt_db.facts == live_facts
                agree = agree and session.certain_answers(query) == ground_truth
            all_agree = all_agree and agree
            rebuild_seconds = _best_of(repeats, rebuild)

            wal_files = list(workdir.glob("wal-*.log"))
            segment_files = list(workdir.glob("segment-*.seg"))
            results.append(
                {
                    "tail": tail,
                    "facts": len(live_facts),
                    "mutations": mutations,
                    "replayed_records": recovered_store.stats.replayed_records,
                    "segment_bytes": sum(p.stat().st_size for p in segment_files),
                    "wal_bytes": sum(p.stat().st_size for p in wal_files),
                    "epoch": recovered_store.epoch,
                    "restart_seconds": restart_seconds,
                    "rebuild_seconds": rebuild_seconds,
                    "speedup_restart_vs_rebuild": (
                        rebuild_seconds / restart_seconds if restart_seconds else None
                    ),
                    "agree": agree,
                }
            )
    return {
        "benchmark": "durability",
        "query": str(query),
        "cpu_count": os.cpu_count(),
        "repeats": repeats,
        "planted_chains": chains,
        "pre_mutations": pre_mutations,
        "results": results,
        "all_agree": all_agree,
    }


def _emit_durability(args: argparse.Namespace, output: pathlib.Path) -> int:
    if args.sizes:
        tails: Sequence[int] = args.sizes
    else:
        tails = DURABILITY_SMOKE_TAILS if args.smoke else DURABILITY_FULL_TAILS
    # Always best-of-3: the CI regression guard compares the restart-vs
    # -rebuild ratio against the committed baseline, and single samples of
    # millisecond-scale restarts are too noisy to guard on.
    report = run_durability_benchmark(tails, repeats=3)
    output.write_text(json.dumps(report, indent=2) + "\n")
    for row in report["results"]:
        print(
            f"tail={row['tail']:6d} facts={row['facts']:6d} "
            f"replayed={row['replayed_records']:6d} "
            f"segment={row['segment_bytes']}B wal={row['wal_bytes']}B "
            f"restart={row['restart_seconds']:.4f}s "
            f"rebuild={row['rebuild_seconds']:.4f}s "
            f"speedup={row['speedup_restart_vs_rebuild']:.1f}x "
            f"agree={row['agree']}"
        )
    print(f"wrote {output}")
    if not report["all_agree"]:
        print(
            "ERROR: a recovered database diverged from the pre-crash state",
            file=sys.stderr,
        )
        return 1
    return 0


#: Planted same-key pairs per replayed stream (reuses the sharded-runtime
#: workload so the chaos numbers are comparable to the clean suite's).
FAULT_RECOVERY_FULL_SIZES = (48, 96)
FAULT_RECOVERY_SMOKE_SIZES = (16,)

#: Mutation batches interleaved with reads in the replayed stream.
FAULT_RECOVERY_FULL_STEPS = 10
FAULT_RECOVERY_SMOKE_STEPS = 5

#: Shard workers under chaos.  Two is enough to exercise routing around a
#: dead shard while keeping the spawn cost CI-friendly.
FAULT_RECOVERY_SHARDS = 2


def fault_recovery_plan(shards: int) -> FaultPlan:
    """The deterministic chaos schedule the sharded leg replays under.

    Worker kills are pinned per shard by *command arrival*, so each
    freshly restarted worker dies again a few commands later — the stream
    exercises repeated kill → inline-serve → restart → re-bootstrap
    cycles, not one isolated crash.  The pipe drop lands parent-side and
    exercises the send-path failure handling as well as worker exits.
    """
    specs = [FaultSpec("shard.worker.command", "kill", at=4, shard=0)]
    if shards > 1:
        specs.append(FaultSpec("shard.worker.command", "kill", at=6, shard=1))
    specs.append(FaultSpec("shard.pipe", "drop", at=9))
    return FaultPlan(specs)


def _fault_recovery_shard_leg(
    db0, batches, query, shards: int, repeats: int, plan: Optional[FaultPlan]
) -> Dict:
    """Replay the recorded stream on a supervised sharded session.

    With *plan* the replay runs under injection; either way the per-step
    answers are returned for the caller's identity check, along with
    per-step latencies split into recovery dispatches (a worker restart
    happened inside the step) and ordinary ones.  Best-of-*repeats* on
    total seconds; the step split comes from the fastest run.
    """
    best: Dict = {"seconds": float("inf")}
    for _ in range(repeats):
        db = db0.copy()
        session = ShardedCertaintySession(
            db, n_shards=shards, min_shard_candidates=1, restart_backoff=0.0
        )
        try:
            with inject(plan if plan is not None else FaultPlan(())):
                per_step: List = []
                step_seconds: List[float] = []
                recovery_steps: List[int] = []
                start = time.perf_counter()
                for step in range(len(batches) + 1):
                    if step:
                        apply_batch(db, batches[step - 1])
                    restarts_before = session.stats.worker_restarts
                    step_start = time.perf_counter()
                    per_step.append(session.certain_answers(query))
                    step_seconds.append(time.perf_counter() - step_start)
                    if session.stats.worker_restarts > restarts_before:
                        recovery_steps.append(step)
                seconds = time.perf_counter() - start
            stats = session.stats
        finally:
            session.close()
        if seconds < best["seconds"]:
            recovery = [step_seconds[i] for i in recovery_steps]
            ordinary = [
                s for i, s in enumerate(step_seconds) if i not in recovery_steps
            ]
            best = {
                "seconds": seconds,
                "per_step": per_step,
                "step_p50": statistics.median(ordinary) if ordinary else None,
                "recovery_p50": statistics.median(recovery) if recovery else None,
                "recovery_max": max(recovery) if recovery else None,
                "recovery_dispatches": len(recovery),
                "worker_failures": stats.worker_failures,
                "worker_restarts": stats.worker_restarts,
                "degradations": stats.degradations,
                "deadline_timeouts": stats.deadline_timeouts,
            }
        elif plan is not None and best.get("per_step") != per_step:
            # Identity must hold on every repeat, not just the fastest.
            best["per_step"] = None
    return best


def _fault_recovery_durability_leg(
    query, size: int, steps: int, repeats: int, seed: int
) -> Dict:
    """Commit a stream under injected WAL faults, crash, recover, diff.

    Every batch the store acknowledges (``apply_batch`` returned without a
    :class:`DurabilityError`) must survive the crash: the recovered facts,
    ``mutation_version``, and certain answers are compared against the
    live pre-crash state.  The injected faults are single-shot, so the
    write path's truncate-and-retry must absorb each one — a lost batch
    here means the store acknowledged a commit it never made durable.
    """
    plan = FaultPlan(
        (
            FaultSpec("wal.fsync", "error", at=2),
            FaultSpec("wal.write", "torn", at=4),
            FaultSpec("wal.fsync", "error", at=7),
        )
    )
    with tempfile.TemporaryDirectory(prefix="repro-fault-recovery-") as base:
        workdir = pathlib.Path(base) / "store"
        db = sharded_bench_instance(query, size, seed=seed)
        batches = _record_stream(query, db, steps, seed=seed + 3)
        durable = DurableStore(workdir, sync="commit").attach(db)
        acknowledged = 0
        with inject(plan) as injector:
            for batch in batches:
                apply_batch(db, batch)
                acknowledged += 1
            injected = len(injector.fired)
        with CertaintySession(db) as live_session:
            ground_truth = live_session.certain_answers(query)
        live_facts = db.facts
        live_version = db.mutation_version
        wal_reopens = durable.stats.wal_reopens
        durable.simulate_crash()

        def recover():
            store = DurableStore.open(workdir)
            return store, store.database()

        recovered_store, recovered_db = recover()
        with CertaintySession(recovered_db) as session:
            recovered_answers = session.certain_answers(query)
        zero_lost = (
            recovered_db.facts == live_facts
            and recovered_db.mutation_version == live_version
        )
        agree = zero_lost and recovered_answers == ground_truth
        recover_seconds = _best_of(repeats, recover)
        return {
            "batches": len(batches),
            "acknowledged": acknowledged,
            "injected_faults": injected,
            "wal_reopens": wal_reopens,
            "replayed_records": recovered_store.stats.replayed_records,
            "recover_seconds": recover_seconds,
            "zero_acknowledged_lost": zero_lost,
            "agree": agree,
        }


def run_fault_recovery_benchmark(
    sizes: Sequence[int], steps: int, repeats: int = 2, seed: int = 29
) -> Dict:
    """Clean vs chaos sharded replay, plus a crash-recovery durability leg.

    Per size the same pre-recorded batches replay three times: on a
    sequential :class:`CertaintySession` (per-step ground truth), on a
    fault-free :class:`ShardedCertaintySession`, and on an identically
    configured one under :func:`fault_recovery_plan`.  Every per-step
    answer set under chaos must equal the sequential replay — the faults
    may cost latency, never answers.  Both headline ratios are framed
    bigger-is-better: ``throughput_retained_under_faults`` (clean seconds
    over chaos seconds) and ``recovery_responsiveness`` (fault-free step
    p50 over post-kill dispatch p50).
    """
    query = sharded_bench_query()
    shards = FAULT_RECOVERY_SHARDS
    results: List[Dict] = []
    all_agree = True
    faults_exercised = True
    for size in sizes:
        db0 = sharded_bench_instance(query, size, seed=seed)
        batches = _record_stream(query, db0, steps, seed=seed + 7)

        expected = None
        for _ in range(repeats):
            _seconds, per_step, _session = _replay_stream(
                db0, batches, query, lambda db: CertaintySession(db)
            )
            expected = per_step

        clean = _fault_recovery_shard_leg(
            db0, batches, query, shards, repeats, plan=None
        )
        chaos = _fault_recovery_shard_leg(
            db0, batches, query, shards, repeats, plan=fault_recovery_plan(shards)
        )
        agree = clean["per_step"] == expected and chaos["per_step"] == expected
        all_agree = all_agree and agree
        faults_exercised = faults_exercised and chaos["worker_failures"] > 0
        recovery_p50 = chaos["recovery_p50"]
        clean_p50 = clean["step_p50"]
        results.append(
            {
                "size": size,
                "facts": len(db0),
                "steps": len(batches),
                "worker_failures": chaos["worker_failures"],
                "worker_restarts": chaos["worker_restarts"],
                "recovery_dispatches": chaos["recovery_dispatches"],
                "degradations": chaos["degradations"],
                "deadline_timeouts": chaos["deadline_timeouts"],
                "clean_seconds": clean["seconds"],
                "chaos_seconds": chaos["seconds"],
                "throughput_retained_under_faults": (
                    clean["seconds"] / chaos["seconds"] if chaos["seconds"] else None
                ),
                "clean_step_p50_seconds": clean_p50,
                "recovery_p50_seconds": recovery_p50,
                "recovery_max_seconds": chaos["recovery_max"],
                "recovery_responsiveness": (
                    clean_p50 / recovery_p50 if clean_p50 and recovery_p50 else None
                ),
                "agree": agree,
            }
        )
    durability = _fault_recovery_durability_leg(
        query, max(sizes), steps, repeats, seed=seed + 11
    )
    return {
        "benchmark": "fault_recovery",
        "query": str(query),
        "cpu_count": os.cpu_count(),
        "repeats": repeats,
        "shards": shards,
        "fault_plan": [list(spec) for spec in fault_recovery_plan(shards).specs],
        "results": results,
        "durability": durability,
        "all_agree": all_agree and durability["agree"],
        "faults_exercised": faults_exercised and durability["injected_faults"] > 0,
        "zero_acknowledged_lost": durability["zero_acknowledged_lost"],
    }


def _emit_fault_recovery(args: argparse.Namespace, output: pathlib.Path) -> int:
    if args.sizes:
        sizes: Sequence[int] = args.sizes
    else:
        sizes = FAULT_RECOVERY_SMOKE_SIZES if args.smoke else FAULT_RECOVERY_FULL_SIZES
    steps = FAULT_RECOVERY_SMOKE_STEPS if args.smoke else FAULT_RECOVERY_FULL_STEPS
    report = run_fault_recovery_benchmark(sizes, steps, repeats=2)
    output.write_text(json.dumps(report, indent=2) + "\n")
    for row in report["results"]:
        retained = row["throughput_retained_under_faults"]
        responsiveness = row["recovery_responsiveness"]
        print(
            f"size={row['size']:5d} facts={row['facts']:6d} "
            f"kills={row['worker_failures']:2d} "
            f"restarts={row['worker_restarts']:2d} "
            f"clean={row['clean_seconds']:.4f}s "
            f"chaos={row['chaos_seconds']:.4f}s "
            f"retained={retained:.2f}x "
            + (
                f"recovery_p50={row['recovery_p50_seconds']:.4f}s "
                f"responsiveness={responsiveness:.2f}x "
                if responsiveness is not None
                else "recovery_p50=n/a "
            )
            + f"agree={row['agree']}"
        )
    durability = report["durability"]
    print(
        f"durability: batches={durability['batches']} "
        f"acknowledged={durability['acknowledged']} "
        f"injected={durability['injected_faults']} "
        f"wal_reopens={durability['wal_reopens']} "
        f"recover={durability['recover_seconds']:.4f}s "
        f"zero_lost={durability['zero_acknowledged_lost']}"
    )
    print(f"wrote {output}")
    if not report["all_agree"]:
        print(
            "ERROR: an answer under injected faults diverged from the "
            "sequential replay",
            file=sys.stderr,
        )
        return 1
    if not report["zero_acknowledged_lost"]:
        print(
            "ERROR: the durable store lost an acknowledged batch",
            file=sys.stderr,
        )
        return 1
    if not report["faults_exercised"]:
        print("ERROR: the fault plan never fired", file=sys.stderr)
        return 1
    return 0


_DEFAULT_OUTPUTS = {
    "fo_rewriting": "BENCH_fo_rewriting.json",
    "parallel_answers": "BENCH_parallel_answers.json",
    "sharded_runtime": "BENCH_sharded_runtime.json",
    "incremental_views": "BENCH_incremental_views.json",
    "columnar_store": "BENCH_columnar_store.json",
    "all_bands": "BENCH_all_bands.json",
    "service_load": "BENCH_service_load.json",
    "durability": "BENCH_durability.json",
    "fault_recovery": "BENCH_fault_recovery.json",
}


def main(argv: Sequence[str] = ()) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--suite",
        choices=(
            "fo_rewriting",
            "parallel_answers",
            "sharded_runtime",
            "incremental_views",
            "columnar_store",
            "all_bands",
            "service_load",
            "durability",
            "fault_recovery",
        ),
        default="fo_rewriting",
        help="which benchmark suite to run",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized run (small sizes, one repeat)"
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="*",
        default=None,
        help="explicit scaling sizes (fo_rewriting: domain sizes; "
        "parallel_answers: the first value is the planted-chain count)",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=None,
        help="where to write the JSON report (default: BENCH_<suite>.json)",
    )
    args = parser.parse_args(list(argv) or None)
    output = args.output
    if output is None:
        output = (
            pathlib.Path(__file__).resolve().parents[1] / _DEFAULT_OUTPUTS[args.suite]
        )
    if args.suite == "parallel_answers":
        return _emit_parallel_answers(args, output)
    if args.suite == "sharded_runtime":
        return _emit_sharded_runtime(args, output)
    if args.suite == "incremental_views":
        return _emit_incremental_views(args, output)
    if args.suite == "columnar_store":
        return _emit_columnar_store(args, output)
    if args.suite == "all_bands":
        return _emit_all_bands(args, output)
    if args.suite == "service_load":
        return _emit_service_load(args, output)
    if args.suite == "durability":
        return _emit_durability(args, output)
    if args.suite == "fault_recovery":
        return _emit_fault_recovery(args, output)
    return _emit_fo_rewriting(args, output)


if __name__ == "__main__":
    raise SystemExit(main())
