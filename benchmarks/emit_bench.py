"""Emit ``BENCH_fo_rewriting.json``: naive vs compiled FO-rewriting evaluation.

The script times the certain first-order rewriting of Theorem 1 under the
two evaluation strategies of :class:`repro.fo.evaluate.FormulaEvaluator` —
the naive active-domain recursion and the compiled set-at-a-time plans of
:mod:`repro.fo.compile` — on a scaling workload, checks that they agree,
and writes the measurements as JSON so the performance trajectory is
recorded in CI from PR 2 onward.

The workload (:func:`fo_bench_instance`) is adversarial for the naive
strategy: the early relations of a path query are dense while the final
relation is sparse, so the instance is rarely certain and the naive
evaluator must exhaust the ``|adom|^k`` quantifier space before concluding
— exactly the exponential behaviour the compiled plans eliminate.

Run with::

    PYTHONPATH=src python benchmarks/emit_bench.py            # full sizes
    PYTHONPATH=src python benchmarks/emit_bench.py --smoke    # CI-sized
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys
import time
from typing import Dict, List, Sequence

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.fo import certain_rewriting_cached, compile_formula, evaluate_sentence
from repro.model.database import UncertainDatabase
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.families import path_query

#: Default scaling sizes (active-domain size n; facts grow linearly in n).
FULL_SIZES = (8, 16, 32, 64, 96)
SMOKE_SIZES = (8, 16)


def bench_query() -> ConjunctiveQuery:
    """The benchmark query: ``path_query(3)``, an FO-band three-atom chain."""
    return path_query(3)


def fo_bench_instance(query: ConjunctiveQuery, size: int, seed: int = 5) -> UncertainDatabase:
    """A database of scale *size* that is hard for naive FO evaluation.

    All but the last relation receive ``2·size`` random facts over a
    domain of *size* constants; the last relation only ``size // 4`` — so
    witnesses almost never complete, certainty usually fails, and the naive
    evaluator cannot short-circuit its quantifier loops.
    """
    rng = random.Random(seed)
    domain = [f"c{i}" for i in range(size)]
    relations = [atom.relation for atom in query.atoms]
    db = UncertainDatabase()
    for position, relation in enumerate(relations):
        count = 2 * size if position < len(relations) - 1 else max(1, size // 4)
        for _ in range(count):
            db.add(relation.fact(*[rng.choice(domain) for _ in range(relation.arity)]))
    return db


def _best_of(repeats: int, run) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmark(sizes: Sequence[int], repeats: int = 3, seed: int = 5) -> Dict:
    """Time naive vs compiled evaluation per size; verify agreement."""
    query = bench_query()
    formula = certain_rewriting_cached(query)
    compile_start = time.perf_counter()
    compile_formula(formula)
    compile_seconds = time.perf_counter() - compile_start

    results: List[Dict] = []
    for size in sizes:
        db = fo_bench_instance(query, size, seed=seed)
        compiled_result = evaluate_sentence(db, formula, compiled=True)
        naive_result = evaluate_sentence(db, formula, compiled=False)
        agree = compiled_result == naive_result
        compiled_seconds = _best_of(
            repeats, lambda: evaluate_sentence(db, formula, compiled=True)
        )
        naive_seconds = _best_of(
            repeats, lambda: evaluate_sentence(db, formula, compiled=False)
        )
        results.append(
            {
                "size": size,
                "facts": len(db),
                "certain": compiled_result,
                "agree": agree,
                "naive_seconds": naive_seconds,
                "compiled_seconds": compiled_seconds,
                "speedup": naive_seconds / compiled_seconds if compiled_seconds else None,
            }
        )
    return {
        "benchmark": "fo_rewriting",
        "query": str(query),
        "formula_compile_seconds": compile_seconds,
        "repeats": repeats,
        "results": results,
        "largest_size_speedup": results[-1]["speedup"] if results else None,
        "all_agree": all(r["agree"] for r in results),
    }


def main(argv: Sequence[str] = ()) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized run (small sizes, one repeat)"
    )
    parser.add_argument(
        "--sizes", type=int, nargs="*", default=None, help="explicit scaling sizes"
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parents[1] / "BENCH_fo_rewriting.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(list(argv) or None)
    if args.sizes:
        sizes: Sequence[int] = args.sizes
    else:
        sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    report = run_benchmark(sizes, repeats=1 if args.smoke else 3)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    for row in report["results"]:
        print(
            f"size={row['size']:4d} facts={row['facts']:5d} certain={row['certain']!s:5s} "
            f"naive={row['naive_seconds']:.4f}s compiled={row['compiled_seconds']:.4f}s "
            f"speedup={row['speedup']:.1f}x"
        )
    print(f"wrote {args.output}")
    if not report["all_agree"]:
        print("ERROR: naive and compiled evaluation disagree", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
