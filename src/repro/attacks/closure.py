"""Closure sets underlying attack graphs.

Definition 2 of the paper: for an atom ``F`` of a query ``q``,

    ``F^{+,q} = {x ∈ vars(q) | K(q \\ {F}) ⊨ key(F) → x}``

is the attribute closure of ``key(F)`` with respect to the functional
dependencies of the *other* atoms.  Definition 5 introduces

    ``F^{⊞,q} = {x ∈ vars(q) | K(q) ⊨ key(F) → x}``

the closure with respect to *all* atoms, which is used to classify attacks
as weak or strong.  Trivially ``F^{+,q} ⊆ F^{⊞,q}``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from ..model.atoms import Atom
from ..model.symbols import Variable
from ..query.conjunctive import ConjunctiveQuery


def plus_closure(query: ConjunctiveQuery, atom: Atom) -> FrozenSet[Variable]:
    """``F^{+,q}``: closure of ``key(F)`` under ``K(q \\ {F})``, within vars(q)."""
    if atom not in query:
        raise ValueError(f"atom {atom} does not belong to query {query}")
    fds = query.key_fds(exclude=[atom])
    return fds.closure(atom.key_variables) & query.variables


def box_closure(query: ConjunctiveQuery, atom: Atom) -> FrozenSet[Variable]:
    """``F^{⊞,q}``: closure of ``key(F)`` under ``K(q)``, within vars(q)."""
    if atom not in query:
        raise ValueError(f"atom {atom} does not belong to query {query}")
    fds = query.key_fds()
    return fds.closure(atom.key_variables) & query.variables


def all_plus_closures(query: ConjunctiveQuery) -> Dict[Atom, FrozenSet[Variable]]:
    """``F^{+,q}`` for every atom of the query."""
    return {atom: plus_closure(query, atom) for atom in query.atoms}


def all_box_closures(query: ConjunctiveQuery) -> Dict[Atom, FrozenSet[Variable]]:
    """``F^{⊞,q}`` for every atom of the query."""
    return {atom: box_closure(query, atom) for atom in query.atoms}
