"""Attack graphs: closures, construction, cycles, and structural lemmas."""

from .closure import all_box_closures, all_plus_closures, box_closure, plus_closure
from .cycles import (
    AttackCycle,
    all_cycles_terminal,
    atoms_on_cycles,
    cycle_is_terminal,
    enumerate_cycles,
    has_strong_cycle,
    strong_cycles,
    strong_two_cycle,
    strongly_connected_components,
    weak_cycles,
)
from .graph import Attack, AttackGraph
from .properties import (
    check_lemma2,
    check_lemma3,
    check_lemma4,
    check_lemma6,
    check_lemma7,
    check_plus_subset_box,
    lemma_report,
)

__all__ = [
    "Attack",
    "AttackCycle",
    "AttackGraph",
    "all_box_closures",
    "all_cycles_terminal",
    "all_plus_closures",
    "atoms_on_cycles",
    "box_closure",
    "check_lemma2",
    "check_lemma3",
    "check_lemma4",
    "check_lemma6",
    "check_lemma7",
    "check_plus_subset_box",
    "cycle_is_terminal",
    "enumerate_cycles",
    "has_strong_cycle",
    "lemma_report",
    "plus_closure",
    "strong_cycles",
    "strong_two_cycle",
    "strongly_connected_components",
    "weak_cycles",
]
