"""Structural properties of attack graphs stated as lemmas in the paper.

Each function checks one lemma on a concrete attack graph and returns
``True`` when the lemma's statement holds (as it must, if the implementation
is correct).  They serve three purposes: executable documentation of the
paper's structure, sanity checks in the test suite (including property-based
tests over random queries), and the building blocks of experiment E9.
"""

from __future__ import annotations

from typing import List, Tuple

from .cycles import enumerate_cycles, has_strong_cycle
from .graph import AttackGraph


def check_lemma2(graph: AttackGraph) -> bool:
    """Lemma 2: if ``F ⤳ G`` then ``key(G) ⊄ F^{+,q}`` and ``vars(F) ⊄ F^{+,q}``."""
    for attack in graph.attacks:
        closure = graph.plus_closures[attack.source]
        if attack.target.key_variables.issubset(closure):
            return False
        if attack.source.variables.issubset(closure):
            return False
    return True


def check_lemma3(graph: AttackGraph) -> bool:
    """Lemma 3: ``F ⤳ G`` and ``G ⤳ H`` imply ``F ⤳ H`` or ``G ⤳ F`` (F, G, H distinct)."""
    atoms = graph.atoms
    for f in atoms:
        for g in graph.attacks_from(f):
            if g == f:
                continue
            for h in graph.attacks_from(g):
                if h == f or h == g:
                    continue
                if not (graph.has_attack(f, h) or graph.has_attack(g, f)):
                    return False
    return True


def check_lemma4(graph: AttackGraph) -> bool:
    """Lemma 4: a strong cycle exists iff a strong cycle of length 2 exists."""
    cycles = enumerate_cycles(graph)
    any_strong = any(c.is_strong for c in cycles)
    strong_two = any(c.is_strong and c.length == 2 for c in cycles)
    if any_strong and not strong_two:
        return False
    # Also check agreement with the quadratic-time test used by the classifier.
    return any_strong == has_strong_cycle(graph)


def check_lemma6(graph: AttackGraph) -> bool:
    """Lemma 6: if every cycle is terminal then every cycle has length 2."""
    cycles = enumerate_cycles(graph)
    if all(c.is_terminal for c in cycles):
        return all(c.length == 2 for c in cycles)
    return True


def check_plus_subset_box(graph: AttackGraph) -> bool:
    """The remark after Definition 5: ``F^{+,q} ⊆ F^{⊞,q}`` for every atom."""
    return all(
        graph.plus_closures[atom].issubset(graph.box_closures[atom]) for atom in graph.atoms
    )


def check_lemma7(graph: AttackGraph) -> bool:
    """Lemma 7, for graphs where every cycle is terminal and every atom is on a cycle.

    1. A variable occurring in two distinct cycles occurs in the key of every
       atom of those cycles.
    2. For weak attacks ``F ⤳ G`` (within such graphs), ``key(G) ⊆ vars(F)``.

    Returns ``True`` vacuously when the premise does not hold.
    """
    cycles = enumerate_cycles(graph)
    if not cycles:
        return True
    if not all(c.is_terminal for c in cycles):
        return True
    on_cycle = set()
    for cycle in cycles:
        on_cycle.update(cycle.atoms)
    if set(graph.atoms) != on_cycle:
        return True
    # Part 1.
    for i, first in enumerate(cycles):
        for second in cycles[i + 1 :]:
            if set(first.atoms) == set(second.atoms):
                continue
            shared_vars = set()
            for atom in first.atoms:
                shared_vars |= atom.variables
            other_vars = set()
            for atom in second.atoms:
                other_vars |= atom.variables
            for variable in shared_vars & other_vars:
                for atom in list(first.atoms) + list(second.atoms):
                    if variable in atom.variables and variable not in atom.key_variables:
                        return False
    # Part 2.
    for attack in graph.attacks:
        if attack.is_weak and not attack.target.key_variables.issubset(attack.source.variables):
            return False
    return True


def lemma_report(graph: AttackGraph) -> List[Tuple[str, bool]]:
    """Evaluate every lemma check on *graph* and return (name, holds) pairs."""
    return [
        ("lemma2", check_lemma2(graph)),
        ("lemma3", check_lemma3(graph)),
        ("lemma4", check_lemma4(graph)),
        ("lemma6", check_lemma6(graph)),
        ("lemma7", check_lemma7(graph)),
        ("plus_subset_box", check_plus_subset_box(graph)),
    ]
