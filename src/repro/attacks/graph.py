"""Attack graphs of acyclic conjunctive queries.

Definition 3 of the paper: given a join tree ``τ`` for ``q``, the attack
graph has the atoms of ``q`` as vertices and a directed edge (*attack*)
``F ⤳ G`` whenever, for every label ``L`` on the unique path between ``F``
and ``G`` in ``τ``, ``L ⊄ F^{+,q}`` (no label is contained in the closure).
The graph is independent of the chosen join tree (Wijsen 2012), which this
library verifies in its test suite by recomputing it over all join trees of
small queries.

Definition 5: an attack ``F ⤳ G`` is *weak* when ``key(G) ⊆ F^{⊞,q}`` and
*strong* otherwise.  Cycles are weak when all their attacks are weak.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..model.atoms import Atom
from ..model.symbols import Variable
from ..query.conjunctive import ConjunctiveQuery
from ..query.jointree import JoinTree, build_join_tree
from .closure import all_box_closures, all_plus_closures


class Attack:
    """A directed attack ``source ⤳ target`` with its weak/strong label."""

    __slots__ = ("source", "target", "is_weak")

    def __init__(self, source: Atom, target: Atom, is_weak: bool) -> None:
        self.source = source
        self.target = target
        self.is_weak = is_weak

    @property
    def is_strong(self) -> bool:
        """``True`` iff the attack is strong (not weak)."""
        return not self.is_weak

    def __repr__(self) -> str:
        kind = "weak" if self.is_weak else "strong"
        return f"Attack({self.source} ⤳ {self.target}, {kind})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Attack)
            and self.source == other.source
            and self.target == other.target
            and self.is_weak == other.is_weak
        )

    def __hash__(self) -> int:
        return hash((self.source, self.target, self.is_weak))


class AttackGraph:
    """The attack graph of an acyclic, self-join-free conjunctive query."""

    def __init__(self, query: ConjunctiveQuery, join_tree: Optional[JoinTree] = None) -> None:
        if query.has_self_join:
            raise ValueError("attack graphs are defined for self-join-free queries only")
        self.query = query
        self.join_tree = join_tree if join_tree is not None else build_join_tree(query)
        self.plus_closures: Dict[Atom, FrozenSet[Variable]] = all_plus_closures(query)
        self.box_closures: Dict[Atom, FrozenSet[Variable]] = all_box_closures(query)
        self._attacks: Dict[Tuple[Atom, Atom], Attack] = {}
        self._successors: Dict[Atom, List[Atom]] = {atom: [] for atom in query.atoms}
        self._predecessors: Dict[Atom, List[Atom]] = {atom: [] for atom in query.atoms}
        self._build()

    # -- construction -------------------------------------------------------------

    def _build(self) -> None:
        atoms = self.query.atoms
        for source in atoms:
            closure = self.plus_closures[source]
            for target in atoms:
                if source == target:
                    continue
                labels = self.join_tree.path_labels(source, target)
                if all(not label.issubset(closure) for label in labels):
                    is_weak = target.key_variables.issubset(self.box_closures[source])
                    attack = Attack(source, target, is_weak)
                    self._attacks[(source, target)] = attack
                    self._successors[source].append(target)
                    self._predecessors[target].append(source)

    # -- queries on the graph --------------------------------------------------------

    @property
    def atoms(self) -> Tuple[Atom, ...]:
        """The vertices of the attack graph (the atoms of the query)."""
        return self.query.atoms

    @property
    def attacks(self) -> List[Attack]:
        """All attacks, in a deterministic order."""
        return [self._attacks[key] for key in sorted(self._attacks, key=lambda p: (str(p[0]), str(p[1])))]

    def attacks_from(self, atom: Atom) -> List[Atom]:
        """The atoms attacked by *atom*."""
        return list(self._successors[atom])

    def attacks_on(self, atom: Atom) -> List[Atom]:
        """The atoms attacking *atom*."""
        return list(self._predecessors[atom])

    def has_attack(self, source: Atom, target: Atom) -> bool:
        """``F ⤳ G``?"""
        return (source, target) in self._attacks

    def attack(self, source: Atom, target: Atom) -> Attack:
        """The attack object for ``source ⤳ target`` (KeyError if absent)."""
        return self._attacks[(source, target)]

    def is_weak_attack(self, source: Atom, target: Atom) -> bool:
        """``True`` iff the attack exists and is weak."""
        attack = self._attacks.get((source, target))
        return attack is not None and attack.is_weak

    def is_strong_attack(self, source: Atom, target: Atom) -> bool:
        """``True`` iff the attack exists and is strong."""
        attack = self._attacks.get((source, target))
        return attack is not None and attack.is_strong

    def unattacked_atoms(self) -> List[Atom]:
        """Atoms with no incoming attack (in-degree zero)."""
        return [atom for atom in self.query.atoms if not self._predecessors[atom]]

    def in_degree(self, atom: Atom) -> int:
        """The number of attacks on *atom*."""
        return len(self._predecessors[atom])

    def out_degree(self, atom: Atom) -> int:
        """The number of attacks from *atom*."""
        return len(self._successors[atom])

    # -- acyclicity ----------------------------------------------------------------------

    def is_acyclic(self) -> bool:
        """``True`` iff the attack graph has no directed cycle (Theorem 1: FO case)."""
        return self.topological_order() is not None

    def topological_order(self) -> Optional[List[Atom]]:
        """A topological order of the attack graph, or ``None`` if it is cyclic."""
        in_degree = {atom: len(self._predecessors[atom]) for atom in self.query.atoms}
        ready = [atom for atom, deg in in_degree.items() if deg == 0]
        order: List[Atom] = []
        ready.sort(key=str)
        while ready:
            atom = ready.pop(0)
            order.append(atom)
            for successor in self._successors[atom]:
                in_degree[successor] -= 1
                if in_degree[successor] == 0:
                    ready.append(successor)
            ready.sort(key=str)
        if len(order) != len(self.query.atoms):
            return None
        return order

    # -- rendering -------------------------------------------------------------------------

    def __repr__(self) -> str:
        return f"AttackGraph({len(self.query)} atoms, {len(self._attacks)} attacks)"

    def pretty(self) -> str:
        """A readable listing of every attack with its weak/strong label."""
        lines = []
        for attack in self.attacks:
            kind = "weak" if attack.is_weak else "STRONG"
            lines.append(f"{attack.source}  ⤳  {attack.target}   [{kind}]")
        return "\n".join(lines) if lines else "(no attacks)"

    def to_edge_set(self) -> Set[Tuple[str, str]]:
        """The attack edges as pairs of relation names (useful for comparisons)."""
        return {(s.name, t.name) for (s, t) in self._attacks}
