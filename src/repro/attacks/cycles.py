"""Cycles of attack graphs: enumeration and weak/strong/terminal classification.

Definition 5 of the paper: a (directed, elementary) cycle is *strong* when at
least one of its attacks is strong, and *weak* otherwise.  Definition 6: a
cycle is *terminal* when no edge leads from a vertex in the cycle to a vertex
outside the cycle.

The classifier of :mod:`repro.core.classify` only needs three facts — is the
graph cyclic, does it contain a strong cycle, is every cycle terminal — each
of which can be decided without enumerating all cycles:

* strong cycle existence: by Lemma 4 it suffices to look for a strong cycle
  of length 2, i.e. atoms ``F, G`` with ``F ⤳ G ⤳ F`` where one of the two
  attacks is strong;
* "all cycles terminal": every strongly connected component with ≥ 2 atoms
  must have no outgoing edge to atoms outside the component, and (Lemma 6)
  must in fact be a 2-cycle.

Explicit cycle enumeration (bounded) is still provided for reporting and for
property-based tests of the lemmas.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..model.atoms import Atom
from .graph import AttackGraph


class AttackCycle:
    """An elementary cycle ``F0 ⤳ F1 ⤳ ... ⤳ F_{n-1} ⤳ F0`` in an attack graph."""

    __slots__ = ("atoms", "is_strong", "is_terminal")

    def __init__(self, atoms: Sequence[Atom], is_strong: bool, is_terminal: bool) -> None:
        self.atoms: Tuple[Atom, ...] = tuple(atoms)
        self.is_strong = is_strong
        self.is_terminal = is_terminal

    @property
    def is_weak(self) -> bool:
        """``True`` iff no attack of the cycle is strong."""
        return not self.is_strong

    @property
    def length(self) -> int:
        """The number of atoms (= attacks) in the cycle."""
        return len(self.atoms)

    def __repr__(self) -> str:
        chain = " ⤳ ".join(str(a) for a in self.atoms) + f" ⤳ {self.atoms[0]}"
        kind = "strong" if self.is_strong else "weak"
        term = "terminal" if self.is_terminal else "nonterminal"
        return f"AttackCycle({chain}; {kind}, {term})"

    def canonical_key(self) -> Tuple[str, ...]:
        """A rotation-invariant key identifying the cycle (for deduplication)."""
        names = [str(a) for a in self.atoms]
        best = min(range(len(names)), key=lambda i: names[i:] + names[:i])
        rotated = names[best:] + names[:best]
        return tuple(rotated)


def strongly_connected_components(graph: AttackGraph) -> List[FrozenSet[Atom]]:
    """Tarjan's algorithm over the attack graph (iterative, deterministic order)."""
    index: Dict[Atom, int] = {}
    lowlink: Dict[Atom, int] = {}
    on_stack: Set[Atom] = set()
    stack: List[Atom] = []
    components: List[FrozenSet[Atom]] = []
    counter = [0]

    atoms = sorted(graph.atoms, key=str)

    def strongconnect(root: Atom) -> None:
        work: List[Tuple[Atom, Iterator[Atom]]] = [(root, iter(sorted(graph.attacks_from(root), key=str)))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index:
                    index[successor] = lowlink[successor] = counter[0]
                    counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(sorted(graph.attacks_from(successor), key=str))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: Set[Atom] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(frozenset(component))

    for atom in atoms:
        if atom not in index:
            strongconnect(atom)
    return components


def _component_is_cyclic(graph: AttackGraph, component: FrozenSet[Atom]) -> bool:
    if len(component) > 1:
        return True
    atom = next(iter(component))
    return graph.has_attack(atom, atom)  # self-attacks never occur, kept for safety


def atoms_on_cycles(graph: AttackGraph) -> FrozenSet[Atom]:
    """The set of atoms that lie on at least one directed cycle."""
    out: Set[Atom] = set()
    for component in strongly_connected_components(graph):
        if _component_is_cyclic(graph, component):
            out |= component
    return frozenset(out)


def has_strong_cycle(graph: AttackGraph) -> bool:
    """``True`` iff the attack graph contains a strong cycle.

    By Lemma 4 a strong cycle exists iff a strong cycle of *length 2* exists,
    so this check is quadratic in the number of atoms.
    """
    for source in graph.atoms:
        for target in graph.attacks_from(source):
            if graph.has_attack(target, source):
                if graph.is_strong_attack(source, target) or graph.is_strong_attack(target, source):
                    return True
    return False


def strong_two_cycle(graph: AttackGraph) -> Optional[Tuple[Atom, Atom]]:
    """Return atoms ``(F, G)`` with ``F ⤳ G ⤳ F`` and ``F ⤳ G`` strong, if any.

    This is the witness used by the Theorem 2 reduction.
    """
    for source in sorted(graph.atoms, key=str):
        for target in sorted(graph.attacks_from(source), key=str):
            if not graph.has_attack(target, source):
                continue
            if graph.is_strong_attack(source, target):
                return (source, target)
            if graph.is_strong_attack(target, source):
                return (target, source)
    return None


def cycle_is_terminal(graph: AttackGraph, cycle_atoms: Iterable[Atom]) -> bool:
    """Definition 6: no attack from a cycle vertex to a vertex outside the cycle."""
    members = set(cycle_atoms)
    for atom in members:
        for successor in graph.attacks_from(atom):
            if successor not in members:
                return False
    return True


def all_cycles_terminal(graph: AttackGraph) -> bool:
    """``True`` iff every cycle of the attack graph is terminal.

    Every cycle lives inside a strongly connected component; a cycle through
    an atom with an attack leaving its component is nonterminal, and
    conversely, an edge leaving a *cyclic* SCC makes some cycle nonterminal.
    Moreover an SCC of size ≥ 3 always contains a nonterminal cycle (Lemma 6's
    contrapositive), and within an SCC of size 2 the unique cycle is the
    2-cycle, which must have no outgoing edges at all.
    """
    for component in strongly_connected_components(graph):
        if len(component) < 2:
            continue
        if len(component) > 2:
            return False
        if not cycle_is_terminal(graph, component):
            return False
    return True


def enumerate_cycles(graph: AttackGraph, max_cycles: int = 10000) -> List[AttackCycle]:
    """Enumerate elementary cycles (Johnson-style DFS, bounded by *max_cycles*)."""
    cycles: List[AttackCycle] = []
    seen_keys: Set[Tuple[str, ...]] = set()
    atoms = sorted(graph.atoms, key=str)
    order = {atom: i for i, atom in enumerate(atoms)}

    def dfs(start: Atom, node: Atom, path: List[Atom], visited: Set[Atom]) -> None:
        if len(cycles) >= max_cycles:
            return
        for successor in sorted(graph.attacks_from(node), key=str):
            if successor == start and len(path) >= 2:
                _record(path)
            elif successor not in visited and order[successor] > order[start]:
                visited.add(successor)
                path.append(successor)
                dfs(start, successor, path, visited)
                path.pop()
                visited.discard(successor)

    def _record(path: List[Atom]) -> None:
        strong = any(
            graph.is_strong_attack(path[i], path[(i + 1) % len(path)]) for i in range(len(path))
        )
        terminal = cycle_is_terminal(graph, path)
        cycle = AttackCycle(list(path), strong, terminal)
        key = cycle.canonical_key()
        if key not in seen_keys:
            seen_keys.add(key)
            cycles.append(cycle)

    # Also record 2-cycles directly (the DFS above finds them too, but this
    # keeps behaviour obvious and cheap for the common case).
    for start in atoms:
        dfs(start, start, [start], {start})
        if len(cycles) >= max_cycles:
            break
    return cycles


def weak_cycles(graph: AttackGraph, max_cycles: int = 10000) -> List[AttackCycle]:
    """All weak cycles (bounded enumeration)."""
    return [c for c in enumerate_cycles(graph, max_cycles) if c.is_weak]


def strong_cycles(graph: AttackGraph, max_cycles: int = 10000) -> List[AttackCycle]:
    """All strong cycles (bounded enumeration)."""
    return [c for c in enumerate_cycles(graph, max_cycles) if c.is_strong]
