"""The top-level CERTAINTY solver: classify, dispatch, solve.

:func:`is_certain` is the main entry point of the library: given an
uncertain database and a Boolean conjunctive query, it classifies the query
on the tractability frontier and runs the matching algorithm:

====================  =======================================================
band                  algorithm
====================  =======================================================
FO                    unattacked-atom peeling (certain FO rewriting)
PTIME_NOT_FO          Theorem 3 (peeling + weak-cycle partitions)
PTIME_CYCLE_QUERY     Theorem 4 (``AC(k)``/``C(k)`` fact-graph marking)
CONP_COMPLETE         brute force, only with ``allow_exponential=True``
OPEN_CONJECTURED_P    brute force, only with ``allow_exponential=True``
unsupported           brute force, only with ``allow_exponential=True``
====================  =======================================================

Non-Boolean queries (with free variables) are answered by
:func:`certain_answers`, which grounds the free variables with every
candidate answer of the full database and keeps the certain ones.

All three entry points keep their historical signatures but delegate to the
:mod:`repro.engine` subsystem: queries are compiled once into cached
``QueryPlan`` objects (classification + dispatch), and ``certain_answers``
runs through a transient ``CertaintySession`` so the query shape is
classified once instead of once per candidate tuple.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from ..core.classify import Classification
from ..model.database import UncertainDatabase
from ..model.symbols import Constant
from ..query.conjunctive import ConjunctiveQuery


class CertaintyOutcome:
    """The result of a certainty check, with provenance."""

    def __init__(self, certain: bool, method: str, classification: Classification) -> None:
        self.certain = certain
        self.method = method
        self.classification = classification

    def __bool__(self) -> bool:
        return self.certain

    def __repr__(self) -> str:
        return (
            f"CertaintyOutcome(certain={self.certain}, method={self.method!r}, "
            f"band={self.classification.band.name})"
        )


def solve(
    db: UncertainDatabase,
    query: ConjunctiveQuery,
    allow_exponential: bool = False,
    classification: Optional[Classification] = None,
) -> CertaintyOutcome:
    """Decide ``db ∈ CERTAINTY(q)`` and report which algorithm was used.

    Delegates to the engine: the query is compiled into a :class:`QueryPlan`
    through the process-wide plan cache, so repeated calls with the same
    query skip classification.  An explicitly provided *classification*
    bypasses the cache and compiles an ad-hoc plan from it.
    """
    # Imported lazily: repro.engine imports this module for CertaintyOutcome.
    from ..engine.cache import default_plan_cache
    from ..engine.plan import compile_plan

    boolean = query.as_boolean() if not query.is_boolean else query
    if classification is not None:
        plan = compile_plan(boolean, classification=classification)
    else:
        plan = default_plan_cache().get_or_compile(boolean)
    return plan.execute(db, allow_exponential=allow_exponential)


def is_certain(
    db: UncertainDatabase,
    query: ConjunctiveQuery,
    allow_exponential: bool = False,
) -> bool:
    """``True`` iff every repair of *db* satisfies *query*."""
    return solve(db, query, allow_exponential=allow_exponential).certain


def certain_answers(
    db: UncertainDatabase,
    query: ConjunctiveQuery,
    allow_exponential: bool = False,
) -> Set[Tuple[Constant, ...]]:
    """The certain answers of a non-Boolean query.

    A tuple ``t`` is a certain answer when the Boolean grounding
    ``q[free ↦ t]`` is certain.  Candidate tuples are the answers over the
    whole (inconsistent) database — certain answers are always among them.

    Delegates to a transient :class:`~repro.engine.CertaintySession`, which
    classifies the query shape once and reuses one shared fact index for
    candidate enumeration and every grounding (the historical loop
    re-classified and re-indexed per candidate tuple).
    """
    from ..engine.session import CertaintySession

    if query.is_boolean:
        raise ValueError("certain_answers expects a query with free variables")
    with CertaintySession(db, allow_exponential=allow_exponential) as session:
        return session.certain_answers(query)
