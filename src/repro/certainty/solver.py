"""The top-level CERTAINTY solver: classify, dispatch, solve.

:func:`is_certain` is the main entry point of the library: given an
uncertain database and a Boolean conjunctive query, it classifies the query
on the tractability frontier and runs the matching algorithm:

====================  =======================================================
band                  algorithm
====================  =======================================================
FO                    unattacked-atom peeling (certain FO rewriting)
PTIME_NOT_FO          Theorem 3 (peeling + weak-cycle partitions)
PTIME_CYCLE_QUERY     Theorem 4 (``AC(k)``/``C(k)`` fact-graph marking)
CONP_COMPLETE         brute force, only with ``allow_exponential=True``
OPEN_CONJECTURED_P    brute force, only with ``allow_exponential=True``
unsupported           brute force, only with ``allow_exponential=True``
====================  =======================================================

Non-Boolean queries (with free variables) are answered by
:func:`certain_answers`, which grounds the free variables with every
candidate answer of the full database and keeps the certain ones.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from ..core.classify import Classification, classify
from ..core.complexity import ComplexityBand
from ..model.database import UncertainDatabase
from ..model.symbols import Constant
from ..query.conjunctive import ConjunctiveQuery
from ..query.evaluation import answer_tuples
from ..query.substitution import ground_free_variables
from .brute_force import certain_brute_force
from .cycle_query import certain_cycle_query
from .exceptions import IntractableQueryError, UnsupportedQueryError
from .rewriting import certain_fo
from .terminal_cycles import certain_terminal_cycles


class CertaintyOutcome:
    """The result of a certainty check, with provenance."""

    def __init__(self, certain: bool, method: str, classification: Classification) -> None:
        self.certain = certain
        self.method = method
        self.classification = classification

    def __bool__(self) -> bool:
        return self.certain

    def __repr__(self) -> str:
        return (
            f"CertaintyOutcome(certain={self.certain}, method={self.method!r}, "
            f"band={self.classification.band.name})"
        )


def solve(
    db: UncertainDatabase,
    query: ConjunctiveQuery,
    allow_exponential: bool = False,
    classification: Optional[Classification] = None,
) -> CertaintyOutcome:
    """Decide ``db ∈ CERTAINTY(q)`` and report which algorithm was used."""
    boolean = query.as_boolean() if not query.is_boolean else query
    classification = classification if classification is not None else classify(boolean)
    band = classification.band
    if band is ComplexityBand.FO:
        return CertaintyOutcome(certain_fo(db, boolean), "fo-rewriting", classification)
    if band is ComplexityBand.PTIME_NOT_FO:
        return CertaintyOutcome(
            certain_terminal_cycles(db, boolean), "theorem3-terminal-cycles", classification
        )
    if band is ComplexityBand.PTIME_CYCLE_QUERY:
        return CertaintyOutcome(certain_cycle_query(db, boolean), "theorem4-cycle-query", classification)
    if not allow_exponential:
        if band is ComplexityBand.CONP_COMPLETE:
            raise IntractableQueryError(
                f"CERTAINTY({boolean}) is coNP-complete; pass allow_exponential=True to use brute force"
            )
        raise UnsupportedQueryError(
            f"no polynomial algorithm is known for {boolean} ({band.name}); "
            "pass allow_exponential=True to use brute force"
        )
    return CertaintyOutcome(certain_brute_force(db, boolean), "brute-force", classification)


def is_certain(
    db: UncertainDatabase,
    query: ConjunctiveQuery,
    allow_exponential: bool = False,
) -> bool:
    """``True`` iff every repair of *db* satisfies *query*."""
    return solve(db, query, allow_exponential=allow_exponential).certain


def certain_answers(
    db: UncertainDatabase,
    query: ConjunctiveQuery,
    allow_exponential: bool = False,
) -> Set[Tuple[Constant, ...]]:
    """The certain answers of a non-Boolean query.

    A tuple ``t`` is a certain answer when the Boolean grounding
    ``q[free ↦ t]`` is certain.  Candidate tuples are the answers over the
    whole (inconsistent) database — certain answers are always among them.
    """
    if query.is_boolean:
        raise ValueError("certain_answers expects a query with free variables")
    candidates = answer_tuples(query, db.facts)
    certain: Set[Tuple[Constant, ...]] = set()
    classification: Optional[Classification] = None
    for candidate in sorted(candidates, key=lambda t: tuple(str(c) for c in t)):
        grounded = ground_free_variables(query, [c.value for c in candidate])
        # Each grounding has the same shape, but constants can change the
        # attack graph, so classify per grounding (cheap: queries are small).
        outcome = solve(db, grounded, allow_exponential=allow_exponential)
        if outcome.certain:
            certain.add(candidate)
    return certain
