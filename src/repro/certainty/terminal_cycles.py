"""Theorem 3: polynomial CERTAINTY solver for weak, terminal attack cycles.

If every cycle of the attack graph of an acyclic self-join-free query is
weak **and terminal**, then ``CERTAINTY(q)`` is in P.  The algorithm follows
the proof of Theorem 3:

* induction step — while the attack graph has an unattacked atom, peel it
  exactly as in the FO case (the shared recursion of
  :mod:`repro.certainty.peeling`); by Lemma 5 the residual queries keep the
  premise (cycles stay weak and terminal);
* base case — when every atom is attacked, the attack graph is a disjoint
  union of weak terminal 2-cycles ``Fi ⇄ Gi`` (Lemma 6).  For each cycle,
  facts over the two relations are grouped into *partitions* by the values
  of the variables shared with other cycles; each partition is an
  independent two-atom certainty problem, solved by
  :mod:`repro.certainty.pair_solver`.  The database is certain iff the union
  of the certain partitions satisfies the query (Sublemma 5).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..attacks.cycles import (
    all_cycles_terminal,
    has_strong_cycle,
    strongly_connected_components,
)
from ..attacks.graph import AttackGraph
from ..model.atoms import Atom, Fact
from ..model.database import UncertainDatabase
from ..model.symbols import Constant, Variable
from ..query.conjunctive import ConjunctiveQuery
from ..query.evaluation import FactIndex, satisfies
from ..store.columnar import ColumnarFactStore, IntRow
from ..store.kernels import AtomMatcher, has_witness
from .context import SolverContext
from .exceptions import IntractableQueryError, UnsupportedQueryError
from .pair_solver import certain_two_atom, certain_weak_cycle_pair_rows
from .peeling import empty_base_case, match_full_atom, peel_certain


def applies_to(query: ConjunctiveQuery, context: Optional[SolverContext] = None) -> bool:
    """``True`` iff Theorem 3 covers the query (weak terminal cycles only).

    Queries with an *acyclic* attack graph are also covered (they simply
    never reach the base case).
    """
    if query.has_self_join or query.is_empty:
        return not query.has_self_join
    graph = context.attack_graph(query) if context is not None else AttackGraph(query)
    return not has_strong_cycle(graph) and all_cycles_terminal(graph)


def certain_terminal_cycles(
    db: UncertainDatabase,
    query: ConjunctiveQuery,
    context: Optional[SolverContext] = None,
) -> bool:
    """Decide ``db ∈ CERTAINTY(q)`` for a query with weak terminal cycles only.

    *context* optionally supplies precomputed attack graphs and fact indexes.
    """
    if not applies_to(query, context=context):
        raise UnsupportedQueryError(
            f"Theorem 3 does not apply to {query}: its attack graph has a strong or nonterminal cycle"
        )
    return peel_certain(db, query, _weak_terminal_base_case, context=context)


def _weak_terminal_base_case(
    db: UncertainDatabase,
    query: ConjunctiveQuery,
    graph: AttackGraph,
    index: Optional[FactIndex] = None,
) -> bool:
    """Base case of Theorem 3: disjoint weak terminal 2-cycles.

    On the columnar backend (the peeling recursion threads an index whose
    ``store`` holds the purified database as id-rows) the whole base case —
    partitioning, pair purification, block-digraph marking and the final
    Sublemma 5 check — runs on int tuples via
    :func:`_weak_terminal_base_case_ids`.
    """
    store = getattr(index, "store", None)
    if store is not None:
        return _weak_terminal_base_case_ids(query, graph, store)
    cycles = _disjoint_two_cycles(graph)
    shared_variables = _cross_cycle_variables(query, cycles)

    certified: Set[Fact] = set()
    for first, second in cycles:
        pair_query = query.restricted_to([first, second])
        pair_shared = sorted(
            (first.variables | second.variables) & shared_variables,
            key=lambda v: v.name,
        )
        partitions = _partitions(db, first, second, pair_shared)
        for facts in partitions.values():
            partition_db = UncertainDatabase(facts)
            if certain_two_atom(partition_db, pair_query):
                certified.update(facts)
    return satisfies(certified, query)


def _weak_terminal_base_case_ids(
    query: ConjunctiveQuery,
    graph: AttackGraph,
    store: ColumnarFactStore,
) -> bool:
    """Id-space Theorem 3 base case over the columnar store of the database.

    Mirrors the object path exactly, with two execution-level improvements:
    rows are partitioned by shared-variable id vectors through
    :class:`~repro.store.kernels.AtomMatcher` (no fact decoding), and the
    attack graph of each cycle's pair query is classified once per cycle
    instead of once per partition.
    """
    cycles = _disjoint_two_cycles(graph)
    shared_variables = _cross_cycle_variables(query, cycles)

    certified: Dict[str, Set[IntRow]] = {}
    for first, second in cycles:
        pair_query = query.restricted_to([first, second])
        pair_shared = sorted(
            (first.variables | second.variables) & shared_variables,
            key=lambda v: v.name,
        )
        matchers = (AtomMatcher(first, store), AtomMatcher(second, store))
        partitions: Dict[IntRow, Tuple[List[IntRow], List[IntRow]]] = {}
        for side, matcher in enumerate(matchers):
            for row in store.relation_rows(matcher.name):
                if not matcher.match(row):
                    # The base case is always entered with a purified
                    # database, so non-matching rows do not occur; skip
                    # defensively (mirrors the object path).
                    continue
                vector = matcher.values(row, pair_shared)
                entry = partitions.get(vector)
                if entry is None:
                    entry = ([], [])
                    partitions[vector] = entry
                entry[side].append(row)

        pair_graph = AttackGraph(pair_query)
        acyclic = pair_graph.is_acyclic()
        if not acyclic and has_strong_cycle(pair_graph):
            raise IntractableQueryError(
                f"CERTAINTY({pair_query}) is coNP-complete (strong attack cycle); "
                "no polynomial algorithm applies"
            )
        for first_rows, second_rows in partitions.values():
            if acyclic:
                # Rare shape (a 2-cycle of the outer graph whose restricted
                # pair query is acyclic): decode the partition and run the
                # FO peeling recursion, as `certain_two_atom` would.
                facts = [
                    Fact(first.relation, store.decode_row(row)) for row in first_rows
                ] + [Fact(second.relation, store.decode_row(row)) for row in second_rows]
                certain = peel_certain(
                    UncertainDatabase(facts), pair_query, empty_base_case
                )
            else:
                certain = certain_weak_cycle_pair_rows(
                    store, pair_query, first_rows, second_rows
                )
            if certain:
                certified.setdefault(first.relation.name, set()).update(first_rows)
                certified.setdefault(second.relation.name, set()).update(second_rows)
    # Sublemma 5: certain iff the union of the certain partitions satisfies
    # the query — evaluated without materialising the union as facts.
    return has_witness(query, store, allowed=certified)


def _disjoint_two_cycles(graph: AttackGraph) -> List[Tuple[Atom, Atom]]:
    """The weak terminal 2-cycles that partition the atoms in the base case."""
    cycles: List[Tuple[Atom, Atom]] = []
    covered: Set[Atom] = set()
    for component in strongly_connected_components(graph):
        if len(component) != 2:
            raise UnsupportedQueryError(
                "base case of Theorem 3 expects disjoint attack 2-cycles; "
                f"found a strongly connected component of size {len(component)}"
            )
        first, second = sorted(component, key=str)
        if not (graph.has_attack(first, second) and graph.has_attack(second, first)):
            raise UnsupportedQueryError("strongly connected pair without a mutual attack")
        if graph.is_strong_attack(first, second) or graph.is_strong_attack(second, first):
            raise UnsupportedQueryError("base case of Theorem 3 requires weak cycles only")
        for atom in component:
            for target in graph.attacks_from(atom):
                if target not in component:
                    raise UnsupportedQueryError("base case of Theorem 3 requires terminal cycles")
        cycles.append((first, second))
        covered |= component
    if covered != set(graph.atoms):
        raise UnsupportedQueryError("every atom must lie on an attack cycle in the base case")
    return cycles


def _cross_cycle_variables(
    query: ConjunctiveQuery,
    cycles: Sequence[Tuple[Atom, Atom]],
) -> FrozenSet[Variable]:
    """Variables that occur in more than one attack cycle (the partition vectors)."""
    occurrence: Dict[Variable, int] = defaultdict(int)
    for first, second in cycles:
        for variable in first.variables | second.variables:
            occurrence[variable] += 1
    return frozenset(v for v, count in occurrence.items() if count > 1)


def _partitions(
    db: UncertainDatabase,
    first: Atom,
    second: Atom,
    shared: Sequence[Variable],
) -> Dict[Tuple[Constant, ...], List[Fact]]:
    """Group the facts over the two cycle relations by their shared-variable vector.

    Two facts of different partitions are never key-equal (the shared
    variables are key variables of both atoms, Lemma 7), so every repair of
    the pair sub-database decomposes into independent repairs per partition.
    """
    partitions: Dict[Tuple[Constant, ...], List[Fact]] = defaultdict(list)
    for atom in (first, second):
        for fact in db.relation_facts(atom.relation.name):
            binding = match_full_atom(atom, fact)
            if binding is None:
                # The base case is always entered with a purified database, so
                # non-matching facts do not occur; skip defensively.
                continue
            vector = tuple(binding[v] for v in shared)
            partitions[vector].append(fact)
    return partitions
