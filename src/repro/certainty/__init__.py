"""CERTAINTY(q) solvers: purification, oracle, and the paper's polynomial algorithms."""

from .brute_force import (
    BruteForceResult,
    brute_force_with_certificate,
    certain_brute_force,
    certain_by_enumeration,
)
from .context import SolverContext
from .cycle_query import certain_ck_via_reduction, certain_cycle_query, lemma9_expand
from .exceptions import CertaintyError, IntractableQueryError, UnsupportedQueryError
from .pair_solver import certain_two_atom, certain_weak_cycle_pair, is_two_atom_query
from .peeling import peel_certain
from .purify import (
    is_purified,
    purify,
    purify_copy_count,
    purify_index_build_counts,
    purify_with_index,
    relevant_facts,
    reset_purify_copy_count,
    reset_purify_index_build_counts,
)
from .reductions import Theorem2Reduction, theorem2_reduction
from .rewriting import certain_fo, certain_fo_rewriting, is_fo_expressible
from .solver import CertaintyOutcome, certain_answers, is_certain, solve
from .terminal_cycles import certain_terminal_cycles

__all__ = [
    "BruteForceResult",
    "CertaintyError",
    "CertaintyOutcome",
    "IntractableQueryError",
    "SolverContext",
    "Theorem2Reduction",
    "UnsupportedQueryError",
    "brute_force_with_certificate",
    "certain_answers",
    "certain_brute_force",
    "certain_by_enumeration",
    "certain_ck_via_reduction",
    "certain_cycle_query",
    "certain_fo",
    "certain_fo_rewriting",
    "certain_terminal_cycles",
    "certain_two_atom",
    "certain_weak_cycle_pair",
    "is_certain",
    "is_fo_expressible",
    "is_purified",
    "is_two_atom_query",
    "lemma9_expand",
    "peel_certain",
    "purify",
    "purify_copy_count",
    "purify_index_build_counts",
    "purify_with_index",
    "relevant_facts",
    "reset_purify_copy_count",
    "reset_purify_index_build_counts",
    "solve",
    "theorem2_reduction",
]
