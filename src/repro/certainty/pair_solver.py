"""Polynomial CERTAINTY solver for two-atom queries (Kolaitis–Pema coverage).

Kolaitis and Pema (IPL 2012) showed that for every self-join-free query
``q = {F, G}`` with exactly two atoms, ``CERTAINTY(q)`` is either in P or
coNP-complete.  In the paper's terminology the dichotomy reads: coNP-complete
when the attack graph of ``q`` has a strong cycle, in P otherwise.  The
tractable non-FO case (a *weak* attack cycle ``F ⇄ G``) is what the base
case of Theorem 3 needs.

Kolaitis and Pema solve that case by reduction to maximum independent sets
in claw-free graphs (Minty's algorithm).  This module instead decides it
with a direct graph-marking algorithm that generalises the technique of the
paper's own Theorem 4, documented in DESIGN.md:

* every block of ``F``'s relation (resp. ``G``'s) becomes a vertex;
* every fact becomes a directed edge from its own block to the block of the
  partner atom determined by its values (for a weak cycle, ``key(G)`` is
  contained in ``vars(F)`` and vice versa, so the partner block is fully
  determined), labelled with the fact's values for the shared non-key
  variables;
* a repair picks one outgoing edge per vertex; it satisfies the query iff it
  picks both halves of a *join pair*: two anti-parallel edges with equal
  labels.  After purification (Lemma 1) every edge is half of a join pair,
  so the graph decomposes into strongly connected components with no edges
  between them.

A falsifying repair exists iff **every** component admits a marked cycle
that is not a join pair, which happens iff the component contains either an
anti-parallel pair of edges with *different* labels, or an elementary cycle
(on block vertices) of length greater than two.  Hence ``db ∈ CERTAINTY(q)``
iff some component has neither — which the solver checks in polynomial time.
The solver is validated against the brute-force oracle in the test suite.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from ..attacks.cycles import has_strong_cycle
from ..attacks.graph import AttackGraph
from ..model.atoms import Atom, Fact
from ..model.database import UncertainDatabase
from ..model.symbols import Constant, is_constant
from ..query.conjunctive import ConjunctiveQuery
from ..store.columnar import ColumnarFactStore, IntKey, IntRow
from ..store.kernels import AtomMatcher
from .exceptions import IntractableQueryError, UnsupportedQueryError
from .peeling import match_full_atom, peel_certain, empty_base_case
from .purify import purify

#: Vertex of the block digraph: (side, key constants) where side is "F" or
#: "G"; the id-space path uses key id-tuples instead of constants (every
#: algorithm below is generic over hashable, str-sortable vertices).
_Node = Tuple[str, Tuple[Constant, ...]]


class _Edge:
    """A fact viewed as an edge of the block digraph."""

    __slots__ = ("source", "target", "label", "fact")

    def __init__(self, source: _Node, target: _Node, label: Tuple[Constant, ...], fact: Fact) -> None:
        self.source = source
        self.target = target
        self.label = label
        self.fact = fact


def is_two_atom_query(query: ConjunctiveQuery) -> bool:
    """``True`` iff the query has exactly two atoms and no self-join."""
    return len(query) == 2 and not query.has_self_join


def certain_two_atom(db: UncertainDatabase, query: ConjunctiveQuery) -> bool:
    """Decide ``db ∈ CERTAINTY(q)`` for a two-atom self-join-free query.

    Dispatches on the attack graph: acyclic → peeling recursion (FO case);
    weak 2-cycle → graph-marking algorithm; strong cycle →
    :class:`IntractableQueryError` (the caller may fall back to brute force).
    """
    if not is_two_atom_query(query):
        raise UnsupportedQueryError("certain_two_atom expects exactly two atoms without self-join")
    graph = AttackGraph(query)
    if graph.is_acyclic():
        return peel_certain(db, query, empty_base_case)
    if has_strong_cycle(graph):
        raise IntractableQueryError(
            f"CERTAINTY({query}) is coNP-complete (strong attack cycle); no polynomial algorithm applies"
        )
    return certain_weak_cycle_pair(db, query)


def certain_weak_cycle_pair(db: UncertainDatabase, query: ConjunctiveQuery) -> bool:
    """The graph-marking decision procedure for a weak attack cycle ``F ⇄ G``."""
    if not is_two_atom_query(query):
        raise UnsupportedQueryError("certain_weak_cycle_pair expects exactly two atoms")
    first, second = query.atoms
    for one, other in ((first, second), (second, first)):
        if not one.key_variables.issubset(other.variables):
            raise UnsupportedQueryError(
                f"key({one}) is not contained in vars({other}); "
                "the query does not have a weak attack cycle"
            )
    purified = purify(db, query)
    if not purified:
        return False

    edges, adjacency = _build_block_graph(purified, first, second)
    components = _strongly_connected_components(adjacency)
    for component in components:
        if len(component) < 2:
            # An isolated vertex cannot appear: every edge lies on a 2-cycle
            # after purification.  Treat it defensively as non-falsifiable.
            return True
        if not _component_falsifiable(component, edges, adjacency):
            return True
    return False


def certain_weak_cycle_pair_rows(
    store: ColumnarFactStore,
    query: ConjunctiveQuery,
    first_rows: Sequence[IntRow],
    second_rows: Sequence[IntRow],
) -> bool:
    """Id-space twin of :func:`certain_weak_cycle_pair` over columnar rows.

    *first_rows* / *second_rows* are the id-rows (drawn from *store*) over
    the relations of the query's two atoms; the Theorem 3 base case hands in
    one partition at a time.  Pair purification, block-digraph construction
    and the per-component decision all run on int tuples — nothing is
    decoded back into fact objects.
    """
    if not is_two_atom_query(query):
        raise UnsupportedQueryError("certain_weak_cycle_pair_rows expects exactly two atoms")
    first, second = query.atoms
    for one, other in ((first, second), (second, first)):
        if not one.key_variables.issubset(other.variables):
            raise UnsupportedQueryError(
                f"key({one}) is not contained in vars({other}); "
                "the query does not have a weak attack cycle"
            )
    shared = sorted(first.variables & second.variables, key=lambda v: v.name)
    key_vars = first.key_variables | second.key_variables
    extra = sorted(set(shared) - key_vars, key=lambda v: v.name)

    atoms = (first, second)
    matchers = (AtomMatcher(first, store), AtomMatcher(second, store))
    blocks: Tuple[Dict[IntKey, List[IntRow]], ...] = ({}, {})
    for side, rows in enumerate((first_rows, second_rows)):
        key_size = atoms[side].relation.key_size
        matcher = matchers[side]
        side_blocks = blocks[side]
        for row in rows:
            if not matcher.match(row):
                continue  # cannot happen on a purified database
            side_blocks.setdefault(row[:key_size], []).append(row)

    # Pair purification (Lemma 1) in id space: a row lies on a witness iff
    # its shared-variable id vector occurs on the other side; a block with a
    # stale row is dropped whole, and removals cascade to a fixpoint.
    while True:
        vectors = tuple(
            {
                matchers[side].values(row, shared)
                for rows in blocks[side].values()
                for row in rows
            }
            for side in (0, 1)
        )
        stale = False
        for side in (0, 1):
            partner_vectors = vectors[1 - side]
            matcher = matchers[side]
            dead = [
                key
                for key, rows in blocks[side].items()
                if any(matcher.values(row, shared) not in partner_vectors for row in rows)
            ]
            for key in dead:
                del blocks[side][key]
                stale = True
        if not stale:
            break
    if not blocks[0] or not blocks[1]:
        return False

    # Same block digraph as `_build_block_graph`, on id-tuple vertices.
    edges: List[_Edge] = []
    adjacency: Dict[_Node, Set[_Node]] = defaultdict(set)
    tags = ("F", "G")
    for side in (0, 1):
        matcher = matchers[side]
        partner = atoms[1 - side]
        own_tag, partner_tag = tags[side], tags[1 - side]
        for key, rows in blocks[side].items():
            source: _Node = (own_tag, key)
            for row in rows:
                target: _Node = (partner_tag, matcher.project(row, partner.key_terms))
                label = matcher.values(row, extra)
                edges.append(_Edge(source, target, label, row))
                adjacency[source].add(target)
                adjacency.setdefault(target, set())

    for component in _strongly_connected_components(adjacency):
        if len(component) < 2:
            return True
        if not _component_falsifiable(component, edges, adjacency):
            return True
    return False


# -- graph construction ------------------------------------------------------------


def _build_block_graph(
    db: UncertainDatabase,
    first: Atom,
    second: Atom,
) -> Tuple[List[_Edge], Dict[_Node, Set[_Node]]]:
    shared = first.variables & second.variables
    key_vars = first.key_variables | second.key_variables
    extra = sorted(shared - key_vars, key=lambda v: v.name)

    edges: List[_Edge] = []
    adjacency: Dict[_Node, Set[_Node]] = defaultdict(set)

    def add_side(own: Atom, own_side: str, partner: Atom, partner_side: str) -> None:
        for fact in db.relation_facts(own.relation.name):
            binding = match_full_atom(own, fact)
            if binding is None:
                continue  # cannot happen on a purified database
            source: _Node = (own_side, fact.key_terms)
            target_key = tuple(
                term if is_constant(term) else binding[term] for term in partner.key_terms
            )
            target: _Node = (partner_side, target_key)
            label = tuple(binding[v] for v in extra)
            edges.append(_Edge(source, target, label, fact))
            adjacency[source].add(target)
            adjacency.setdefault(target, set())

    add_side(first, "F", second, "G")
    add_side(second, "G", first, "F")
    return edges, adjacency


def _strongly_connected_components(adjacency: Dict[_Node, Set[_Node]]) -> List[FrozenSet[_Node]]:
    """Iterative Tarjan SCC over the block digraph."""
    index: Dict[_Node, int] = {}
    lowlink: Dict[_Node, int] = {}
    on_stack: Set[_Node] = set()
    stack: List[_Node] = []
    components: List[FrozenSet[_Node]] = []
    counter = [0]

    for root in sorted(adjacency, key=str):
        if root in index:
            continue
        work: List[Tuple[_Node, List[_Node], int]] = [(root, sorted(adjacency[root], key=str), 0)]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors, position = work.pop()
            advanced = False
            while position < len(successors):
                successor = successors[position]
                position += 1
                if successor not in index:
                    work.append((node, successors, position))
                    index[successor] = lowlink[successor] = counter[0]
                    counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, sorted(adjacency[successor], key=str), 0))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            if lowlink[node] == index[node]:
                component: Set[_Node] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(frozenset(component))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


# -- per-component decision -----------------------------------------------------------


def _component_falsifiable(
    component: FrozenSet[_Node],
    edges: Sequence[_Edge],
    adjacency: Dict[_Node, Set[_Node]],
) -> bool:
    """Can the falsifier pick one fact per block of this component without
    completing a join pair?"""
    local_edges = [e for e in edges if e.source in component and e.target in component]

    # Case (a): an anti-parallel pair of facts with different labels.
    labels: Dict[Tuple[_Node, _Node], Set[Tuple[Constant, ...]]] = defaultdict(set)
    for edge in local_edges:
        labels[(edge.source, edge.target)].add(edge.label)
    for (source, target), label_set in labels.items():
        reverse = labels.get((target, source))
        if reverse is None:
            continue
        if len(label_set | reverse) >= 2:
            return True

    # Case (b): an elementary cycle of length > 2 on the block vertices.
    simple: Dict[_Node, Set[_Node]] = {
        node: {n for n in adjacency.get(node, set()) if n in component} for node in component
    }
    return _has_long_cycle(simple)


def _has_long_cycle(simple: Dict[_Node, Set[_Node]]) -> bool:
    """Does the simple digraph contain an elementary cycle of length > 2?

    Following the technique of Theorem 4 (specialised to ``k = 2``): such a
    cycle exists iff there are vertices ``n1 → n2 → n3`` with ``n3 ≠ n1`` and
    a path from ``n3`` back to ``n1`` that uses no edge leaving ``n1`` or
    ``n2``.
    """
    for n1 in simple:
        for n2 in simple[n1]:
            if n2 == n1:
                continue
            for n3 in simple.get(n2, set()):
                if n3 == n1 or n3 == n2:
                    continue
                if _reaches(simple, n3, n1, blocked_sources={n1, n2}):
                    return True
    return False


def _reaches(
    simple: Dict[_Node, Set[_Node]],
    start: _Node,
    goal: _Node,
    blocked_sources: Set[_Node],
) -> bool:
    seen: Set[_Node] = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        if node == goal:
            return True
        if node in blocked_sources:
            continue
        for successor in simple.get(node, set()):
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return False
