"""The polynomial-time reductions of the paper, materialised as executable code.

* :func:`theorem2_reduction` — the many-one reduction at the heart of
  Theorem 2: from ``CERTAINTY(q0)`` (``q0 = {R0(x|y), S0(y,z|x)}``, known to
  be coNP-complete) to ``CERTAINTY(q)`` for any acyclic self-join-free ``q``
  whose attack graph has a strong cycle.  Every valuation ``θ`` over
  ``{x,y,z}`` witnessing ``q0`` in the source database is mapped to a
  valuation ``θ̂`` over ``vars(q)`` according to the six regions of the Venn
  diagram of ``F^{+,q}``, ``G^{+,q}`` and ``F^{⊞,q}`` (Figure 3), and the
  target database is ``{θ̂(H) | H ∈ q, θ ∈ V}``.

* :func:`lemma9_expand` (re-exported from :mod:`repro.certainty.cycle_query`)
  — the AC0 reduction that adds full all-key relations.

These reductions prove hardness in the paper; here they are used to *verify*
the equivalences they claim on concrete instances (experiment E6) and to
manufacture hard instances for the brute-force solver.
"""

from __future__ import annotations


from ..attacks.closure import box_closure, plus_closure
from ..attacks.cycles import strong_two_cycle
from ..attacks.graph import AttackGraph
from ..model.database import UncertainDatabase
from ..model.symbols import Constant, Variable
from ..model.valuation import Valuation
from ..query.conjunctive import ConjunctiveQuery
from ..query.evaluation import all_valuations
from ..query.families import kolaitis_pema_q0
from .cycle_query import lemma9_expand
from .exceptions import UnsupportedQueryError
from .purify import purify

__all__ = ["Theorem2Reduction", "theorem2_reduction", "lemma9_expand"]


class Theorem2Reduction:
    """The θ̂ construction for a fixed target query ``q`` with a strong cycle."""

    def __init__(self, query: ConjunctiveQuery) -> None:
        if query.has_self_join:
            raise UnsupportedQueryError("Theorem 2 applies to self-join-free queries")
        self.query = query
        graph = AttackGraph(query)
        witness = strong_two_cycle(graph)
        if witness is None:
            raise UnsupportedQueryError(
                f"the attack graph of {query} has no strong cycle; Theorem 2 does not apply"
            )
        self.attacker, self.attacked = witness  # attacker ⤳ attacked is strong, mutual attack
        self.plus_f = plus_closure(query, self.attacker)
        self.plus_g = plus_closure(query, self.attacked)
        self.box_f = box_closure(query, self.attacker)
        self.source_query = kolaitis_pema_q0()

    # -- the θ̂ mapping ---------------------------------------------------------------

    def hat_value(self, variable: Variable, x: Constant, y: Constant, z: Constant) -> Constant:
        """``θ̂(u)`` for ``θ = {x ↦ x, y ↦ y, z ↦ z}`` following the six Venn regions."""
        in_plus_f = variable in self.plus_f
        in_plus_g = variable in self.plus_g
        in_box_f = variable in self.box_f
        if in_plus_f and in_plus_g:
            return Constant("d")
        if in_plus_f and not in_plus_g:
            return x
        if in_plus_g and not in_box_f:
            return Constant((y.value, z.value))
        if in_plus_g and in_box_f and not in_plus_f:
            return y
        if in_box_f and not in_plus_f and not in_plus_g:
            return Constant((x.value, y.value))
        return Constant((x.value, y.value, z.value))

    def hat_valuation(self, x: Constant, y: Constant, z: Constant) -> Valuation:
        """The valuation ``θ̂`` over ``vars(q)`` induced by ``(x, y, z)``."""
        return Valuation({v: self.hat_value(v, x, y, z) for v in self.query.variables})

    # -- the database mapping ------------------------------------------------------------

    def transform(self, db0: UncertainDatabase) -> UncertainDatabase:
        """Map an instance of ``CERTAINTY(q0)`` to an instance of ``CERTAINTY(q)``.

        ``db0 ∈ CERTAINTY(q0)  ⇔  transform(db0) ∈ CERTAINTY(q)`` (Theorem 2).
        """
        purified = purify(db0, self.source_query)
        x_var, y_var, z_var = Variable("x"), Variable("y"), Variable("z")
        target = UncertainDatabase()
        for valuation in all_valuations(self.source_query, purified.facts):
            x, y, z = valuation[x_var], valuation[y_var], valuation[z_var]
            hat = self.hat_valuation(x, y, z)
            for atom in self.query.atoms:
                target.add(hat.ground(atom))
        return target

    def __repr__(self) -> str:
        return f"Theorem2Reduction(target={self.query}, strong pair {self.attacker} ⇄ {self.attacked})"


def theorem2_reduction(query: ConjunctiveQuery, db0: UncertainDatabase) -> UncertainDatabase:
    """One-shot convenience wrapper around :class:`Theorem2Reduction`."""
    return Theorem2Reduction(query).transform(db0)
