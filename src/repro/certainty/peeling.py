"""The unattacked-atom peeling recursion shared by the polynomial solvers.

Both the first-order case (acyclic attack graph, Theorem 1) and the
Theorem 3 case (weak terminal cycles) decide certainty with the same outer
recursion, taken from the proof of Theorem 3:

* purify the database (Lemma 1);
* while the attack graph of the current query has an *unattacked* atom ``F``
  with key variables ``x⃗``:

  - by Corollary 8.11 of Wijsen (TODS 2012), ``db ∈ CERTAINTY(q)`` iff for
    some constants ``ā``, ``db ∈ CERTAINTY(q[x⃗ ↦ ā])``; only values ``ā``
    realised by an actual block of ``F``'s relation can succeed, so the
    candidates are the matching blocks of the (purified) database;
  - by Lemma 8, for a ground-key atom, the candidate succeeds iff the
    purified database is nonempty and *every* fact of the candidate block
    matches the atom and leads to a certain residual query
    ``(q \\ {F})[x⃗ y⃗ ↦ ā b̄]``;

* when no unattacked atom remains, delegate to a *base-case handler* — the
  empty-query handler for the FO case, the weak-cycle-partition handler for
  Theorem 3.

The recursion is polynomial in the size of the database for a fixed query
(the branching factor at each level is bounded by the number of blocks and
facts, and the depth is bounded by the number of atoms).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from ..attacks.graph import AttackGraph
from ..model.atoms import Atom, Fact
from ..model.database import UncertainDatabase
from ..model.symbols import Constant, Variable, is_constant
from ..query.conjunctive import ConjunctiveQuery
from ..query.evaluation import FactIndex
from ..query.substitution import substitute_atom, substitute_query
from .context import SolverContext
from .exceptions import UnsupportedQueryError
from .purify import purify_with_index

#: A base-case handler decides certainty for a (purified) database and a
#: query whose attack graph has no unattacked atom.  The final argument is
#: an up-to-date fact index over the database (``None`` when the recursion
#: had none to thread); columnar-aware handlers read its ``store`` to run
#: on id-rows.
BaseCaseHandler = Callable[
    [UncertainDatabase, ConjunctiveQuery, AttackGraph, Optional[FactIndex]], bool
]


def match_key_pattern(atom: Atom, key_values: Sequence[Constant]) -> Optional[Dict[Variable, Constant]]:
    """Match a block's key constants against the key terms of *atom*.

    Returns the induced binding of the atom's key variables, or ``None`` when
    a constant position disagrees or a repeated variable would need two
    different values.
    """
    if len(key_values) != len(atom.key_terms):
        return None
    binding: Dict[Variable, Constant] = {}
    for term, value in zip(atom.key_terms, key_values):
        if is_constant(term):
            if term != value:
                return None
        else:
            existing = binding.get(term)
            if existing is None:
                binding[term] = value
            elif existing != value:
                return None
    return binding


def match_full_atom(atom: Atom, fact: Fact) -> Optional[Dict[Variable, Constant]]:
    """Match *fact* against *atom*; return the full variable binding or ``None``."""
    if atom.relation.name != fact.relation.name or atom.relation.arity != fact.relation.arity:
        return None
    binding: Dict[Variable, Constant] = {}
    for term, value in zip(atom.terms, fact.terms):
        if is_constant(term):
            if term != value:
                return None
        else:
            existing = binding.get(term)
            if existing is None:
                binding[term] = value
            elif existing != value:
                return None
    return binding


def peel_certain(
    db: UncertainDatabase,
    query: ConjunctiveQuery,
    base_case: BaseCaseHandler,
    _purified: bool = False,
    context: Optional[SolverContext] = None,
    index: Optional[FactIndex] = None,
) -> bool:
    """Decide ``db ∈ CERTAINTY(q)`` by the unattacked-atom recursion.

    *base_case* is invoked when the attack graph of the (residual) query has
    no unattacked atom; it receives the purified database, the residual
    query, its attack graph, and a covering fact index.  *context*, when
    given, supplies memoised attack graphs (residual queries repeat across
    blocks) and a shared fact index for the initial purification.  *index*,
    when given, must cover exactly the facts of *db*: the recursion threads
    the indexes returned by :func:`purify_with_index` through its residual
    calls, so deep recursions never rebuild an index over an unchanged
    database — and sessions on the columnar backend keep id-space purify
    sweeps at every level.
    """
    if query.has_self_join:
        raise UnsupportedQueryError("the peeling recursion requires a self-join-free query")
    if query.is_empty:
        return True
    if index is not None:
        shared_index = index
    else:
        shared_index = context.index_for(db) if context is not None else None
    if _purified:
        current, current_index = db, shared_index
    else:
        current, current_index = purify_with_index(db, query, index=shared_index)
    if not current:
        return False

    graph = context.attack_graph(query) if context is not None else AttackGraph(query)
    unattacked = graph.unattacked_atoms()
    if not unattacked:
        return base_case(current, query, graph, current_index)

    # One index per recursion level: `purify_with_index` returned (or was
    # handed) an index covering `current`, and purify never mutates a
    # caller-supplied index, so every per-block re-purification below can
    # share it.  The index keeps the caller's backend, so sessions on the
    # columnar backend sweep block-id arrays throughout the recursion.
    if current_index is None:
        current_index = FactIndex(current.facts)
    level_index = current_index

    # Deterministically pick the unattacked atom with the fewest key variables
    # (cheapest branching), breaking ties by string representation.
    atom = min(unattacked, key=lambda a: (len(a.key_variables), str(a)))
    residual = query.without(atom)

    candidate_blocks = [
        block for block in current.blocks_of_relation(atom.relation.name)
    ]
    for block in sorted(candidate_blocks, key=lambda b: min(str(f) for f in b)):
        key_values = next(iter(block)).key_terms
        key_binding = match_key_pattern(atom, key_values)
        if key_binding is None:
            continue
        grounded_query = substitute_query(query, key_binding)
        grounded_atom = substitute_atom(atom, key_binding)
        candidate_db, candidate_index = purify_with_index(
            current, grounded_query, index=level_index
        )
        if not candidate_db:
            continue
        block_facts = candidate_db.relation_facts(atom.relation.name)
        success = True
        for fact in sorted(block_facts, key=str):
            full_binding = match_full_atom(grounded_atom, fact)
            if full_binding is None:
                success = False
                break
            residual_query = substitute_query(
                substitute_query(residual, key_binding), full_binding
            )
            if not peel_certain(
                candidate_db,
                residual_query,
                base_case,
                context=context,
                index=candidate_index,
            ):
                success = False
                break
        if success:
            return True
    return False


def empty_base_case(
    db: UncertainDatabase,
    query: ConjunctiveQuery,
    graph: AttackGraph,
    index: Optional[FactIndex] = None,
) -> bool:
    """Base case for the first-order solver: it must never be reached.

    If the attack graph of the original query is acyclic, Lemma 5 guarantees
    that every residual query also has an acyclic attack graph and therefore
    an unattacked atom, so the recursion always bottoms out at the empty
    query.  Reaching this handler means the query was not FO-classifiable.
    """
    raise UnsupportedQueryError(
        f"residual query {query} has no unattacked atom; "
        "its attack graph is cyclic, so the FO solver does not apply"
    )
