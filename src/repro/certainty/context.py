"""Shared precomputed state for the certainty solvers.

Every solver in this package historically rebuilt its own structures from
scratch on each call: attack graphs of (residual) queries, cycle-shape
detection, and fact indexes over the database.  A :class:`SolverContext`
bundles those structures so they can be computed once — by the engine's
``QueryPlan``/``CertaintySession`` layer — and shared across many calls.

All solver entry points accept ``context=None`` and behave exactly as
before when no context is given, so the one-shot APIs are unaffected.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from ..attacks.graph import AttackGraph
from ..core.classify import Classification
from ..model.database import UncertainDatabase
from ..query.conjunctive import ConjunctiveQuery
from ..query.evaluation import FactIndex
from ..query.families import CycleQueryShape, cycle_query_shape

#: Cap on the number of memoised attack graphs / cycle shapes per context.
#: Residual queries produced by the peeling recursion are distinct per
#: grounding, so a long-lived session context could otherwise grow without
#: bound; when the cap is hit the memo is simply dropped and rebuilt.
_MEMO_CAP = 4096

_SHAPE_MISS = object()


class SolverContext:
    """Precomputed, reusable state threaded through the certainty solvers.

    Parameters
    ----------
    db:
        The *root* database the context's shared :class:`FactIndex` covers.
        Solvers work on purified copies internally; the shared index is only
        substituted when a solver is asked about this exact database object.
    index:
        An up-to-date fact index over *db* (typically the incrementally
        maintained index of a ``CertaintySession``).
    classification:
        The classification of the query being solved, when already known.
    """

    def __init__(
        self,
        db: Optional[UncertainDatabase] = None,
        index: Optional[FactIndex] = None,
        classification: Optional[Classification] = None,
    ) -> None:
        self.db = db
        self.index = index
        self.classification = classification
        self._graphs: Dict[ConjunctiveQuery, AttackGraph] = {}
        self._shapes: Dict[ConjunctiveQuery, Optional[CycleQueryShape]] = {}
        # Contexts are session-local (one per CertaintySession / worker),
        # but a session may still be driven from several threads; the memo
        # dicts and their cap-eviction are guarded so lookups stay atomic.
        self._lock = threading.RLock()

    def attack_graph(self, query: ConjunctiveQuery) -> AttackGraph:
        """The attack graph of *query*, memoised across solver calls."""
        with self._lock:
            graph = self._graphs.get(query)
        if graph is None:
            graph = AttackGraph(query)  # pure; built outside the lock
            with self._lock:
                existing = self._graphs.get(query)
                if existing is not None:
                    return existing
                if len(self._graphs) >= _MEMO_CAP:
                    self._graphs.clear()
                self._graphs[query] = graph
        return graph

    def cycle_shape(self, query: ConjunctiveQuery) -> Optional[CycleQueryShape]:
        """The ``C(k)``/``AC(k)`` shape of *query* (or ``None``), memoised."""
        with self._lock:
            shape = self._shapes.get(query, _SHAPE_MISS)
        if shape is _SHAPE_MISS:
            shape = cycle_query_shape(query)  # pure; built outside the lock
            with self._lock:
                cached = self._shapes.get(query, _SHAPE_MISS)
                if cached is not _SHAPE_MISS:
                    return cached  # type: ignore[return-value]
                if len(self._shapes) >= _MEMO_CAP:
                    self._shapes.clear()
                self._shapes[query] = shape
        return shape  # type: ignore[return-value]

    def index_for(self, db: UncertainDatabase) -> Optional[FactIndex]:
        """The shared index when *db* is the context's root database."""
        if self.db is not None and db is self.db:
            return self.index
        return None
