"""Purification of uncertain databases (Lemma 1).

An uncertain database ``db`` is *purified* relative to a query ``q`` when
every fact of ``db`` occurs in some valuation image ``θ(q) ⊆ db``.  Lemma 1
shows that any database can be purified in polynomial time without changing
membership in ``CERTAINTY(q)``: repeatedly find a fact that participates in
no witness and drop its *entire block* (the falsifier can "spend" that block
on the irrelevant fact, so the block contributes nothing to certainty).

All polynomial solvers in this package purify first; the graph-based
algorithms (Theorem 4 and the weak-cycle pair solver) furthermore rely on
purification for their structural preconditions (every edge of the fact
graph lies on a witness cycle).
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Set

from ..model.atoms import Fact
from ..model.database import UncertainDatabase
from ..query.conjunctive import ConjunctiveQuery
from ..query.evaluation import FactIndex, iterate_valuations


def relevant_facts(
    db: UncertainDatabase,
    query: ConjunctiveQuery,
    index: Optional[FactIndex] = None,
) -> FrozenSet[Fact]:
    """The facts of *db* that occur in at least one witness ``θ(q) ⊆ db``.

    When *index* is given it must be an up-to-date index over the facts of
    *db* (it is then used instead of building a fresh one).
    """
    if index is None:
        index = FactIndex(db.facts)
    used: Set[Fact] = set()
    for valuation in iterate_valuations(query, index):
        for atom in query.atoms:
            used.add(valuation.ground(atom))
    return frozenset(used)


def purify(
    db: UncertainDatabase,
    query: ConjunctiveQuery,
    index: Optional[FactIndex] = None,
) -> UncertainDatabase:
    """Return a purified copy of *db* relative to *query* (Lemma 1).

    The loop removes, as long as one exists, the block of a fact that is not
    part of any witness, and repeats (removals can cascade because witnesses
    may lose their support).  Certainty is preserved:
    ``purify(db, q) ∈ CERTAINTY(q)  ⇔  db ∈ CERTAINTY(q)``.

    *index*, when given, must cover exactly the facts of *db*; it is used
    for the first witness sweep only (later sweeps run on a shrunk copy).
    """
    current = db.copy()
    if query.is_empty:
        return current
    first_sweep = True
    while True:
        used = relevant_facts(current, query, index if first_sweep else None)
        first_sweep = False
        stale_blocks = {
            fact.block_key for fact in current.facts if fact not in used
        }
        if not stale_blocks:
            return current
        for block_key in stale_blocks:
            current.remove_block(block_key)


def is_purified(db: UncertainDatabase, query: ConjunctiveQuery) -> bool:
    """``True`` iff every fact of *db* participates in some witness of *query*."""
    if query.is_empty:
        return True
    used = relevant_facts(db, query)
    return all(fact in used for fact in db.facts)
