"""Purification of uncertain databases (Lemma 1).

An uncertain database ``db`` is *purified* relative to a query ``q`` when
every fact of ``db`` occurs in some valuation image ``θ(q) ⊆ db``.  Lemma 1
shows that any database can be purified in polynomial time without changing
membership in ``CERTAINTY(q)``: repeatedly find a fact that participates in
no witness and drop its *entire block* (the falsifier can "spend" that block
on the irrelevant fact, so the block contributes nothing to certainty).

All polynomial solvers in this package purify first; the graph-based
algorithms (Theorem 4 and the weak-cycle pair solver) furthermore rely on
purification for their structural preconditions (every edge of the fact
graph lies on a witness cycle).

Because every polynomial solver funnels through :func:`purify`, the function
is written for the common case of an *already purified* input: nothing is
copied until the first block is actually removed (the input database itself
is returned when no removal happens), and the working fact index is
maintained incrementally across removal sweeps instead of being rebuilt per
sweep.  :func:`purify_copy_count` exposes how many defensive copies were
made, so benchmarks and tests can assert the zero-copy fast path.
"""

from __future__ import annotations

import threading
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from ..model.atoms import Fact
from ..model.database import UncertainDatabase
from ..query.conjunctive import ConjunctiveQuery
from ..query.evaluation import FactIndex, iterate_valuations
from ..store.kernels import stale_block_keys

#: Process-wide count of databases copied by :func:`purify` (diagnostics).
_copy_count = 0
_copy_count_lock = threading.Lock()

#: Process-wide per-class counts of fact indexes *built* by purification
#: (diagnostics: deep peeling recursions should thread indexes instead).
_index_build_counts: Dict[str, int] = {}


def purify_index_build_counts() -> Dict[str, int]:
    """How many fact indexes :func:`purify_with_index` built, per class name.

    An index is *built* when the caller supplied none, or when the first
    block removal forces a private index over the copied database.  The
    peeling recursion threads the returned indexes through its residual
    calls, so deep recursions should show O(levels) builds — not one per
    purify call; the differential tests assert exactly that, and that the
    built class matches the session backend (columnar indexes all the way
    down).
    """
    with _copy_count_lock:
        return dict(_index_build_counts)


def reset_purify_index_build_counts() -> Dict[str, int]:
    """Reset the per-class index-build counters; returns the previous map."""
    global _index_build_counts
    with _copy_count_lock:
        previous = _index_build_counts
        _index_build_counts = {}
    return previous


def _note_index_build(index_cls: type) -> None:
    name = index_cls.__name__
    with _copy_count_lock:
        _index_build_counts[name] = _index_build_counts.get(name, 0) + 1


def purify_copy_count() -> int:
    """How many times :func:`purify` has copied its input database.

    Already-purified inputs take the zero-copy fast path, so solvers that
    repeatedly re-purify (e.g. the peeling recursion) do not pay O(db) per
    call; this counter lets benchmarks and tests assert exactly that.
    """
    return _copy_count


def reset_purify_copy_count() -> int:
    """Reset the copy counter; returns the previous value."""
    global _copy_count
    with _copy_count_lock:
        previous = _copy_count
        _copy_count = 0
    return previous


def _note_copy() -> None:
    global _copy_count
    with _copy_count_lock:
        _copy_count += 1


def relevant_facts(
    db: UncertainDatabase,
    query: ConjunctiveQuery,
    index: Optional[FactIndex] = None,
) -> FrozenSet[Fact]:
    """The facts of *db* that occur in at least one witness ``θ(q) ⊆ db``.

    When *index* is given it must be an up-to-date index over the facts of
    *db* (it is then used instead of building a fresh one).
    """
    if index is None:
        index = FactIndex(db.facts)
    used: Set[Fact] = set()
    for valuation in iterate_valuations(query, index):
        for atom in query.atoms:
            used.add(valuation.ground(atom))
    return frozenset(used)


def purify(
    db: UncertainDatabase,
    query: ConjunctiveQuery,
    index: Optional[FactIndex] = None,
) -> UncertainDatabase:
    """Return a purified database relative to *query* (Lemma 1).

    The loop removes, as long as one exists, the block of a fact that is not
    part of any witness, and repeats (removals can cascade because witnesses
    may lose their support).  Certainty is preserved:
    ``purify(db, q) ∈ CERTAINTY(q)  ⇔  db ∈ CERTAINTY(q)``.

    When no block needs removing, *db itself* is returned unchanged and
    nothing is copied; a copy is made lazily on the first removal, so the
    input database is never mutated.  *index*, when given, must cover
    exactly the facts of *db*; it is read (never mutated) by the witness
    sweeps.  Once a copy exists, the function maintains its own index over
    the copy incrementally — via the database observer hooks — instead of
    rebuilding an index per sweep.
    """
    return purify_with_index(db, query, index=index)[0]


def purify_with_index(
    db: UncertainDatabase,
    query: ConjunctiveQuery,
    index: Optional[FactIndex] = None,
) -> Tuple[UncertainDatabase, Optional[FactIndex]]:
    """:func:`purify`, also returning an index covering the result.

    The returned index is the caller's *index* when the zero-copy fast path
    applies, or the incrementally maintained private index over the purified
    copy otherwise — same backend class as the input index, so columnar
    callers keep columnar sweeps through arbitrarily deep residual
    recursions.  The peeling recursion threads it into its inner purify
    calls instead of rebuilding object indexes per level.  The index is
    only ``None`` when the query is empty and no index was supplied.

    The returned index is detached (not registered as an observer), so it
    stays valid only while the returned database is left unmutated — which
    holds for every solver caller (purified databases are read-only
    intermediates).
    """
    if query.is_empty:
        return db, index
    shared_index = index is not None
    if index is not None:
        current_index = index
    else:
        current_index = FactIndex(db.facts)
        _note_index_build(FactIndex)
    current = db
    working: Optional[UncertainDatabase] = None
    try:
        while True:
            store = getattr(current_index, "store", None)
            if store is not None:
                # Columnar index: sweep the per-block id arrays directly
                # (integer backtracking + integer row sets) and decode only
                # the stale block keys.
                stale_blocks: Iterable = stale_block_keys(query, store)
            else:
                used = relevant_facts(current, query, current_index)
                stale_blocks = {
                    fact.block_key for fact in current.facts if fact not in used
                }
            if not stale_blocks:
                return current, current_index
            if working is None:
                working = db.copy()
                _note_copy()
                if shared_index:
                    # The caller's index must stay untouched: build one
                    # private index over the copy (once — it is maintained
                    # incrementally from here on).  The copy keeps the
                    # caller's backend so later sweeps stay integer-encoded.
                    current_index = type(current_index)(working.facts)
                    _note_index_build(type(current_index))
                working.register_observer(current_index)
                current = working
            for block_key in stale_blocks:
                working.remove_block(block_key)
    finally:
        if working is not None:
            working.unregister_observer(current_index)


def is_purified(db: UncertainDatabase, query: ConjunctiveQuery) -> bool:
    """``True`` iff every fact of *db* participates in some witness of *query*."""
    if query.is_empty:
        return True
    used = relevant_facts(db, query)
    return all(fact in used for fact in db.facts)
