"""Exceptions raised by the CERTAINTY solvers."""

from __future__ import annotations


class CertaintyError(Exception):
    """Base class for solver errors."""


class UnsupportedQueryError(CertaintyError):
    """The query falls outside the scope of the requested algorithm."""


class IntractableQueryError(CertaintyError):
    """CERTAINTY(q) is coNP-complete (or open) and no exponential fallback was allowed."""
