"""Theorem 4 / Corollary 1: polynomial CERTAINTY solver for ``AC(k)`` and ``C(k)``.

The attack graph of ``AC(k)`` has weak *nonterminal* cycles, so Theorem 3
does not apply; Theorem 4 gives a dedicated graph algorithm.  Facts of the
ring relations ``R1, ..., Rk`` are the edges of a ``k``-partite directed
graph over (position-tagged) constants.  A repair picks one outgoing edge
per vertex; it satisfies the query iff the picked edges contain all edges of
a *witness cycle* — a ``k``-cycle that is encoded by an ``Sk`` fact (for
``AC(k)``) or any ``k``-cycle at all (for ``C(k)``, where no ``Sk`` atom
constrains the witnesses).

After purification the graph is a disjoint union of strongly connected
components.  A falsifying repair exists iff *every* component admits an
allowed marked cycle, i.e. contains a ``k``-cycle that is not a witness
cycle or an elementary cycle longer than ``k``.  Hence

    ``db ∈ CERTAINTY(q)``  ⇔  some component contains neither.

``C(k)`` (cyclic for ``k ≥ 3``, so outside the attack-graph framework) is
solved both directly (witness cycles = all ``k``-cycles) and through the
Lemma 9 reduction to ``AC(k)``, which is also provided for cross-checking.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..model.atoms import RelationSchema
from ..model.database import UncertainDatabase
from ..model.symbols import Constant
from ..query.conjunctive import ConjunctiveQuery
from ..query.families import CycleQueryShape, cycle_query_shape
from ..store.columnar import ColumnarFactStore
from .context import SolverContext
from .exceptions import UnsupportedQueryError
from .purify import purify_with_index

#: Graph vertex: (ring position starting at 0, constant).  The columnar
#: path uses (position, term id) instead — every algorithm below is generic
#: over hashable, str-sortable vertices.
_Node = Tuple[int, Constant]


def certain_cycle_query(
    db: UncertainDatabase,
    query: ConjunctiveQuery,
    context: Optional[SolverContext] = None,
) -> bool:
    """Decide ``db ∈ CERTAINTY(q)`` for a query of the ``C(k)``/``AC(k)`` shape.

    *context* optionally supplies the memoised cycle shape and a shared fact
    index for purification.
    """
    shape = context.cycle_shape(query) if context is not None else cycle_query_shape(query)
    if shape is None:
        raise UnsupportedQueryError(f"{query} is not of the C(k)/AC(k) shape of Definition 8")
    purified, purified_index = purify_with_index(
        db, query, index=context.index_for(db) if context is not None else None
    )
    if not purified:
        return False
    # On the columnar backend the purified index carries a store over the
    # purified facts; the fact graph is then built straight from id-rows.
    graph = _FactGraph(purified, shape, store=getattr(purified_index, "store", None))
    components = graph.strongly_connected_components()
    for component in components:
        if not graph.component_falsifiable(component):
            return True
    return False


class _FactGraph:
    """The k-partite fact graph of Theorem 4, with per-component decisions."""

    def __init__(
        self,
        db: UncertainDatabase,
        shape: CycleQueryShape,
        store: Optional[ColumnarFactStore] = None,
    ) -> None:
        self.shape = shape
        self.k = shape.k
        self.adjacency: Dict[_Node, Set[_Node]] = defaultdict(set)
        self.witness_cycles: Optional[Set[Tuple[_Node, ...]]] = None
        if store is not None:
            # Columnar path: vertices are (position, term id) and the whole
            # graph is assembled from the store's id-rows without decoding.
            for position, atom in enumerate(shape.ring_atoms):
                for row in store.relation_rows(atom.relation.name):
                    source = (position, row[0])
                    target = ((position + 1) % self.k, row[1])
                    self.adjacency[source].add(target)
                    self.adjacency.setdefault(target, set())
            if shape.sk_atom is not None:
                self.witness_cycles = set()
                for row in store.relation_rows(shape.sk_atom.relation.name):
                    values = dict(zip(shape.sk_atom.terms, row))
                    nodes = tuple(
                        (position, values[variable])
                        for position, variable in enumerate(shape.variables)
                    )
                    self.witness_cycles.add(nodes)
            return
        for position, atom in enumerate(shape.ring_atoms):
            for fact in db.relation_facts(atom.relation.name):
                source_value, target_value = fact.terms
                source: _Node = (position, source_value)
                target: _Node = ((position + 1) % self.k, target_value)
                self.adjacency[source].add(target)
                self.adjacency.setdefault(target, set())
        if shape.sk_atom is not None:
            self.witness_cycles = set()
            for fact in db.relation_facts(shape.sk_atom.relation.name):
                values = {var: value for var, value in zip(shape.sk_atom.terms, fact.terms)}
                nodes = tuple(
                    (position, values[variable])
                    for position, variable in enumerate(shape.variables)
                )
                self.witness_cycles.add(nodes)

    # -- structure ---------------------------------------------------------------

    def strongly_connected_components(self) -> List[FrozenSet[_Node]]:
        """Tarjan SCC over the fact graph (iterative)."""
        index: Dict[_Node, int] = {}
        lowlink: Dict[_Node, int] = {}
        on_stack: Set[_Node] = set()
        stack: List[_Node] = []
        components: List[FrozenSet[_Node]] = []
        counter = [0]

        for root in sorted(self.adjacency, key=str):
            if root in index:
                continue
            work: List[Tuple[_Node, List[_Node], int]] = [
                (root, sorted(self.adjacency[root], key=str), 0)
            ]
            index[root] = lowlink[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors, position = work.pop()
                advanced = False
                while position < len(successors):
                    successor = successors[position]
                    position += 1
                    if successor not in index:
                        work.append((node, successors, position))
                        index[successor] = lowlink[successor] = counter[0]
                        counter[0] += 1
                        stack.append(successor)
                        on_stack.add(successor)
                        work.append((successor, sorted(self.adjacency[successor], key=str), 0))
                        advanced = True
                        break
                    if successor in on_stack:
                        lowlink[node] = min(lowlink[node], index[successor])
                if advanced:
                    continue
                if lowlink[node] == index[node]:
                    component: Set[_Node] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    components.append(frozenset(component))
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
        return components

    # -- per-component decision -----------------------------------------------------

    def component_falsifiable(self, component: FrozenSet[_Node]) -> bool:
        """Can the falsifier mark one outgoing edge per vertex of this component
        without completing a witness cycle?"""
        if len(component) < 2:
            # A vertex with no outgoing edge inside its component cannot occur
            # after purification; treat it as non-falsifiable (forces certainty).
            return False
        if self._has_non_witness_k_cycle(component):
            return True
        return self._has_long_cycle(component)

    def _k_cycles_from(self, start: _Node, component: FrozenSet[_Node]) -> Iterable[Tuple[_Node, ...]]:
        """All k-cycles through *start* (walking positions forward), inside the component."""
        path = [start]

        def extend(node: _Node, depth: int) -> Iterable[Tuple[_Node, ...]]:
            for successor in sorted(self.adjacency.get(node, set()), key=str):
                if successor not in component:
                    continue
                if depth == self.k:
                    if successor == start:
                        yield tuple(path)
                    continue
                path.append(successor)
                yield from extend(successor, depth + 1)
                path.pop()

        yield from extend(start, 1)

    def _has_non_witness_k_cycle(self, component: FrozenSet[_Node]) -> bool:
        """Case 1 of Theorem 4: a k-cycle that is not a witness cycle."""
        if self.witness_cycles is None:
            # C(k): every k-cycle is a witness cycle; case 1 never applies.
            return False
        starts = sorted((node for node in component if node[0] == 0), key=str)
        for start in starts:
            for cycle in self._k_cycles_from(start, component):
                if cycle not in self.witness_cycles:
                    return True
        return False

    def _has_long_cycle(self, component: FrozenSet[_Node]) -> bool:
        """Case 2 of Theorem 4: an elementary cycle of length strictly greater than k.

        Such a cycle exists iff there is a path ``a1, ..., a_{k+1}`` with
        ``a1 ≠ a_{k+1}`` and a path from ``a_{k+1}`` back to ``a1`` that uses
        no edge leaving ``{a1, ..., ak}``.
        """
        for start in sorted(component, key=str):
            for path in self._paths_of_length(start, self.k, component):
                last = path[-1]
                if last == start:
                    continue
                blocked = set(path[:-1])
                if self._reaches(last, start, blocked, component):
                    return True
        return False

    def _paths_of_length(
        self, start: _Node, length: int, component: FrozenSet[_Node]
    ) -> Iterable[Tuple[_Node, ...]]:
        path = [start]

        def extend(node: _Node, remaining: int) -> Iterable[Tuple[_Node, ...]]:
            if remaining == 0:
                yield tuple(path)
                return
            for successor in sorted(self.adjacency.get(node, set()), key=str):
                if successor not in component:
                    continue
                path.append(successor)
                yield from extend(successor, remaining - 1)
                path.pop()

        yield from extend(start, length)

    def _reaches(
        self,
        start: _Node,
        goal: _Node,
        blocked_sources: Set[_Node],
        component: FrozenSet[_Node],
    ) -> bool:
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            if node == goal:
                return True
            if node in blocked_sources:
                continue
            for successor in self.adjacency.get(node, set()):
                if successor in component and successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return False


# -- the Lemma 9 reduction ------------------------------------------------------------


def lemma9_expand(
    db: UncertainDatabase,
    query: ConjunctiveQuery,
    subquery: ConjunctiveQuery,
) -> UncertainDatabase:
    """The AC0 reduction of Lemma 9, materialised.

    Given ``q' ⊆ q`` where every atom of ``q \\ q'`` is all-key, build the
    database ``f(db)`` that keeps the facts over ``q'``'s relations and adds
    *every* tuple over the active domain for the all-key relations, so that
    ``db ∈ CERTAINTY(q') ⇔ f(db) ∈ CERTAINTY(q)``.  The output has size
    ``O(|D|^arity)`` — polynomial for a fixed query, but intended for small
    domains (tests and cross-checks).
    """
    sub_atoms = set(subquery.atoms)
    extra_atoms = [a for a in query.atoms if a not in sub_atoms]
    for atom in extra_atoms:
        if not atom.relation.is_all_key:
            raise UnsupportedQueryError("Lemma 9 requires every added atom to be all-key")
    sub_names = {a.relation.name for a in subquery.atoms}
    result = UncertainDatabase(f for f in db.facts if f.relation.name in sub_names)
    domain = sorted(db.active_domain(), key=str)
    for atom in extra_atoms:
        for values in itertools.product(domain, repeat=atom.relation.arity):
            result.add(atom.relation.fact(*[v.value for v in values]))
    return result


def certain_ck_via_reduction(db: UncertainDatabase, query: ConjunctiveQuery) -> bool:
    """Decide ``CERTAINTY(C(k))`` through the Lemma 9 reduction to ``AC(k)``.

    Provided for cross-checking the direct algorithm; the reduction
    materialises ``|D|^k`` facts, so use small domains only.
    """
    shape = cycle_query_shape(query)
    if shape is None or shape.has_sk_atom:
        raise UnsupportedQueryError("certain_ck_via_reduction expects a C(k) query")
    k = shape.k
    sk_name = f"SK_reduction_{k}"
    sk = RelationSchema(sk_name, k, k)
    ac_query = ConjunctiveQuery(list(query.atoms) + [sk.atom(*shape.variables)])
    expanded = lemma9_expand(db, ac_query, query)
    return certain_cycle_query(expanded, ac_query)
