"""Exponential but always-correct CERTAINTY solver (the oracle).

``CERTAINTY(q)`` is in coNP for first-order ``q``: a "no" certificate is a
repair falsifying the query.  The brute-force solver searches for such a
falsifying repair.  It is used as ground truth for every polynomial solver
in the test suite and in the agreement experiments, and as the fallback for
queries classified coNP-complete or open.

Two optimisations keep it usable on small-to-medium instances without
affecting correctness:

* witnesses (valuation images ``θ(q) ⊆ db``) are computed once; a repair
  satisfies ``q`` iff it fully contains one of them;
* the search branches only over blocks that intersect some witness, and
  prunes a branch as soon as every witness is already broken (a falsifying
  repair exists) or some witness is already fully selected (this branch can
  never falsify).

Witness bookkeeping is *incremental*: instead of rescanning every witness at
every search node, each witness carries two counters — the number of its
blocks still undecided and the number of decided blocks that rejected one of
its facts — updated in O(witnesses-per-block) when a block choice is made or
undone, alongside global broken/complete tallies that make the pruning
checks O(1).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..model.atoms import Fact
from ..model.database import BlockKey, UncertainDatabase
from ..model.repairs import enumerate_repairs
from ..query.conjunctive import ConjunctiveQuery
from ..query.evaluation import satisfies, witnesses
from ..store.columnar import ColumnarFactStore, IntKey, IntRow
from ..store.kernels import witness_row_sets
from .context import SolverContext


class BruteForceResult:
    """Outcome of a brute-force certainty check."""

    def __init__(self, certain: bool, falsifying_repair: Optional[FrozenSet[Fact]]) -> None:
        self.certain = certain
        self.falsifying_repair = falsifying_repair

    def __bool__(self) -> bool:
        return self.certain

    def __repr__(self) -> str:
        return f"BruteForceResult(certain={self.certain})"


def certain_by_enumeration(db: UncertainDatabase, query: ConjunctiveQuery) -> bool:
    """Decide certainty by enumerating every repair (no pruning).

    Exponential in the number of conflicting blocks; kept as the most
    literal transcription of the definition for use in tests on tiny inputs.
    """
    return all(satisfies(repair, query) for repair in enumerate_repairs(db))


def certain_brute_force(
    db: UncertainDatabase,
    query: ConjunctiveQuery,
    context: Optional[SolverContext] = None,
) -> bool:
    """Decide ``db ∈ CERTAINTY(q)`` with the pruned witness-based search."""
    return brute_force_with_certificate(db, query, context=context).certain


def brute_force_with_certificate(
    db: UncertainDatabase,
    query: ConjunctiveQuery,
    context: Optional[SolverContext] = None,
) -> BruteForceResult:
    """Decide certainty and, when the answer is "no", exhibit a falsifying repair.

    *context*, when given, supplies a shared fact index over *db* so the
    witness computation avoids re-indexing the database.  When that index
    is columnar, the witness computation and the entire repair search run
    on id-rows (:func:`_brute_force_ids`); the falsifying certificate is
    decoded back to fact objects only on a "no" answer.
    """
    if query.is_empty:
        return BruteForceResult(True, None)
    shared_index = context.index_for(db) if context is not None else None
    store = getattr(shared_index, "store", None)
    if store is not None:
        return _brute_force_ids(db, query, store)
    witness_sets = witnesses(query, shared_index if shared_index is not None else db.facts)
    if not witness_sets:
        # No repair can satisfy the query; any repair falsifies it.
        repair = next(enumerate_repairs(db))
        return BruteForceResult(False, repair)

    # Blocks that contain at least one fact used by some witness.
    relevant_blocks: List[BlockKey] = []
    seen_blocks: Set[BlockKey] = set()
    for witness in witness_sets:
        for fact in witness:
            if fact.block_key not in seen_blocks:
                seen_blocks.add(fact.block_key)
                relevant_blocks.append(fact.block_key)
    relevant_blocks.sort(key=lambda key: (key[0], tuple(str(c) for c in key[1])))

    choice: Dict[BlockKey, Fact] = {}

    # Per-witness counters, updated incrementally on block choice/unchoice:
    # ``undecided[w]`` blocks of witness w not yet decided, ``broken[w]``
    # decided blocks that rejected one of w's facts.  ``block_witnesses``
    # maps each block to the witnesses it intersects (with the facts of that
    # witness inside the block — a self-join witness can hold several).
    block_witnesses: Dict[BlockKey, List[Tuple[int, List[Fact]]]] = {}
    undecided: List[int] = []
    broken: List[int] = []
    for w_index, witness in enumerate(witness_sets):
        per_block: Dict[BlockKey, List[Fact]] = {}
        for fact in witness:
            per_block.setdefault(fact.block_key, []).append(fact)
        undecided.append(len(per_block))
        broken.append(0)
        for key, facts in per_block.items():
            block_witnesses.setdefault(key, []).append((w_index, facts))

    total = len(witness_sets)
    num_broken = 0  # witnesses with broken[w] > 0
    num_complete = 0  # witnesses with broken[w] == 0 and undecided[w] == 0

    def choose(block_key: BlockKey, chosen: Fact) -> None:
        nonlocal num_broken, num_complete
        for w_index, facts in block_witnesses.get(block_key, ()):
            undecided[w_index] -= 1
            if any(fact != chosen for fact in facts):
                broken[w_index] += 1
                if broken[w_index] == 1:
                    num_broken += 1
            elif undecided[w_index] == 0 and broken[w_index] == 0:
                num_complete += 1

    def unchoose(block_key: BlockKey, chosen: Fact) -> None:
        nonlocal num_broken, num_complete
        for w_index, facts in block_witnesses.get(block_key, ()):
            if any(fact != chosen for fact in facts):
                broken[w_index] -= 1
                if broken[w_index] == 0:
                    num_broken -= 1
            elif undecided[w_index] == 0 and broken[w_index] == 0:
                num_complete -= 1
            undecided[w_index] += 1

    def search(position: int) -> Optional[Dict[BlockKey, Fact]]:
        if num_complete:
            return None  # some witness fully selected: this branch satisfies q
        if num_broken == total:
            return dict(choice)  # every witness destroyed: falsifying repair found
        if position == len(relevant_blocks):
            return dict(choice)
        block_key = relevant_blocks[position]
        for fact in sorted(db.block(block_key), key=str):
            choice[block_key] = fact
            choose(block_key, fact)
            found = search(position + 1)
            if found is not None:
                return found
            unchoose(block_key, fact)
            del choice[block_key]
        return None

    partial = search(0)
    if partial is None:
        return BruteForceResult(True, None)
    # Extend the partial choice over relevant blocks to a full repair.
    repair: Set[Fact] = set(partial.values())
    for block in db.blocks():
        key = next(iter(block)).block_key
        if key not in partial:
            repair.add(sorted(block, key=str)[0])
    return BruteForceResult(False, frozenset(repair))


def _brute_force_ids(
    db: UncertainDatabase,
    query: ConjunctiveQuery,
    store: ColumnarFactStore,
) -> BruteForceResult:
    """The pruned repair search over the columnar store's id-rows.

    Same search tree and pruning as the object path, but witnesses are
    frozensets of ``(name, id-row)`` pairs, blocks are ``(name, key ids)``
    and per-block choices iterate the store's block slices — no fact objects
    are touched until a falsifying certificate must be decoded.
    """
    witness_sets = witness_row_sets(query, store)
    if not witness_sets:
        # No repair can satisfy the query; any repair falsifies it.
        return BruteForceResult(False, next(enumerate_repairs(db)))

    _BlockId = Tuple[str, IntKey]
    key_sizes: Dict[str, int] = {}

    def block_of(name: str, row: IntRow) -> _BlockId:
        key_size = key_sizes.get(name)
        if key_size is None:
            key_size = store.relation_columns(name).schema.key_size  # type: ignore[union-attr]
            key_sizes[name] = key_size
        return (name, row[:key_size])

    # Blocks that contain at least one row used by some witness.
    relevant_blocks: List[_BlockId] = []
    seen_blocks: Set[_BlockId] = set()
    for witness in witness_sets:
        for name, row in witness:
            block = block_of(name, row)
            if block not in seen_blocks:
                seen_blocks.add(block)
                relevant_blocks.append(block)
    relevant_blocks.sort()

    choice: Dict[_BlockId, IntRow] = {}

    # Identical incremental bookkeeping to the object path, on int tuples.
    block_witnesses: Dict[_BlockId, List[Tuple[int, List[IntRow]]]] = {}
    undecided: List[int] = []
    broken: List[int] = []
    for w_index, witness in enumerate(witness_sets):
        per_block: Dict[_BlockId, List[IntRow]] = {}
        for name, row in witness:
            per_block.setdefault(block_of(name, row), []).append(row)
        undecided.append(len(per_block))
        broken.append(0)
        for key, rows in per_block.items():
            block_witnesses.setdefault(key, []).append((w_index, rows))

    total = len(witness_sets)
    num_broken = 0  # witnesses with broken[w] > 0
    num_complete = 0  # witnesses with broken[w] == 0 and undecided[w] == 0

    def choose(block: _BlockId, chosen: IntRow) -> None:
        nonlocal num_broken, num_complete
        for w_index, rows in block_witnesses.get(block, ()):
            undecided[w_index] -= 1
            if any(row != chosen for row in rows):
                broken[w_index] += 1
                if broken[w_index] == 1:
                    num_broken += 1
            elif undecided[w_index] == 0 and broken[w_index] == 0:
                num_complete += 1

    def unchoose(block: _BlockId, chosen: IntRow) -> None:
        nonlocal num_broken, num_complete
        for w_index, rows in block_witnesses.get(block, ()):
            if any(row != chosen for row in rows):
                broken[w_index] -= 1
                if broken[w_index] == 0:
                    num_broken -= 1
            elif undecided[w_index] == 0 and broken[w_index] == 0:
                num_complete -= 1
            undecided[w_index] += 1

    def search(position: int) -> Optional[Dict[_BlockId, IntRow]]:
        if num_complete:
            return None  # some witness fully selected: this branch satisfies q
        if num_broken == total:
            return dict(choice)  # every witness destroyed: falsifying repair found
        if position == len(relevant_blocks):
            return dict(choice)
        block = relevant_blocks[position]
        for row in sorted(store.block_rows(*block)):
            choice[block] = row
            choose(block, row)
            found = search(position + 1)
            if found is not None:
                return found
            unchoose(block, row)
            del choice[block]
        return None

    partial = search(0)
    if partial is None:
        return BruteForceResult(True, None)
    # Decode the partial choice and extend it to a full repair.
    repair: Set[Fact] = set()
    decoded_keys: Set[BlockKey] = set()
    for (name, key), row in partial.items():
        schema = store.relation_columns(name).schema  # type: ignore[union-attr]
        repair.add(Fact(schema, store.decode_row(row)))
        decoded_keys.add((name, store.table.decode(key)))
    for block in db.blocks():
        block_key = next(iter(block)).block_key
        if block_key not in decoded_keys:
            repair.add(sorted(block, key=str)[0])
    return BruteForceResult(False, frozenset(repair))
