"""Polynomial CERTAINTY solvers for queries with an acyclic attack graph.

Theorem 1 (Wijsen, TODS 2012; recalled as Theorem 1 in the paper) states
that ``CERTAINTY(q)`` is first-order expressible iff the attack graph of
``q`` is acyclic.  This module provides two operational counterparts:

* :func:`certain_fo` — the *peeling* solver, which repeatedly peels an
  unattacked atom as in the proof of Theorem 3 (induction step);
* :func:`certain_fo_rewriting` — the *compiled rewriting* solver, which
  builds the explicit certain first-order rewriting
  (:mod:`repro.fo.rewrite`), compiles it once into a set-at-a-time
  relational plan (:mod:`repro.fo.compile`), and evaluates that plan
  against the database — i.e. certainty decided the way Theorem 1
  promises, by ordinary first-order query evaluation.

The engine's ``QueryPlan`` routes FO-band queries through the compiled
rewriting; the two solvers are cross-checked against each other and against
the brute-force oracle in the test suite.
"""

from __future__ import annotations

from typing import Optional

from ..attacks.graph import AttackGraph
from ..fo.compile import compile_formula
from ..fo.rewrite import certain_rewriting_cached
from ..model.database import UncertainDatabase
from ..query.conjunctive import ConjunctiveQuery
from .context import SolverContext
from .exceptions import UnsupportedQueryError
from .peeling import empty_base_case, peel_certain


def is_fo_expressible(
    query: ConjunctiveQuery, context: Optional[SolverContext] = None
) -> bool:
    """``True`` iff the attack graph of *query* is acyclic (Theorem 1)."""
    if query.has_self_join:
        raise UnsupportedQueryError("FO classification requires a self-join-free query")
    if query.is_empty:
        return True
    graph = context.attack_graph(query) if context is not None else AttackGraph(query)
    return graph.is_acyclic()


def certain_fo(
    db: UncertainDatabase,
    query: ConjunctiveQuery,
    context: Optional[SolverContext] = None,
) -> bool:
    """Decide ``db ∈ CERTAINTY(q)`` by peeling unattacked atoms.

    Raises :class:`UnsupportedQueryError` when the attack graph is cyclic.
    *context* optionally supplies precomputed attack graphs and fact indexes.
    """
    if not is_fo_expressible(query, context=context):
        raise UnsupportedQueryError(
            f"the attack graph of {query} is cyclic; CERTAINTY(q) is not first-order expressible"
        )
    return peel_certain(db, query, empty_base_case, context=context)


def certain_fo_rewriting(
    db: UncertainDatabase,
    query: ConjunctiveQuery,
    context: Optional[SolverContext] = None,
) -> bool:
    """Decide ``db ∈ CERTAINTY(q)`` by evaluating the compiled FO rewriting.

    The certain first-order rewriting of *query* is constructed (memoised
    per query) and compiled (memoised per formula) into a guarded
    set-at-a-time plan, which is then evaluated against *db* — reusing the
    incrementally maintained fact index of an engine session when *context*
    carries one.  Raises :class:`UnsupportedQueryError` when the attack
    graph is cyclic (Theorem 1: no FO rewriting exists).
    """
    if not is_fo_expressible(query, context=context):
        raise UnsupportedQueryError(
            f"the attack graph of {query} is cyclic; CERTAINTY(q) is not first-order expressible"
        )
    plan = compile_formula(certain_rewriting_cached(query))
    index = context.index_for(db) if context is not None else None
    return plan.evaluate(db, index=index)
