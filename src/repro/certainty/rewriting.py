"""Polynomial CERTAINTY solver for queries with an acyclic attack graph.

Theorem 1 (Wijsen, TODS 2012; recalled as Theorem 1 in the paper) states
that ``CERTAINTY(q)`` is first-order expressible iff the attack graph of
``q`` is acyclic.  This module provides the operational counterpart: a
solver that decides certainty by repeatedly *peeling* an unattacked atom, as
in the proof of Theorem 3 (induction step) — the execution of the certain
first-order rewriting.

An actual first-order rewriting formula (an AST that can be handed to the
generic formula evaluator) is produced by :mod:`repro.fo.rewrite`; the two
are cross-checked in the test suite.
"""

from __future__ import annotations

from typing import Optional

from ..attacks.graph import AttackGraph
from ..model.database import UncertainDatabase
from ..query.conjunctive import ConjunctiveQuery
from .context import SolverContext
from .exceptions import UnsupportedQueryError
from .peeling import empty_base_case, peel_certain


def is_fo_expressible(
    query: ConjunctiveQuery, context: Optional[SolverContext] = None
) -> bool:
    """``True`` iff the attack graph of *query* is acyclic (Theorem 1)."""
    if query.has_self_join:
        raise UnsupportedQueryError("FO classification requires a self-join-free query")
    if query.is_empty:
        return True
    graph = context.attack_graph(query) if context is not None else AttackGraph(query)
    return graph.is_acyclic()


def certain_fo(
    db: UncertainDatabase,
    query: ConjunctiveQuery,
    context: Optional[SolverContext] = None,
) -> bool:
    """Decide ``db ∈ CERTAINTY(q)`` for a query with an acyclic attack graph.

    Raises :class:`UnsupportedQueryError` when the attack graph is cyclic.
    *context* optionally supplies precomputed attack graphs and fact indexes.
    """
    if not is_fo_expressible(query, context=context):
        raise UnsupportedQueryError(
            f"the attack graph of {query} is cyclic; CERTAINTY(q) is not first-order expressible"
        )
    return peel_certain(db, query, empty_base_case, context=context)
