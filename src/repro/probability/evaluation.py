"""Evaluation of ``PROBABILITY(q)`` on BID probabilistic databases.

Two evaluators are provided:

* :func:`probability_by_worlds` — the definition: sum the probabilities of
  every possible world satisfying the query.  Exponential; the ground truth
  for tests.
* :func:`probability_safe_plan` — the extensional evaluation that follows
  the ``IsSafe`` decomposition (Theorem 5: exact and polynomial for safe
  queries).  Independent components multiply, an existential variable that
  occurs in every key turns into an independent-union over the active
  domain, and a variable of a key-less atom turns into a disjoint union
  (exclusive events within one block).

Both return exact :class:`fractions.Fraction` values, so equality checks in
the test suite are exact.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from ..model.symbols import Constant
from ..query.conjunctive import ConjunctiveQuery
from ..query.evaluation import satisfies
from ..query.substitution import substitute_query
from .bid import BIDDatabase
from .safety import connected_components, is_safe


class UnsafeQueryError(ValueError):
    """Raised when the safe-plan evaluator is applied to an unsafe query."""


def probability_by_worlds(bid: BIDDatabase, query: ConjunctiveQuery) -> Fraction:
    """``Pr(q)`` by summation over all possible worlds (Definition 10)."""
    boolean = query.as_boolean() if not query.is_boolean else query
    total = Fraction(0)
    for world, probability in bid.worlds():
        if satisfies(world, boolean):
            total += probability
    return total


def probability_safe_plan(bid: BIDDatabase, query: ConjunctiveQuery) -> Fraction:
    """``Pr(q)`` by the extensional plan induced by the ``IsSafe`` rules.

    Raises :class:`UnsafeQueryError` when no rule applies (the query is
    unsafe and the extensional evaluation would be incorrect).
    """
    boolean = query.as_boolean() if not query.is_boolean else query
    if boolean.has_self_join:
        raise UnsafeQueryError("safe plans are defined for self-join-free queries")
    domain = sorted(bid.db.active_domain(), key=str)
    return _evaluate(bid, boolean, domain)


def _evaluate(bid: BIDDatabase, query: ConjunctiveQuery, domain: Sequence[Constant]) -> Fraction:
    if query.is_empty:
        return Fraction(1)

    # R1: a single ground atom.
    if len(query) == 1 and not query.variables:
        fact_atom = query.atoms[0]
        return bid.probability(fact_atom.to_fact())

    # R2: independent (variable-disjoint) components multiply.
    components = connected_components(query)
    if len(components) > 1:
        result = Fraction(1)
        for component in components:
            result *= _evaluate(bid, component, domain)
        return result

    # R3: a variable in every key — independent union over the domain.
    common_key = None
    for atom in query.atoms:
        keys = atom.key_variables
        common_key = keys if common_key is None else (common_key & keys)
    if common_key:
        variable = min(common_key, key=lambda v: v.name)
        miss = Fraction(1)
        for value in domain:
            grounded = substitute_query(query, {variable: value})
            miss *= 1 - _evaluate(bid, grounded, domain)
        return 1 - miss

    # R4: a key-less atom with variables — disjoint union over the domain.
    for atom in sorted(query.atoms, key=str):
        if not atom.key_variables and atom.variables:
            variable = min(atom.variables, key=lambda v: v.name)
            total = Fraction(0)
            for value in domain:
                grounded = substitute_query(query, {variable: value})
                total += _evaluate(bid, grounded, domain)
            return total

    raise UnsafeQueryError(f"query {query} is unsafe; the extensional plan does not apply")


def probability(bid: BIDDatabase, query: ConjunctiveQuery) -> Fraction:
    """``Pr(q)``: safe plan when the query is safe, world enumeration otherwise."""
    boolean = query.as_boolean() if not query.is_boolean else query
    if not boolean.has_self_join and is_safe(boolean):
        return probability_safe_plan(bid, boolean)
    return probability_by_worlds(bid, boolean)
