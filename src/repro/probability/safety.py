"""The ``IsSafe`` procedure of Dalvi–Ré–Suciu, as recalled in the paper.

A self-join-free Boolean conjunctive query is *safe* when the recursive
procedure below returns ``True``; safe queries admit an extensional
("safe-plan") evaluation of ``PROBABILITY(q)`` in polynomial time, while
unsafe queries are #P-hard (Theorem 5).  Theorem 6 of the paper shows that
safety implies first-order expressibility of ``CERTAINTY(q)``.

The implementation mirrors the pseudo-code of the paper (rules R1–R4) and
records which rule fired at every step, so that the safe-plan evaluator in
:mod:`repro.probability.evaluation` can replay exactly the same
decomposition.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..model.symbols import Constant
from ..query.conjunctive import ConjunctiveQuery
from ..query.substitution import substitute_query

#: A fixed "generic" constant used by rules R3/R4, chosen to be unlikely to
#: clash with query constants; clashes are harmless for safety (only the
#: shape of the query matters), they are avoided anyway for tidiness.
_GENERIC = Constant("__issafe_generic__")


class SafetyTrace:
    """The sequence of rules applied while testing safety."""

    def __init__(self) -> None:
        self.steps: List[str] = []

    def record(self, rule: str, detail: str) -> None:
        self.steps.append(f"{rule}: {detail}")

    def __iter__(self):
        return iter(self.steps)

    def __repr__(self) -> str:
        return "SafetyTrace(" + "; ".join(self.steps) + ")"


def connected_components(query: ConjunctiveQuery) -> List[ConjunctiveQuery]:
    """Split a query into variable-connected components (used by rule R2)."""
    atoms = list(query.atoms)
    remaining = set(range(len(atoms)))
    components: List[ConjunctiveQuery] = []
    while remaining:
        seed = min(remaining)
        component = {seed}
        frontier = [seed]
        while frontier:
            index = frontier.pop()
            for other in list(remaining - component):
                if atoms[index].variables & atoms[other].variables:
                    component.add(other)
                    frontier.append(other)
        remaining -= component
        components.append(ConjunctiveQuery([atoms[i] for i in sorted(component)]))
    return components


def is_safe(query: ConjunctiveQuery, trace: Optional[SafetyTrace] = None) -> bool:
    """The ``IsSafe`` procedure (rules R1, R2, R3, R4)."""
    q = query.as_boolean() if not query.is_boolean else query
    if q.has_self_join:
        raise ValueError("IsSafe is defined for self-join-free queries")
    trace = trace if trace is not None else SafetyTrace()

    # R1: a single variable-free atom.
    if len(q) == 1 and not q.variables:
        trace.record("R1", f"single ground atom {q.atoms[0]}")
        return True

    # R2: decompose into variable-disjoint sub-queries.
    components = connected_components(q)
    if len(components) > 1 and all(not c.is_empty for c in components):
        trace.record("R2", f"split into {len(components)} independent components")
        return all(is_safe(component, trace) for component in components)

    # R3: a variable occurring in the key of every atom.
    common_key = None
    for atom in q.atoms:
        keys = atom.key_variables
        common_key = keys if common_key is None else (common_key & keys)
    if common_key:
        variable = min(common_key, key=lambda v: v.name)
        trace.record("R3", f"ground the common key variable {variable}")
        return is_safe(substitute_query(q, {variable: _GENERIC}), trace)

    # R4: an atom with an empty key but a nonempty variable set.
    for atom in sorted(q.atoms, key=str):
        if not atom.key_variables and atom.variables:
            variable = min(atom.variables, key=lambda v: v.name)
            trace.record("R4", f"ground variable {variable} of the key-less atom {atom}")
            return is_safe(substitute_query(q, {variable: _GENERIC}), trace)

    trace.record("fail", "no rule applies; the query is unsafe")
    return False


def safety_trace(query: ConjunctiveQuery) -> Tuple[bool, SafetyTrace]:
    """Run ``IsSafe`` and return both the verdict and the rule trace."""
    trace = SafetyTrace()
    verdict = is_safe(query, trace)
    return verdict, trace
