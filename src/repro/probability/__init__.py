"""BID probabilistic databases, the IsSafe test, and PROBABILITY(q) evaluation."""

from .bid import BIDDatabase
from .bridge import (
    FrontierComparison,
    certainty_session_for,
    certainty_via_probability,
    compare_frontiers,
    frontier_comparison_table,
    proposition1_holds,
)
from .evaluation import (
    UnsafeQueryError,
    probability,
    probability_by_worlds,
    probability_safe_plan,
)
from .safety import SafetyTrace, connected_components, is_safe, safety_trace

__all__ = [
    "BIDDatabase",
    "FrontierComparison",
    "SafetyTrace",
    "UnsafeQueryError",
    "certainty_session_for",
    "certainty_via_probability",
    "compare_frontiers",
    "connected_components",
    "frontier_comparison_table",
    "is_safe",
    "probability",
    "probability_by_worlds",
    "probability_safe_plan",
    "proposition1_holds",
    "safety_trace",
]
