"""The bridge between CERTAINTY and PROBABILITY (Section 7 of the paper).

* Proposition 1 — for a BID database ``(db, Pr)`` and the sub-database
  ``db'`` of blocks with total probability 1:
  ``db' ∈ CERTAINTY(q)  ⇔  Pr(q) = 1``.
* Theorem 6 — if ``q`` is safe then ``CERTAINTY(q)`` is FO-expressible.
* Corollary 2 — if ``CERTAINTY(q)`` is not FO-expressible then
  ``PROBABILITY(q)`` is #P-hard (i.e. the query is unsafe, by Theorem 5).

The functions below check these statements on concrete inputs and summarise
how the two tractability frontiers relate on a corpus of queries, which is
what experiment E10 reports.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..core.classify import classify
from ..core.complexity import ComplexityBand
from ..engine.cache import PlanCache
from ..engine.session import CertaintySession
from ..query.conjunctive import ConjunctiveQuery
from ..store import InternTable
from .bid import BIDDatabase
from .evaluation import probability
from .safety import is_safe


def certainty_session_for(
    bid: BIDDatabase, plan_cache: Optional[PlanCache] = None
) -> CertaintySession:
    """A scoped engine session over the ``db'`` of Proposition 1.

    The session runs the full band dispatch (compiled FO rewritings, the
    Theorem 3/4 polynomial solvers, brute force only for the coNP band) on
    the block-restricted sub-database, against a **private**
    :class:`~repro.store.intern.InternTable` — BID experiments never leak
    constants into the process-global id space.  The caller owns the
    session (close it, or use it as a context manager).
    """
    return CertaintySession(
        bid.restrict_to_certain_blocks(),
        plan_cache=plan_cache,
        allow_exponential=True,
        intern_table=InternTable(),
    )


def proposition1_holds(bid: BIDDatabase, query: ConjunctiveQuery) -> bool:
    """Check Proposition 1 on a concrete BID database and query."""
    with certainty_session_for(bid) as session:
        certain = session.is_certain(query)
    prob = probability(bid, query)
    return certain == (prob == 1)


def certainty_via_probability(bid: BIDDatabase, query: ConjunctiveQuery) -> bool:
    """Decide certainty of the block-restricted database through ``Pr(q) = 1``.

    This is the "probabilistic route" to CERTAINTY discussed in Section 7;
    it is correct (Proposition 1) but only efficient for safe queries.
    """
    return probability(bid, query) == 1


class FrontierComparison:
    """How a query sits on the CERTAINTY and PROBABILITY frontiers."""

    def __init__(self, query: ConjunctiveQuery) -> None:
        self.query = query
        self.classification = classify(query)
        self.safe = (not query.has_self_join) and is_safe(query)

    @property
    def certainty_fo(self) -> bool:
        """Is CERTAINTY(q) first-order expressible?"""
        return self.classification.band is ComplexityBand.FO

    @property
    def certainty_tractable(self) -> bool:
        """Is CERTAINTY(q) known to be in P?"""
        return self.classification.band.is_tractable

    @property
    def probability_tractable(self) -> bool:
        """Is PROBABILITY(q) in FP (i.e. is the query safe)?"""
        return self.safe

    @property
    def consistent_with_theorem6(self) -> bool:
        """Theorem 6: safe ⇒ CERTAINTY(q) FO-expressible."""
        return (not self.safe) or self.certainty_fo

    def row(self) -> Tuple[str, str, str, str]:
        return (
            str(self.query),
            self.classification.band.name,
            "safe" if self.safe else "unsafe",
            "ok" if self.consistent_with_theorem6 else "VIOLATION",
        )


def compare_frontiers(queries: Iterable[ConjunctiveQuery]) -> List[FrontierComparison]:
    """Compare the two frontiers over a corpus of queries."""
    return [FrontierComparison(q) for q in queries]


def frontier_comparison_table(comparisons: Iterable[FrontierComparison]) -> str:
    """Plain-text table of the comparison (query, CERTAINTY band, safety, Theorem 6)."""
    rows = [c.row() for c in comparisons]
    headers = ("query", "CERTAINTY band", "PROBABILITY", "Theorem 6")
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(4)
    ]
    lines = [
        "  ".join(headers[i].ljust(widths[i]) for i in range(4)),
        "  ".join("-" * widths[i] for i in range(4)),
    ]
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(4)))
    return "\n".join(lines)
