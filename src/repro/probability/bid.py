"""Block-independent-disjoint (BID) probabilistic databases.

Section 7 of the paper relates CERTAINTY to query evaluation on BID
probabilistic databases: tuples of the same block are *disjoint* (exclusive)
events, tuples of distinct blocks are *independent*.  A BID database is
fully determined by the marginal probability of each fact (Theorem 2.4 of
Dalvi–Ré–Suciu), which is the efficient encoding used here.

Probabilities are stored as :class:`fractions.Fraction` so that the safe-plan
evaluator and the world-enumeration evaluator can be compared exactly.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Tuple, Union

from ..model.atoms import Fact
from ..model.database import BlockKey, UncertainDatabase

Probability = Union[Fraction, int, float, str]


def _to_fraction(value: Probability) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, float):
        return Fraction(value).limit_denominator(10**9)
    return Fraction(value)


class BIDDatabase:
    """An uncertain database with a marginal probability per fact."""

    def __init__(
        self,
        db: UncertainDatabase,
        probabilities: Mapping[Fact, Probability],
    ) -> None:
        self.db = db
        self._prob: Dict[Fact, Fraction] = {}
        for fact in db.facts:
            if fact not in probabilities:
                raise ValueError(f"missing probability for fact {fact}")
            p = _to_fraction(probabilities[fact])
            if not (0 <= p <= 1):
                raise ValueError(f"probability of {fact} out of range: {p}")
            self._prob[fact] = p
        for block in db.blocks():
            total = sum(self._prob[f] for f in block)
            if total > 1:
                raise ValueError(
                    f"probabilities of block {next(iter(block)).block_key} sum to {total} > 1"
                )

    # -- constructors -----------------------------------------------------------------

    @classmethod
    def uniform_repairs(cls, db: UncertainDatabase) -> "BIDDatabase":
        """The BID database obtained by making all repairs equally likely.

        Every fact of a block of size ``n`` gets probability ``1/n``; the
        probabilities of each block sum to one, so every possible world with
        nonzero probability is a repair.
        """
        probabilities = {}
        for block in db.blocks():
            share = Fraction(1, len(block))
            for fact in block:
                probabilities[fact] = share
        return cls(db.copy(), probabilities)

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[Fact, Probability]]) -> "BIDDatabase":
        """Build the database and probability map from ``(fact, probability)`` pairs."""
        probabilities = {fact: prob for fact, prob in pairs}
        db = UncertainDatabase(probabilities)
        return cls(db, probabilities)

    # -- accessors --------------------------------------------------------------------

    def probability(self, fact: Fact) -> Fraction:
        """The marginal probability ``Pr(A)`` of a fact (0 if absent)."""
        return self._prob.get(fact, Fraction(0))

    def facts(self) -> FrozenSet[Fact]:
        """The facts of the underlying uncertain database."""
        return self.db.facts

    def block_total(self, block: Iterable[Fact]) -> Fraction:
        """The total probability mass of a block."""
        return sum((self._prob[f] for f in block), Fraction(0))

    def certain_blocks(self) -> List[FrozenSet[Fact]]:
        """Blocks whose probabilities sum to exactly one."""
        return [b for b in self.db.blocks() if self.block_total(b) == 1]

    def restrict_to_certain_blocks(self) -> UncertainDatabase:
        """``db'`` of Proposition 1: the facts of blocks with total probability 1."""
        restricted = UncertainDatabase()
        for block in self.certain_blocks():
            for fact in block:
                restricted.add(fact)
        return restricted

    # -- possible worlds ----------------------------------------------------------------

    def world_probability(self, world: Iterable[Fact]) -> Fraction:
        """The probability of a possible world (a consistent subset of the facts).

        The world probability multiplies, per block, either the probability of
        the chosen fact or the leftover mass ``1 - Σ Pr(A)`` when the block is
        absent from the world.
        """
        chosen: Dict[BlockKey, Fact] = {}
        for fact in world:
            if fact not in self.db:
                raise ValueError(f"fact {fact} does not belong to the database")
            key = fact.block_key
            if key in chosen:
                raise ValueError("a possible world cannot contain two key-equal facts")
            chosen[key] = fact
        probability = Fraction(1)
        for block in self.db.blocks():
            key = next(iter(block)).block_key
            if key in chosen:
                probability *= self._prob[chosen[key]]
            else:
                probability *= 1 - self.block_total(block)
        return probability

    def worlds(self) -> Iterator[Tuple[FrozenSet[Fact], Fraction]]:
        """Enumerate every possible world with nonzero probability."""
        from ..model.repairs import enumerate_possible_worlds

        for world in enumerate_possible_worlds(self.db):
            probability = self.world_probability(world)
            if probability != 0:
                yield world, probability

    def __repr__(self) -> str:
        return f"BIDDatabase({len(self.db)} facts, {self.db.num_blocks()} blocks)"
