"""The interned columnar fact store: relations as integer columns.

A :class:`ColumnarFactStore` holds each relation as a set of *rows of term
ids* — per-position ``array('q')`` columns backed by an O(1) row index and
per-block slices — over a shared :class:`~repro.store.intern.InternTable`.
It is the integer-encoded twin of the fact dictionaries the engine
historically ran on: every hot kernel (hash joins, anti-joins, block
probes, purify sweeps, candidate enumeration) operates on small-int tuples
instead of :class:`~repro.model.symbols.Constant` objects.

Storage invariants
------------------

* one :class:`_RelationColumns` per relation name, with a single fixed
  signature (the engine only ever builds a store over one database, whose
  :class:`~repro.model.schema.DatabaseSchema` already enforces this);
* ``columns[p][i]`` is the term id of position ``p`` of row ``i``; the
  ``row_index`` dict maps each id-tuple to its row position, and deletion
  swap-removes with the last row so the columns stay dense;
* blocks are keyed by the id-tuple of the primary-key positions; each
  *live* block also has a dense integer **block id**, interned in the
  store-level block table.  Block ids are append-only: they survive the
  block emptying out (and are also assigned to *probed but absent* blocks
  when a read-set recorder asks), so a read set recorded against a block id
  still matches a later insertion into that block.

Snapshots
---------

:meth:`ColumnarFactStore.snapshot` copies the id arrays (a C-level
``memcpy`` per column) and the raw values of the term ids in use — no fact
objects, no per-fact pickling.  The resulting :class:`ColumnarSnapshot` is
the wire format the parallel session ships to worker processes; it decodes
back into facts (or a fresh store) in any process regardless of hash salt,
because only raw values travel (see the interning invariants in
:mod:`repro.store.intern`).
"""

from __future__ import annotations

import sys
import threading
from array import array
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..model.atoms import Fact, RelationSchema
from ..model.symbols import Constant
from .intern import InternTable, global_intern_table

#: A row of term ids — one per relation position.
IntRow = Tuple[int, ...]

#: The id-tuple of a row's primary-key positions.
IntKey = Tuple[int, ...]

#: The object-space identifier of a block (mirrors ``model.database.BlockKey``).
BlockKey = Tuple[str, Tuple[Constant, ...]]

_EMPTY_BLOCK: Tuple[IntRow, ...] = ()


class _RelationColumns:
    """One relation of the store: integer columns plus row and block indexes."""

    __slots__ = ("schema", "columns", "row_index", "blocks")

    def __init__(self, schema: RelationSchema) -> None:
        self.schema = schema
        #: Per-position arrays of term ids; row ``i`` spans ``columns[*][i]``.
        self.columns: List[array] = [array("q") for _ in range(schema.arity)]
        #: id-row -> position in the columns (O(1) membership).
        self.row_index: Dict[IntRow, int] = {}
        #: key-id-tuple -> the rows of that block (the per-block slice).
        self.blocks: Dict[IntKey, List[IntRow]] = {}

    def __len__(self) -> int:
        return len(self.row_index)


class ColumnarSnapshot:
    """An immutable, compactly picklable copy of a store's contents.

    ``relations`` holds ``(name, arity, key_size, columns)`` per relation —
    the columns are private ``array('q')`` copies — and ``values`` maps the
    term ids in use to their raw wrapped values.  Only raw values cross
    process boundaries; the receiving side re-interns locally.
    """

    __slots__ = ("relations", "values", "fact_count")

    def __init__(
        self,
        relations: Tuple[Tuple[str, int, int, Tuple[array, ...]], ...],
        values: Tuple[Tuple[int, Any], ...],
        fact_count: int,
    ) -> None:
        self.relations = relations
        self.values = values
        self.fact_count = fact_count

    def __getstate__(self):
        return (self.relations, self.values, self.fact_count)

    def __setstate__(self, state) -> None:
        self.relations, self.values, self.fact_count = state

    def __len__(self) -> int:
        return self.fact_count

    def __repr__(self) -> str:
        return (
            f"ColumnarSnapshot({self.fact_count} facts, "
            f"{len(self.relations)} relations, {len(self.values)} constants)"
        )

    def iter_facts(self) -> Iterator[Fact]:
        """Decode the snapshot back into fact objects (hash-salt safe)."""
        constants = {term_id: Constant(value) for term_id, value in self.values}
        for name, arity, key_size, columns in self.relations:
            schema = RelationSchema(name, arity, key_size)
            for i in range(len(columns[0]) if columns else 0):
                yield Fact(schema, tuple(constants[col[i]] for col in columns))


class ColumnarFactStore:
    """Facts as integer rows: the execution-layer storage of the engine.

    Parameters
    ----------
    table:
        The intern table term ids are drawn from.  Defaults to the
        process-wide :func:`~repro.store.intern.global_intern_table`, so
        every store in a process shares one id space.
    """

    __slots__ = ("_table", "_relations", "_block_ids", "_block_keys", "_size", "_block_lock")

    def __init__(self, facts: Sequence[Fact] = (), table: Optional[InternTable] = None) -> None:
        self._table = table if table is not None else global_intern_table()
        self._relations: Dict[str, _RelationColumns] = {}
        #: (name, key ids) -> dense block id; append-only (ids outlive blocks).
        self._block_ids: Dict[Tuple[str, IntKey], int] = {}
        self._block_keys: List[Tuple[str, IntKey]] = []
        self._block_lock = threading.Lock()
        self._size = 0
        for fact in facts:
            self.add_fact(fact)

    # -- views -------------------------------------------------------------------

    @property
    def table(self) -> InternTable:
        """The intern table this store encodes through."""
        return self._table

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        return f"ColumnarFactStore({self._size} facts, {len(self._relations)} relations)"

    def relation_columns(self, name: str) -> Optional[_RelationColumns]:
        """The columns of relation *name* (``None`` when never populated)."""
        return self._relations.get(name)

    def relation_names(self) -> Tuple[str, ...]:
        """Every relation name ever populated, in first-insert order."""
        return tuple(self._relations)

    def relation_rows(self, name: str) -> Sequence[IntRow]:
        """All id-rows of relation *name* (a live view; do not mutate)."""
        rel = self._relations.get(name)
        return rel.row_index.keys() if rel is not None else _EMPTY_BLOCK  # type: ignore[return-value]

    def block_rows(self, name: str, key: IntKey) -> Sequence[IntRow]:
        """The id-rows of one block (empty when the block is absent)."""
        rel = self._relations.get(name)
        if rel is None:
            return _EMPTY_BLOCK
        return rel.blocks.get(key, _EMPTY_BLOCK)

    def term_ids(self) -> Set[int]:
        """Every term id appearing in some row (the encoded active domain)."""
        out: Set[int] = set()
        for rel in self._relations.values():
            for row in rel.row_index:
                out.update(row)
        return out

    # -- block ids ---------------------------------------------------------------

    def block_id(self, name: str, key: IntKey) -> int:
        """The dense id of block ``(name, key)``, interning on first use.

        Also used by read-set recorders for *probed but absent* blocks: the
        id must exist so a later insertion into the block can be matched
        against recorded read sets.
        """
        full = (name, key)
        bid = self._block_ids.get(full)
        if bid is not None:
            return bid
        with self._block_lock:
            bid = self._block_ids.get(full)
            if bid is None:
                bid = len(self._block_keys)
                self._block_keys.append(full)
                self._block_ids[full] = bid
            return bid

    def known_block_id(self, name: str, key_constants: Tuple[Constant, ...]) -> Optional[int]:
        """The block id for object-space ``(name, key constants)``, if any.

        ``None`` means no fact of the block was ever stored *and* no
        execution ever probed it — so no recorded read set can depend on it.
        """
        id_of = self._table.id_of
        key: List[int] = []
        for constant in key_constants:
            term_id = id_of(constant)
            if term_id is None:
                return None
            key.append(term_id)
        return self._block_ids.get((name, tuple(key)))

    def block_key_of(self, block_id: int) -> Tuple[str, IntKey]:
        """The ``(name, key ids)`` pair of a block id."""
        return self._block_keys[block_id]

    def decode_block_key(self, block_id: int) -> BlockKey:
        """The object-space :data:`BlockKey` of a block id."""
        name, key = self._block_keys[block_id]
        return (name, self._table.decode(key))

    def live_block_ids(self, name: str) -> List[int]:
        """The block ids of the *non-empty* blocks of relation *name*."""
        rel = self._relations.get(name)
        if rel is None:
            return []
        block_ids = self._block_ids
        return [block_ids[(name, key)] for key in rel.blocks]

    # -- mutation ----------------------------------------------------------------

    def encode_fact(self, fact: Fact) -> Tuple[str, IntRow]:
        """Encode *fact* into its relation name and id-row (interning terms)."""
        intern = self._table.intern
        return fact.relation.name, tuple(intern(t) for t in fact.terms)

    def _relation_for(self, schema: RelationSchema) -> _RelationColumns:
        """The (possibly new) columns of *schema*'s relation, signature-checked."""
        name = schema.name
        rel = self._relations.get(name)
        if rel is None:
            rel = _RelationColumns(schema)
            self._relations[name] = rel
        elif (rel.schema.arity, rel.schema.key_size) != (schema.arity, schema.key_size):
            raise ValueError(
                f"relation {name!r} already stored with signature "
                f"[{rel.schema.arity},{rel.schema.key_size}], cannot store "
                f"[{schema.arity},{schema.key_size}] rows"
            )
        return rel

    def add_fact(self, fact: Fact) -> Optional[IntRow]:
        """Insert a fact; returns its id-row, or ``None`` if already present."""
        intern = self._table.intern
        row = tuple(intern(t) for t in fact.terms)
        return row if self.add_row(fact.relation, row) else None

    def add_row(self, schema: RelationSchema, row: IntRow) -> bool:
        """Insert an already-interned id-row; ``False`` when already present.

        The id-space twin of :meth:`add_fact` — every id of *row* must have
        been produced by this store's intern table (e.g. by changelog
        replay, which ships the intern-table suffix ahead of the rows).
        """
        rel = self._relation_for(schema)
        if row in rel.row_index:
            return False
        rel.row_index[row] = len(rel.row_index)
        for column, term_id in zip(rel.columns, row):
            column.append(term_id)
        key = row[: schema.key_size]
        block = rel.blocks.get(key)
        if block is None:
            rel.blocks[key] = [row]
            self.block_id(schema.name, key)  # assign (or reuse) the dense block id
        else:
            block.append(row)
        self._table.retain_row(row)
        self._size += 1
        return True

    def discard_fact(self, fact: Fact) -> Optional[IntRow]:
        """Remove a fact; returns its id-row, or ``None`` if absent."""
        id_of = self._table.id_of
        ids: List[int] = []
        for term in fact.terms:
            term_id = id_of(term)
            if term_id is None:
                return None  # a never-interned constant cannot be stored
            ids.append(term_id)
        row = tuple(ids)
        return row if self.discard_row(fact.relation.name, row) else None

    def discard_row(self, name: str, row: IntRow) -> bool:
        """Remove an id-row from relation *name*; ``False`` when absent."""
        rel = self._relations.get(name)
        if rel is None:
            return False
        position = rel.row_index.pop(row, None)
        if position is None:
            return False
        # Swap-remove keeps the columns dense: move the last row into the
        # vacated position and re-point its row-index entry.
        last = len(rel.row_index)  # index of the final row after the pop
        if position != last:
            moved = tuple(column[last] for column in rel.columns)
            for column in rel.columns:
                column[position] = column[last]
            rel.row_index[moved] = position
        for column in rel.columns:
            column.pop()
        key = row[: rel.schema.key_size]
        block = rel.blocks.get(key)
        if block is not None:
            block.remove(row)
            if not block:
                del rel.blocks[key]  # the block id stays interned
        self._table.release_row(row)
        self._size -= 1
        return True

    def contains_fact(self, fact: Fact) -> bool:
        """O(1) membership through the row index."""
        rel = self._relations.get(fact.relation.name)
        if rel is None:
            return False
        id_of = self._table.id_of
        ids: List[int] = []
        for term in fact.terms:
            term_id = id_of(term)
            if term_id is None:
                return False
            ids.append(term_id)
        return tuple(ids) in rel.row_index

    # -- decoding ----------------------------------------------------------------

    def decode_row(self, row: IntRow) -> Tuple[Constant, ...]:
        """Decode an id-row back into constants."""
        return self._table.decode(row)

    def decode_facts(self) -> Iterator[Fact]:
        """Decode the whole store back into fact objects."""
        decode = self._table.decode
        for rel in self._relations.values():
            schema = rel.schema
            for row in rel.row_index:
                yield Fact(schema, decode(row))

    # -- snapshots ---------------------------------------------------------------

    def snapshot(self) -> ColumnarSnapshot:
        """An immutable copy: column arrays (memcpy) + raw values in use."""
        relations = []
        used: Set[int] = set()
        constant = self._table.constant
        for name, rel in self._relations.items():
            relations.append(
                (
                    name,
                    rel.schema.arity,
                    rel.schema.key_size,
                    tuple(array("q", column) for column in rel.columns),
                )
            )
            for row in rel.row_index:
                used.update(row)
        values = tuple((term_id, constant(term_id).value) for term_id in sorted(used))
        return ColumnarSnapshot(tuple(relations), values, self._size)

    @classmethod
    def from_snapshot(
        cls, snapshot: ColumnarSnapshot, table: Optional[InternTable] = None
    ) -> "ColumnarFactStore":
        """Rebuild a store (re-interned locally) from a snapshot."""
        return cls(facts=tuple(snapshot.iter_facts()), table=table)

    @classmethod
    def from_columns(
        cls,
        relations: Sequence[Tuple[RelationSchema, Sequence[array]]],
        table: InternTable,
    ) -> "ColumnarFactStore":
        """Adopt already-encoded columns wholesale — no per-fact interning.

        This is the restore path of the durability tier: the caller hands
        per-relation ``array('q')`` columns whose ids are valid in *table*
        (a segment file read back, or rotated columns remapped into a fresh
        epoch table), and the store rebuilds only its derived indexes (row
        index, block slices, block ids) from the raw arrays.  No
        :class:`~repro.model.atoms.Fact` objects are materialised and no
        constant is re-interned.
        """
        store = cls(table=table)
        for schema, columns in relations:
            rel = store._relation_for(schema)
            if rel.row_index:
                raise ValueError(f"relation {schema.name!r} adopted twice")
            n_rows = len(columns[0]) if columns else 0
            for column, source in zip(rel.columns, columns):
                column.extend(source)
            key_size = schema.key_size
            for i in range(n_rows):
                row = tuple(column[i] for column in rel.columns)
                if row in rel.row_index:
                    raise ValueError(
                        f"duplicate row {row} in adopted columns of {schema.name!r}"
                    )
                rel.row_index[row] = i
                key = row[:key_size]
                block = rel.blocks.get(key)
                if block is None:
                    rel.blocks[key] = [row]
                    store.block_id(schema.name, key)
                else:
                    block.append(row)
                table.retain_row(row)
                store._size += 1
        return store

    # -- diagnostics -------------------------------------------------------------

    def memory_stats(self) -> Dict[str, int]:
        """Approximate per-component byte counts of the store."""
        column_bytes = 0
        row_index_bytes = 0
        block_bytes = 0
        for rel in self._relations.values():
            column_bytes += sum(column.itemsize * len(column) for column in rel.columns)
            row_index_bytes += sys.getsizeof(rel.row_index)
            block_bytes += sys.getsizeof(rel.blocks)
        return {
            "facts": self._size,
            "relations": len(self._relations),
            "blocks_interned": len(self._block_keys),
            "column_bytes": column_bytes,
            "row_index_bytes": row_index_bytes,
            "block_index_bytes": block_bytes,
        }
