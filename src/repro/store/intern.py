"""Global constant interning: ``Constant`` ↔ dense integer term ids.

Every hot kernel of the engine — hash joins, anti-joins, block probes,
purify sweeps — ultimately performs set and dict operations on tuples of
terms.  A :class:`~repro.model.symbols.Constant` hashes by building (and
hashing) a ``("Constant", value)`` tuple on *every* call and compares
through an ``isinstance`` check, so object-tuple keys pay a large constant
factor per operation.  Interning maps each distinct constant to a small
dense ``int`` exactly once; from then on every kernel runs on integer
tuples, whose hashing and equality are the cheapest CPython offers.

Interning invariants
--------------------

1. **Injective and stable**: each distinct constant value receives exactly
   one id, ids are dense (``0, 1, 2, ...`` in first-intern order), and an
   id is never reassigned or reused for the lifetime of the table.  Code
   may therefore cache ids freely (compiled plans, columnar rows, block
   keys) — two ids are equal iff the underlying constants are equal.
2. **Append-only**: constants are never removed, even when every fact
   using them is discarded.  The table is a process-lifetime dictionary;
   its memory footprint is bounded by the number of *distinct* constants
   ever seen (see :meth:`InternTable.memory_stats`).
3. **Total over the execution**: every id that appears in a columnar row,
   a probe key, or a decoded answer was produced by this table, so
   decoding (:meth:`InternTable.constant`) is always defined.
4. **Serialization ships values, not hashes**: pickling (and
   :meth:`InternTable.snapshot`) transports the raw wrapped values in id
   order.  The receiving process rebuilds constants — and their hashes —
   locally, so tables cross ``PYTHONHASHSEED`` boundaries safely (the same
   guarantee :class:`~repro.model.atoms.Atom` makes for facts).

A process-wide default table (:func:`global_intern_table`) is shared by
every :class:`~repro.store.columnar.ColumnarFactStore` unless a private
table is supplied, so term ids agree across sessions, stores, and plans
inside one process.  Worker processes rebuild their stores from shipped
snapshots and intern against their own table; ids are process-local and
never compared across processes (portable data — facts, candidates, read
sets — is decoded before it crosses).
"""

from __future__ import annotations

import sys
import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..model.symbols import Constant


class InternTable:
    """A bidirectional, append-only ``Constant`` ↔ dense ``int`` id mapping.

    Thread-safe: lookups take the GIL-atomic dict fast path; inserts are
    double-checked under a lock so concurrent interning of the same
    constant always yields the same id.
    """

    __slots__ = ("_ids", "_constants", "_live_counts", "_lock")

    def __init__(self, values: Iterable[Any] = ()) -> None:
        self._ids: Dict[Constant, int] = {}
        self._constants: List[Constant] = []
        #: Per-id count of row occurrences across the stores using this
        #: table (see :meth:`retain_row`); grown lazily to the table size.
        self._live_counts: List[int] = []
        self._lock = threading.Lock()
        for value in values:
            self.intern(value if isinstance(value, Constant) else Constant(value))

    # -- interning ---------------------------------------------------------------

    def intern(self, constant: Constant) -> int:
        """The id of *constant*, assigning the next dense id on first sight."""
        term_id = self._ids.get(constant)
        if term_id is not None:
            return term_id
        with self._lock:
            term_id = self._ids.get(constant)
            if term_id is None:
                term_id = len(self._constants)
                self._constants.append(constant)
                self._ids[constant] = term_id
            return term_id

    def intern_many(self, constants: Iterable[Constant]) -> Tuple[int, ...]:
        """Intern a sequence of constants into a tuple of ids."""
        return tuple(self.intern(c) for c in constants)

    def id_of(self, constant: Constant) -> Optional[int]:
        """The id of *constant* if already interned, else ``None``."""
        return self._ids.get(constant)

    # -- live-id tracking --------------------------------------------------------
    #
    # The table is append-only (invariant 2): ids of constants that no
    # longer appear in any fact are never reclaimed, so a churn-heavy
    # stream grows the table without bound.  The counts below track how
    # many stored row *occurrences* reference each id, which is what the
    # durability tier's epoch rotation reads to decide when remapping the
    # live ids into a fresh dense table pays off.  Counts are maintained
    # by :class:`~repro.store.columnar.ColumnarFactStore` mutations under
    # the same single-writer assumption as the database itself; ids
    # interned for queries (candidate groundings, plan placeholders) but
    # never stored count as dead.

    def retain_row(self, ids: Iterable[int]) -> None:
        """Count every id of a stored row as one more live occurrence."""
        counts = self._live_counts
        for term_id in ids:
            if term_id >= len(counts):
                grow = max(len(self._constants), term_id + 1) - len(counts)
                counts.extend([0] * grow)
            counts[term_id] += 1

    def release_row(self, ids: Iterable[int]) -> None:
        """Drop one live occurrence per id of a removed row."""
        counts = self._live_counts
        for term_id in ids:
            if term_id < len(counts) and counts[term_id] > 0:
                counts[term_id] -= 1

    def live_ids(self) -> List[int]:
        """The ids referenced by at least one stored row, in id order."""
        return [i for i, count in enumerate(self._live_counts) if count > 0]

    def live_count(self) -> int:
        """How many distinct ids are referenced by some stored row."""
        return sum(1 for count in self._live_counts if count > 0)

    # -- decoding ----------------------------------------------------------------

    def constant(self, term_id: int) -> Constant:
        """The constant with the given id (raises ``IndexError`` if unknown)."""
        return self._constants[term_id]

    def decode(self, ids: Iterable[int]) -> Tuple[Constant, ...]:
        """Decode a row of ids back into constants."""
        constants = self._constants
        return tuple(constants[i] for i in ids)

    # -- views -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._constants)

    def __contains__(self, constant: object) -> bool:
        return constant in self._ids

    def __repr__(self) -> str:
        return f"InternTable({len(self._constants)} constants)"

    def memory_stats(self) -> Dict[str, int]:
        """Approximate memory footprint of the table, in bytes.

        Counts the two container objects plus every wrapped value once
        (Constants in the list and dict are the same objects).
        """
        values_bytes = sum(
            sys.getsizeof(c) + sys.getsizeof(c.value) for c in self._constants
        )
        total = len(self._constants)
        live = self.live_count()
        return {
            "constants": total,
            "live_constants": live,
            # The epoch-rotation signal: what fraction of the (append-only)
            # id space still appears in some stored row.  An empty table is
            # fully live by convention.
            "live_fraction": (live / total) if total else 1.0,
            "values_bytes": values_bytes,
            "forward_dict_bytes": sys.getsizeof(self._ids),
            "reverse_list_bytes": sys.getsizeof(self._constants),
            "total_bytes": (
                values_bytes
                + sys.getsizeof(self._ids)
                + sys.getsizeof(self._constants)
            ),
        }

    # -- serialization -----------------------------------------------------------

    def values_since(self, base: int) -> Tuple[Any, ...]:
        """The raw values of the ids assigned since *base*, in id order.

        The table is append-only, so ``values_since(base)`` is exactly the
        suffix a mirror table holding ids ``0..base-1`` needs to catch up:
        position ``i`` of the result is the value of id ``base + i``.  This
        is the intern-table *delta* of the sharded runtime's wire format —
        only newly-interned constant values ship to long-lived workers,
        never the whole table.
        """
        with self._lock:
            return tuple(c.value for c in self._constants[base:])

    def extend_values(self, base: int, values: Iterable[Any]) -> None:
        """Append *values* as ids ``base, base+1, ...`` (mirror-table catch-up).

        Raises ``ValueError`` when *base* does not equal the current table
        size — a mirror that misses a delta must never silently skew its id
        space, because every id shipped afterwards would decode wrongly.
        """
        if base != len(self._constants):
            raise ValueError(
                f"intern delta starts at id {base} but the mirror holds "
                f"{len(self._constants)} ids"
            )
        for value in values:
            self.intern(Constant(value))

    def snapshot(self) -> Tuple[Any, ...]:
        """The raw wrapped values in id order (a stable, compact wire format).

        Position ``i`` of the snapshot is the value of the constant with id
        ``i``; :meth:`from_snapshot` rebuilds an equivalent table in any
        process regardless of its hash salt.
        """
        with self._lock:
            return tuple(c.value for c in self._constants)

    @classmethod
    def from_snapshot(cls, values: Iterable[Any]) -> "InternTable":
        """Rebuild a table from :meth:`snapshot` output (ids preserved)."""
        return cls(values)

    # Pickle ships raw values only: Constant hashes are salted per process
    # (PYTHONHASHSEED) and must be recomputed on the receiving side.
    def __getstate__(self) -> Tuple[Any, ...]:
        return self.snapshot()

    def __setstate__(self, values: Tuple[Any, ...]) -> None:
        self._ids = {}
        self._constants = []
        self._live_counts = []
        self._lock = threading.Lock()
        for value in values:
            self.intern(Constant(value))


#: The process-wide intern table shared by default-constructed stores.
_GLOBAL_TABLE = InternTable()


def global_intern_table() -> InternTable:
    """The process-wide intern table (one id space per process)."""
    return _GLOBAL_TABLE
