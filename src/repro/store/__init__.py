"""Interned columnar fact storage: the integer-encoded execution backend.

The package has three layers:

* :mod:`repro.store.intern` — the global ``Constant`` ↔ dense-int-id
  mapping every store encodes through (one id space per process);
* :mod:`repro.store.columnar` — :class:`ColumnarFactStore`, holding each
  relation as integer columns with O(1) membership, per-block id slices,
  dense block ids, and cheap picklable snapshots;
* :mod:`repro.store.index` / :mod:`repro.store.kernels` — the
  :class:`ColumnarFactIndex` execution backend (a drop-in
  :class:`~repro.query.evaluation.FactIndex` that mirrors into a store)
  and the id-space sweeps built on it.

The object-level fact dictionaries remain the reference implementation;
``CertaintySession(db, backend="object")`` selects them explicitly.
"""

from .columnar import ColumnarFactStore, ColumnarSnapshot
from .index import ColumnarFactIndex
from .intern import InternTable, global_intern_table
from .kernels import stale_block_keys, used_rows

__all__ = [
    "ColumnarFactIndex",
    "ColumnarFactStore",
    "ColumnarSnapshot",
    "InternTable",
    "global_intern_table",
    "stale_block_keys",
    "used_rows",
]
