"""Integer-encoded execution kernels over the columnar store.

The kernels here are the id-space twins of the object-level sweeps in
:mod:`repro.certainty.purify`: they reuse the compiled slot-based
:func:`~repro.query.evaluation.backtrack_plan` of a query, encode its
constants through the store's intern table once per call, and then run the
backtracking join entirely on integer rows — block probes are dict lookups
on id-tuples, bindings live in one mutable int array, and witness marking
collects id-rows instead of fact objects.

:func:`stale_block_keys` is the purification sweep (Lemma 1): it returns
the blocks containing at least one fact that participates in no witness
``θ(q) ⊆ db``, sweeping the store's per-block id arrays and decoding only
the (usually few) stale block keys back to object space.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..model.atoms import Atom
from ..model.symbols import is_constant
from ..query.conjunctive import ConjunctiveQuery
from ..query.evaluation import CHECK_CONST, CHECK_SLOT, backtrack_plan
from .columnar import BlockKey, ColumnarFactStore, IntRow

#: One encoded step: (relation columns or None, ops, key_plan, atom).
_EncodedStep = Tuple[object, Tuple[Tuple[int, int, int], ...], Optional[Tuple], Atom]


def _encode_plan(
    query: ConjunctiveQuery, store: ColumnarFactStore
) -> Tuple[Optional[List[_EncodedStep]], int]:
    """Encode the structural backtracking plan of *query* against *store*.

    Returns ``(steps, slot_count)``; *steps* is ``None`` when some atom can
    never match (its relation is absent or has a different arity), in which
    case the query has no witnesses at all.
    """
    steps, slot_variables = backtrack_plan(query)
    intern = store.table.intern
    encoded: List[_EncodedStep] = []
    for atom, ops, key_plan in steps:
        relation = store.relation_columns(atom.relation.name)
        if relation is None or relation.schema.arity != atom.relation.arity:
            return None, len(slot_variables)
        enc_ops = tuple(
            (op, pos, intern(arg) if op == CHECK_CONST else arg)  # type: ignore[arg-type]
            for op, pos, arg in ops
        )
        enc_key = None
        if key_plan is not None and relation.schema.key_size == atom.relation.key_size:
            enc_key = tuple(
                (slot, intern(constant) if constant is not None else None)
                for slot, constant in key_plan
            )
        encoded.append((relation, enc_ops, enc_key, atom))
    return encoded, len(slot_variables)


def _reduced_candidates(
    encoded: List[_EncodedStep], store: ColumnarFactStore
) -> List[Set[IntRow]]:
    """Per-level candidate rows after a per-variable semi-join fixpoint.

    Each level starts from the rows satisfying its atom's constant and
    repeated-variable checks; then, for every variable occurring in two or
    more atoms, rows whose value for that variable appears in no candidate
    row of some partner atom are dropped, to fixpoint.  A dropped row can
    participate in no witness (every witness grounds all atoms on a single
    valuation), so enumerating the join over the reduced sets yields exactly
    the same witnesses while skipping the dangling rows that dominate noisy
    instances.  Per-atom-occurrence sets keep the reduction correct under
    self-joins (two occurrences of one relation prune independently).
    """
    intern = store.table.intern
    positions_per_level: List[Dict[object, int]] = []
    rows_per_level: List[Set[IntRow]] = []
    for relation, _ops, _key_plan, atom in encoded:
        const_checks: List[Tuple[int, int]] = []
        eq_checks: List[Tuple[int, int]] = []
        positions: Dict[object, int] = {}
        for position, term in enumerate(atom.terms):
            if is_constant(term):
                const_checks.append((position, intern(term)))
            else:
                first = positions.get(term)
                if first is None:
                    positions[term] = position
                else:
                    eq_checks.append((position, first))
        rows = {
            row
            for row in relation.row_index.keys()  # type: ignore[union-attr]
            if all(row[p] == value for p, value in const_checks)
            and all(row[p] == row[f] for p, f in eq_checks)
        }
        positions_per_level.append(positions)
        rows_per_level.append(rows)

    occurrences: Dict[object, List[Tuple[int, int]]] = {}
    for level, positions in enumerate(positions_per_level):
        for variable, position in positions.items():
            occurrences.setdefault(variable, []).append((level, position))
    shared = [occ for occ in occurrences.values() if len(occ) > 1]

    changed = True
    while changed:
        changed = False
        for occ in shared:
            allowed: Optional[Set[int]] = None
            for level, position in occ:
                values = {row[position] for row in rows_per_level[level]}
                allowed = values if allowed is None else allowed & values
            for level, position in occ:
                rows = rows_per_level[level]
                kept = {row for row in rows if row[position] in allowed}
                if len(kept) != len(rows):
                    rows_per_level[level] = kept
                    changed = True
    return rows_per_level


def used_rows(
    query: ConjunctiveQuery, store: ColumnarFactStore
) -> Dict[str, Set[IntRow]]:
    """Per relation, the id-rows used by at least one witness of *query*.

    The id-space counterpart of
    :func:`repro.certainty.purify.relevant_facts`.
    """
    encoded, slot_count = _encode_plan(query, store)
    used: Dict[str, Set[IntRow]] = {}
    if encoded is None or not encoded:
        return used
    reduced = _reduced_candidates(encoded, store)
    if any(not rows for rows in reduced):
        return used
    bindings: List[Optional[int]] = [None] * slot_count
    depth = len(encoded)
    stack: List[Tuple[str, IntRow]] = []

    def backtrack(level: int) -> None:
        if level == depth:
            for name, row in stack:
                used.setdefault(name, set()).add(row)
            return
        relation, ops, key_plan, _atom = encoded[level]
        allowed = reduced[level]
        if key_plan is not None:
            key = tuple(
                bindings[slot] if constant is None else constant
                for slot, constant in key_plan
            )
            candidates = [
                row
                for row in relation.blocks.get(key, ())  # type: ignore[union-attr]
                if row in allowed
            ]
        else:
            candidates = allowed
        name = relation.schema.name  # type: ignore[union-attr]
        for row in candidates:
            matched = True
            bound: List[int] = []
            for op, pos, arg in ops:
                value = row[pos]
                if op == CHECK_CONST:
                    if value != arg:
                        matched = False
                        break
                elif op == CHECK_SLOT:
                    if bindings[arg] != value:
                        matched = False
                        break
                else:
                    bindings[arg] = value
                    bound.append(arg)
            if matched:
                stack.append((name, row))
                backtrack(level + 1)
                stack.pop()
            for slot in bound:
                bindings[slot] = None

    backtrack(0)
    return used


class AtomMatcher:
    """One atom's term pattern, encoded against a store for id-row matching.

    Constants are interned once at construction; :meth:`match` then runs
    entirely on ints (constant checks plus repeated-variable equalities).
    The Theorem 3/4 solvers use matchers to partition and project id-rows
    without decoding them back into :class:`~repro.model.atoms.Fact`
    objects.
    """

    __slots__ = (
        "atom",
        "name",
        "_const_checks",
        "_eq_checks",
        "_var_position",
        "_intern",
    )

    def __init__(self, atom: Atom, store: ColumnarFactStore) -> None:
        self.atom = atom
        self.name = atom.relation.name
        self._intern = store.table.intern
        const_checks: List[Tuple[int, int]] = []
        eq_checks: List[Tuple[int, int]] = []
        var_position: Dict[object, int] = {}
        for position, term in enumerate(atom.terms):
            if is_constant(term):
                const_checks.append((position, self._intern(term)))
            else:
                first = var_position.get(term)
                if first is None:
                    var_position[term] = position
                else:
                    eq_checks.append((position, first))
        self._const_checks = tuple(const_checks)
        self._eq_checks = tuple(eq_checks)
        self._var_position = var_position

    def match(self, row: IntRow) -> bool:
        """Does *row* ground the atom (constants agree, repeats equal)?"""
        for position, value in self._const_checks:
            if row[position] != value:
                return False
        for position, first in self._eq_checks:
            if row[position] != row[first]:
                return False
        return True

    def values(self, row: IntRow, variables: Sequence) -> IntRow:
        """The id vector of *variables* (all must occur in the atom)."""
        positions = self._var_position
        return tuple(row[positions[v]] for v in variables)

    def project(self, row: IntRow, terms: Sequence) -> IntRow:
        """Ids of a term sequence: constants interned, variables read off *row*."""
        positions = self._var_position
        intern = self._intern
        return tuple(
            intern(term) if is_constant(term) else row[positions[term]]
            for term in terms
        )


def witness_row_sets(
    query: ConjunctiveQuery, store: ColumnarFactStore
) -> List[FrozenSet[Tuple[str, IntRow]]]:
    """Every witness ``θ(q) ⊆ store`` as a frozenset of ``(name, id-row)``.

    The id-space counterpart of :func:`repro.query.evaluation.witnesses`
    (deduplicated valuation images), feeding the brute-force repair search
    with int-tuple bookkeeping instead of fact objects.
    """
    encoded, slot_count = _encode_plan(query, store)
    out: List[FrozenSet[Tuple[str, IntRow]]] = []
    if encoded is None or not encoded:
        return out
    reduced = _reduced_candidates(encoded, store)
    if any(not rows for rows in reduced):
        return out
    seen: Set[FrozenSet[Tuple[str, IntRow]]] = set()
    bindings: List[Optional[int]] = [None] * slot_count
    depth = len(encoded)
    stack: List[Tuple[str, IntRow]] = []

    def backtrack(level: int) -> None:
        if level == depth:
            image = frozenset(stack)
            if image not in seen:
                seen.add(image)
                out.append(image)
            return
        relation, ops, key_plan, _atom = encoded[level]
        allowed = reduced[level]
        if key_plan is not None:
            key = tuple(
                bindings[slot] if constant is None else constant
                for slot, constant in key_plan
            )
            candidates = [
                row
                for row in relation.blocks.get(key, ())  # type: ignore[union-attr]
                if row in allowed
            ]
        else:
            candidates = allowed
        name = relation.schema.name  # type: ignore[union-attr]
        for row in candidates:
            matched = True
            bound: List[int] = []
            for op, pos, arg in ops:
                value = row[pos]
                if op == CHECK_CONST:
                    if value != arg:
                        matched = False
                        break
                elif op == CHECK_SLOT:
                    if bindings[arg] != value:
                        matched = False
                        break
                else:
                    bindings[arg] = value
                    bound.append(arg)
            if matched:
                stack.append((name, row))
                backtrack(level + 1)
                stack.pop()
            for slot in bound:
                bindings[slot] = None

    backtrack(0)
    return out


def has_witness(
    query: ConjunctiveQuery,
    store: ColumnarFactStore,
    allowed: Optional[Dict[str, Set[IntRow]]] = None,
) -> bool:
    """Is some witness ``θ(q)`` contained in the (restricted) store?

    *allowed*, when given, maps relation names to the usable id-rows —
    evaluation over a sub-database without materialising it.  Relations
    absent from the map contribute no rows (mirroring
    ``satisfies(fact_subset, query)``).
    """
    if query.is_empty:
        return True
    encoded, slot_count = _encode_plan(query, store)
    if encoded is None:
        return False
    if not encoded:
        return True
    bindings: List[Optional[int]] = [None] * slot_count
    depth = len(encoded)

    def backtrack(level: int) -> bool:
        if level == depth:
            return True
        relation, ops, key_plan, _atom = encoded[level]
        name = relation.schema.name  # type: ignore[union-attr]
        usable: Optional[Iterable[IntRow]] = None
        if allowed is not None:
            usable = allowed.get(name)
            if not usable:
                return False
        if key_plan is not None:
            key = tuple(
                bindings[slot] if constant is None else constant
                for slot, constant in key_plan
            )
            candidates: Iterable[IntRow] = relation.blocks.get(key, ())  # type: ignore[union-attr]
        else:
            candidates = relation.row_index.keys()  # type: ignore[union-attr]
        for row in candidates:
            if usable is not None and row not in usable:
                continue
            matched = True
            bound: List[int] = []
            for op, pos, arg in ops:
                value = row[pos]
                if op == CHECK_CONST:
                    if value != arg:
                        matched = False
                        break
                elif op == CHECK_SLOT:
                    if bindings[arg] != value:
                        matched = False
                        break
                else:
                    bindings[arg] = value
                    bound.append(arg)
            if matched and backtrack(level + 1):
                return True
            for slot in bound:
                bindings[slot] = None
        return False

    return backtrack(0)


def stale_block_keys(
    query: ConjunctiveQuery, store: ColumnarFactStore
) -> List[BlockKey]:
    """Blocks containing some fact outside every witness of *query*.

    Sweeps the store's per-block id arrays against :func:`used_rows` and
    decodes only the stale keys; an empty result means the database is
    already purified relative to *query*.
    """
    used = used_rows(query, store)
    stale: List[BlockKey] = []
    empty: Set[IntRow] = set()
    decode = store.table.decode
    for name, relation in store._relations.items():
        rows_in_use = used.get(name, empty)
        for key, rows in relation.blocks.items():
            for row in rows:
                if row not in rows_in_use:
                    stale.append((name, decode(key)))
                    break
    return stale
