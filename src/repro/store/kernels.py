"""Integer-encoded execution kernels over the columnar store.

The kernels here are the id-space twins of the object-level sweeps in
:mod:`repro.certainty.purify`: they reuse the compiled slot-based
:func:`~repro.query.evaluation.backtrack_plan` of a query, encode its
constants through the store's intern table once per call, and then run the
backtracking join entirely on integer rows — block probes are dict lookups
on id-tuples, bindings live in one mutable int array, and witness marking
collects id-rows instead of fact objects.

:func:`stale_block_keys` is the purification sweep (Lemma 1): it returns
the blocks containing at least one fact that participates in no witness
``θ(q) ⊆ db``, sweeping the store's per-block id arrays and decoding only
the (usually few) stale block keys back to object space.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..query.conjunctive import ConjunctiveQuery
from ..query.evaluation import CHECK_CONST, CHECK_SLOT, backtrack_plan
from .columnar import BlockKey, ColumnarFactStore, IntRow

#: One encoded step: (relation columns or None, ops, key_plan).
_EncodedStep = Tuple[object, Tuple[Tuple[int, int, int], ...], Optional[Tuple]]


def _encode_plan(
    query: ConjunctiveQuery, store: ColumnarFactStore
) -> Tuple[Optional[List[_EncodedStep]], int]:
    """Encode the structural backtracking plan of *query* against *store*.

    Returns ``(steps, slot_count)``; *steps* is ``None`` when some atom can
    never match (its relation is absent or has a different arity), in which
    case the query has no witnesses at all.
    """
    steps, slot_variables = backtrack_plan(query)
    intern = store.table.intern
    encoded: List[_EncodedStep] = []
    for atom, ops, key_plan in steps:
        relation = store.relation_columns(atom.relation.name)
        if relation is None or relation.schema.arity != atom.relation.arity:
            return None, len(slot_variables)
        enc_ops = tuple(
            (op, pos, intern(arg) if op == CHECK_CONST else arg)  # type: ignore[arg-type]
            for op, pos, arg in ops
        )
        enc_key = None
        if key_plan is not None and relation.schema.key_size == atom.relation.key_size:
            enc_key = tuple(
                (slot, intern(constant) if constant is not None else None)
                for slot, constant in key_plan
            )
        encoded.append((relation, enc_ops, enc_key))
    return encoded, len(slot_variables)


def used_rows(
    query: ConjunctiveQuery, store: ColumnarFactStore
) -> Dict[str, Set[IntRow]]:
    """Per relation, the id-rows used by at least one witness of *query*.

    The id-space counterpart of
    :func:`repro.certainty.purify.relevant_facts`.
    """
    encoded, slot_count = _encode_plan(query, store)
    used: Dict[str, Set[IntRow]] = {}
    if encoded is None or not encoded:
        return used
    bindings: List[Optional[int]] = [None] * slot_count
    depth = len(encoded)
    stack: List[Tuple[str, IntRow]] = []

    def backtrack(level: int) -> None:
        if level == depth:
            for name, row in stack:
                used.setdefault(name, set()).add(row)
            return
        relation, ops, key_plan = encoded[level]
        if key_plan is not None:
            key = tuple(
                bindings[slot] if constant is None else constant
                for slot, constant in key_plan
            )
            candidates = relation.blocks.get(key, ())  # type: ignore[union-attr]
        else:
            candidates = relation.row_index.keys()  # type: ignore[union-attr]
        name = relation.schema.name  # type: ignore[union-attr]
        for row in candidates:
            matched = True
            bound: List[int] = []
            for op, pos, arg in ops:
                value = row[pos]
                if op == CHECK_CONST:
                    if value != arg:
                        matched = False
                        break
                elif op == CHECK_SLOT:
                    if bindings[arg] != value:
                        matched = False
                        break
                else:
                    bindings[arg] = value
                    bound.append(arg)
            if matched:
                stack.append((name, row))
                backtrack(level + 1)
                stack.pop()
            for slot in bound:
                bindings[slot] = None

    backtrack(0)
    return used


def stale_block_keys(
    query: ConjunctiveQuery, store: ColumnarFactStore
) -> List[BlockKey]:
    """Blocks containing some fact outside every witness of *query*.

    Sweeps the store's per-block id arrays against :func:`used_rows` and
    decodes only the stale keys; an empty result means the database is
    already purified relative to *query*.
    """
    used = used_rows(query, store)
    stale: List[BlockKey] = []
    empty: Set[IntRow] = set()
    decode = store.table.decode
    for name, relation in store._relations.items():
        rows_in_use = used.get(name, empty)
        for key, rows in relation.blocks.items():
            for row in rows:
                if row not in rows_in_use:
                    stale.append((name, decode(key)))
                    break
    return stale
