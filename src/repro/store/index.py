"""The columnar backend of :class:`~repro.query.evaluation.FactIndex`.

A :class:`ColumnarFactIndex` is a drop-in fact index that *additionally*
maintains a :class:`~repro.store.columnar.ColumnarFactStore` alongside the
object-level dictionaries.  Object-level consumers (the backtracking
evaluator, the Theorem 3/4 solvers, brute force, delta joins) keep reading
facts exactly as before; integer-encoded consumers — the compiled relational
plans of :mod:`repro.fo.compile`, the purify sweep, candidate enumeration,
snapshot shipping — detect the ``store`` attribute and run on id-rows
end-to-end.

The dual maintenance costs one extra encode (a few intern-table lookups)
per mutation; every read on the hot query path is repaid many times over
by integer hashing.  Sessions choose the backend via
``CertaintySession(db, backend=...)``; the pure-object ``FactIndex`` remains
the reference implementation.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..model.atoms import Fact
from ..query.evaluation import FactIndex
from .columnar import ColumnarFactStore
from .intern import InternTable


class ColumnarFactIndex(FactIndex):
    """A :class:`FactIndex` that mirrors its contents into a columnar store."""

    def __init__(
        self,
        facts: Iterable[Fact] = (),
        table: Optional[InternTable] = None,
    ) -> None:
        self._store = ColumnarFactStore(table=table)
        super().__init__(facts)  # populates through the overridden add()

    @property
    def store(self) -> ColumnarFactStore:
        """The integer-encoded twin of this index (same facts, id-rows)."""
        return self._store

    def add(self, fact: Fact) -> None:
        """Insert a fact into both representations (idempotent)."""
        super().add(fact)
        self._store.add_fact(fact)

    def discard(self, fact: Fact) -> None:
        """Remove a fact from both representations if present."""
        super().discard(fact)
        self._store.discard_fact(fact)

    # The observer-protocol aliases must rebind to the *overridden* methods
    # (the base class aliases point at FactIndex.add/discard).
    fact_added = add
    fact_discarded = discard
