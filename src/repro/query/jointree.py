"""Join trees of acyclic conjunctive queries.

A *join tree* for a conjunctive query ``q`` is an undirected tree whose
vertices are the atoms of ``q`` and that satisfies the *Connectedness
Condition*: whenever a variable occurs in two atoms ``F`` and ``G``, it
occurs in every atom on the unique path between ``F`` and ``G``.  Edges are
labelled with ``vars(F) ∩ vars(G)``.

Join trees are built from the GYO reduction (each removed ear is attached to
its witness); a query is acyclic iff this succeeds.  The attack graph of the
paper is defined with respect to a join tree but is provably independent of
the choice of join tree; :mod:`repro.attacks.graph` relies on that.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..model.atoms import Atom
from ..model.symbols import Variable
from .conjunctive import ConjunctiveQuery
from .hypergraph import QueryHypergraph


class NotAcyclicError(ValueError):
    """Raised when a join tree is requested for a cyclic conjunctive query."""


class JoinTree:
    """An undirected labelled tree over the atoms of an acyclic query."""

    def __init__(self, query: ConjunctiveQuery, edges: Iterable[Tuple[Atom, Atom]]) -> None:
        self.query = query
        self._adjacency: Dict[Atom, List[Atom]] = {atom: [] for atom in query.atoms}
        self._edges: List[Tuple[Atom, Atom]] = []
        for left, right in edges:
            self._add_edge(left, right)
        self._validate_tree()

    # -- construction ---------------------------------------------------------------

    def _add_edge(self, left: Atom, right: Atom) -> None:
        if left not in self._adjacency or right not in self._adjacency:
            raise ValueError("join tree edges must connect atoms of the query")
        if left == right:
            raise ValueError("join tree must not contain self-loops")
        self._adjacency[left].append(right)
        self._adjacency[right].append(left)
        self._edges.append((left, right))

    def _validate_tree(self) -> None:
        atoms = list(self.query.atoms)
        if not atoms:
            return
        if len(self._edges) != len(atoms) - 1:
            raise ValueError(
                f"a tree over {len(atoms)} atoms needs {len(atoms) - 1} edges, "
                f"got {len(self._edges)}"
            )
        # Connectivity check via BFS.
        seen: Set[Atom] = set()
        queue = deque([atoms[0]])
        while queue:
            node = queue.popleft()
            if node in seen:
                continue
            seen.add(node)
            queue.extend(n for n in self._adjacency[node] if n not in seen)
        if len(seen) != len(atoms):
            raise ValueError("join tree edges do not connect all atoms")

    # -- accessors --------------------------------------------------------------------

    @property
    def atoms(self) -> Tuple[Atom, ...]:
        """The vertices (atoms) of the tree."""
        return self.query.atoms

    @property
    def edges(self) -> List[Tuple[Atom, Atom]]:
        """The undirected edges, as (parent, child) pairs from construction order."""
        return list(self._edges)

    def neighbors(self, atom: Atom) -> List[Atom]:
        """The atoms adjacent to *atom*."""
        return list(self._adjacency[atom])

    def edge_label(self, left: Atom, right: Atom) -> FrozenSet[Variable]:
        """The label ``vars(F) ∩ vars(G)`` of an edge (also defined for non-edges)."""
        return left.variables & right.variables

    def path(self, source: Atom, target: Atom) -> List[Atom]:
        """The unique path of atoms from *source* to *target* (inclusive)."""
        if source not in self._adjacency or target not in self._adjacency:
            raise KeyError("both atoms must belong to the join tree")
        if source == target:
            return [source]
        parents: Dict[Atom, Optional[Atom]] = {source: None}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            if node == target:
                break
            for neighbor in self._adjacency[node]:
                if neighbor not in parents:
                    parents[neighbor] = node
                    queue.append(neighbor)
        if target not in parents:
            raise ValueError("atoms are not connected in the join tree")
        path: List[Atom] = [target]
        while parents[path[-1]] is not None:
            path.append(parents[path[-1]])  # type: ignore[index]
        path.reverse()
        return path

    def path_labels(self, source: Atom, target: Atom) -> List[FrozenSet[Variable]]:
        """The labels of the edges on the unique path from *source* to *target*."""
        atoms = self.path(source, target)
        return [self.edge_label(a, b) for a, b in zip(atoms, atoms[1:])]

    # -- validation ---------------------------------------------------------------------

    def satisfies_connectedness(self) -> bool:
        """Check the Connectedness Condition for every variable of the query."""
        for variable in self.query.variables:
            holders = [atom for atom in self.query.atoms if variable in atom.variables]
            for source in holders:
                for target in holders:
                    if source == target:
                        continue
                    if any(variable not in atom.variables for atom in self.path(source, target)):
                        return False
        return True

    def __repr__(self) -> str:
        edges = ", ".join(f"{a}—{b}" for a, b in self._edges)
        return f"JoinTree({edges})"

    def pretty(self) -> str:
        """A readable rendering listing every edge with its label."""
        lines = []
        for left, right in self._edges:
            label = "{" + ", ".join(sorted(v.name for v in self.edge_label(left, right))) + "}"
            lines.append(f"{left}  —{label}—  {right}")
        return "\n".join(lines) if lines else "(single atom)"


def build_join_tree(query: ConjunctiveQuery) -> JoinTree:
    """Build a join tree for *query* via the GYO reduction.

    Raises :class:`NotAcyclicError` when the query is cyclic.
    """
    atoms = list(query.atoms)
    if len(atoms) <= 1:
        return JoinTree(query, [])
    hypergraph = QueryHypergraph(query)
    steps, remaining = hypergraph.gyo_reduction()
    if len(remaining) > 1:
        raise NotAcyclicError(f"query {query} is not acyclic (no join tree exists)")
    edges: List[Tuple[Atom, Atom]] = []
    # Atoms removed without a witness (isolated components) are attached to the
    # final remaining atom (or to the last removed atom) with an empty label.
    anchor = remaining[0] if remaining else steps[-1].ear
    for step in steps:
        witness = step.witness if step.witness is not None else anchor
        if witness == step.ear:
            continue
        edges.append((step.ear, witness))
    tree = JoinTree(query, edges)
    if not tree.satisfies_connectedness():
        # GYO with maximal-overlap witnesses always yields a valid join tree for
        # acyclic queries; reaching this point indicates a bug.
        raise NotAcyclicError(f"constructed tree violates connectedness for {query}")
    return tree


def all_join_trees(query: ConjunctiveQuery, limit: int = 1000) -> List[JoinTree]:
    """Enumerate join trees of *query* (up to *limit*), by brute force.

    Used in tests to verify that attack graphs are independent of the chosen
    join tree.  Exponential in the number of atoms; intended for small queries.
    """
    import itertools

    atoms = list(query.atoms)
    if len(atoms) <= 1:
        return [JoinTree(query, [])]
    candidate_edges = [
        (atoms[i], atoms[j]) for i in range(len(atoms)) for j in range(i + 1, len(atoms))
    ]
    trees: List[JoinTree] = []
    for combo in itertools.combinations(candidate_edges, len(atoms) - 1):
        try:
            tree = JoinTree(query, combo)
        except ValueError:
            continue
        if tree.satisfies_connectedness():
            trees.append(tree)
            if len(trees) >= limit:
                break
    return trees
