"""Query hypergraphs and the GYO reduction.

The hypergraph of a conjunctive query has the query's variables as vertices
and, for every atom, a hyperedge containing the atom's variables.  A query is
*acyclic* (α-acyclic) iff the GYO (Graham / Yu–Özsoyoğlu) reduction empties
its hypergraph, which is also equivalent to the existence of a join tree
(Beeri, Fagin, Maier, Yannakakis 1983).

The GYO reduction repeatedly removes *ears*: a hyperedge ``e`` is an ear if
there exists another hyperedge ``w`` (the *witness*) such that every vertex
of ``e`` is either exclusive to ``e`` or also contained in ``w``.  The
sequence of (ear, witness) removals directly yields a join tree, which is
what :mod:`repro.query.jointree` uses.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..model.atoms import Atom
from ..model.symbols import Variable
from .conjunctive import ConjunctiveQuery


class GYOStep:
    """One step of the GYO reduction: *ear* removed with *witness* (or None)."""

    __slots__ = ("ear", "witness")

    def __init__(self, ear: Atom, witness: Optional[Atom]) -> None:
        self.ear = ear
        self.witness = witness

    def __repr__(self) -> str:
        return f"GYOStep(ear={self.ear}, witness={self.witness})"


class QueryHypergraph:
    """The hypergraph of a conjunctive query."""

    def __init__(self, query: ConjunctiveQuery) -> None:
        self.query = query
        self.edges: Dict[Atom, FrozenSet[Variable]] = {
            atom: atom.variables for atom in query.atoms
        }

    @property
    def vertices(self) -> FrozenSet[Variable]:
        """All variables of the query."""
        return self.query.variables

    def incident_edges(self, variable: Variable) -> List[Atom]:
        """The atoms whose variable set contains *variable*."""
        return [atom for atom, vs in self.edges.items() if variable in vs]

    # -- GYO reduction ------------------------------------------------------------

    def gyo_reduction(self) -> Tuple[List[GYOStep], List[Atom]]:
        """Run the GYO reduction.

        Returns ``(steps, remaining)`` where *steps* records the ear/witness
        pairs in removal order and *remaining* is the list of atoms that could
        not be removed.  The query is acyclic iff at most one atom remains.
        """
        remaining: List[Atom] = list(self.query.atoms)
        steps: List[GYOStep] = []
        changed = True
        while changed and len(remaining) > 1:
            changed = False
            for ear in list(remaining):
                witness = self._find_witness(ear, remaining)
                if witness is not None or self._is_isolated_ear(ear, remaining):
                    steps.append(GYOStep(ear, witness))
                    remaining.remove(ear)
                    changed = True
                    break
        return steps, remaining

    def _find_witness(self, ear: Atom, remaining: Sequence[Atom]) -> Optional[Atom]:
        """Find a witness making *ear* an ear, preferring maximal overlap."""
        ear_vars = ear.variables
        others = [a for a in remaining if a is not ear]
        if not others:
            return None
        exclusive = set(ear_vars)
        for other in others:
            exclusive -= other.variables
        shared = ear_vars - exclusive
        best: Optional[Atom] = None
        best_overlap = -1
        for other in others:
            if shared.issubset(other.variables):
                overlap = len(ear_vars & other.variables)
                if overlap > best_overlap:
                    best_overlap = overlap
                    best = other
        return best

    def _is_isolated_ear(self, ear: Atom, remaining: Sequence[Atom]) -> bool:
        """An atom sharing no variable with any other remaining atom is an ear."""
        others = [a for a in remaining if a is not ear]
        if not others:
            return False
        return all(not (ear.variables & other.variables) for other in others)

    def is_acyclic(self) -> bool:
        """``True`` iff the query is α-acyclic (has a join tree)."""
        if len(self.query) <= 1:
            return True
        _, remaining = self.gyo_reduction()
        return len(remaining) <= 1


def is_acyclic(query: ConjunctiveQuery) -> bool:
    """Convenience wrapper: ``True`` iff *query* has a join tree."""
    return QueryHypergraph(query).is_acyclic()
