"""A small text parser for conjunctive queries and facts.

Grammar (informal)::

    query    :=  atom ("," atom)* | atom ("&&" atom)*
    atom     :=  NAME "(" keyterms ["|" terms] ")"
    keyterms :=  terms
    terms    :=  term ("," term)*
    term     :=  NAME            -- a variable (lower- or upper-case identifier)
               | "'" text "'"    -- a string constant
               | '"' text '"'    -- a string constant
               | NUMBER          -- an integer constant

The ``|`` separator inside an atom splits the primary-key positions from the
non-key positions, mirroring the paper's underlining convention
(``R(x, y | z)`` means the key of ``R`` is its first two positions).  If no
``|`` is present, all positions are key positions (the relation is all-key).

Relation signatures are collected into a :class:`~repro.model.schema.DatabaseSchema`;
re-using a relation name with a different signature is an error.

Examples
--------
>>> q = parse_query("R(x | y), S(y, z | x)")
>>> [a.name for a in q]
['R', 'S']
>>> fact = parse_fact("R('a' | 1)", schema=q.schema())
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence

from ..model.atoms import Atom, Fact, RelationSchema
from ..model.schema import DatabaseSchema
from ..model.symbols import Constant, Term, Variable
from .conjunctive import ConjunctiveQuery


class QueryParseError(ValueError):
    """Raised when a query or fact string cannot be parsed."""


_ATOM_RE = re.compile(r"\s*([A-Za-z_][A-Za-z_0-9]*)\s*\(([^()]*)\)\s*")
_NUMBER_RE = re.compile(r"^-?\d+$")


def _parse_term(token: str) -> Term:
    token = token.strip()
    if not token:
        raise QueryParseError("empty term")
    if (token.startswith("'") and token.endswith("'") and len(token) >= 2) or (
        token.startswith('"') and token.endswith('"') and len(token) >= 2
    ):
        return Constant(token[1:-1])
    if _NUMBER_RE.match(token):
        return Constant(int(token))
    if re.match(r"^[A-Za-z_][A-Za-z_0-9]*$", token):
        return Variable(token)
    raise QueryParseError(f"cannot parse term {token!r}")


def _split_terms(text: str) -> List[str]:
    parts = [p for p in text.split(",")]
    if parts == [""]:
        return []
    return parts


def parse_atom(text: str, schema: Optional[DatabaseSchema] = None) -> Atom:
    """Parse a single atom such as ``R(x, y | z)`` or ``S('a', x)``."""
    match = _ATOM_RE.fullmatch(text)
    if match is None:
        raise QueryParseError(f"cannot parse atom {text!r}")
    name, inner = match.group(1), match.group(2)
    if "|" in inner:
        key_part, _, rest_part = inner.partition("|")
        key_terms = [_parse_term(t) for t in _split_terms(key_part)]
        rest_terms = [_parse_term(t) for t in _split_terms(rest_part)]
    else:
        key_terms = [_parse_term(t) for t in _split_terms(inner)]
        rest_terms = []
    terms = key_terms + rest_terms
    if not key_terms:
        raise QueryParseError(f"atom {text!r} must have at least one key position")
    if schema is not None and name in schema:
        relation = schema[name]
        if relation.arity != len(terms) or relation.key_size != len(key_terms):
            raise QueryParseError(
                f"relation {name!r} already has signature "
                f"[{relation.arity},{relation.key_size}], atom {text!r} disagrees"
            )
    else:
        relation = RelationSchema(name, len(terms), len(key_terms))
        if schema is not None:
            schema.add(relation)
    return Atom(relation, terms)


def _split_atoms(text: str) -> List[str]:
    """Split a query body on commas that are not inside parentheses."""
    text = text.strip()
    if text.startswith("{") and text.endswith("}"):
        text = text[1:-1]
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise QueryParseError("unbalanced parentheses")
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        elif ch == "&" and depth == 0 and i + 1 < len(text) and text[i + 1] == "&":
            parts.append("".join(current))
            current = []
            i += 1
        else:
            current.append(ch)
        i += 1
    if depth != 0:
        raise QueryParseError("unbalanced parentheses")
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return [p for p in (part.strip() for part in parts) if p]


def parse_query(
    text: str,
    free: Sequence[str] = (),
    schema: Optional[DatabaseSchema] = None,
) -> ConjunctiveQuery:
    """Parse a conjunctive query from text.

    Parameters
    ----------
    text:
        The query body, e.g. ``"R(x | y), S(y, z | x)"``.
    free:
        Names of the free (answer) variables, if any.
    schema:
        An optional schema to share relation signatures across queries and
        databases; it is extended in place with newly seen relations.
    """
    schema = schema if schema is not None else DatabaseSchema()
    atoms = [parse_atom(part, schema) for part in _split_atoms(text)]
    if not atoms:
        return ConjunctiveQuery([])
    return ConjunctiveQuery(atoms, [Variable(name) for name in free])


def parse_fact(text: str, schema: Optional[DatabaseSchema] = None) -> Fact:
    """Parse a fact such as ``R('a', 1 | 'b')``.

    Unquoted alphabetic tokens are **not** allowed in facts (they would be
    variables); quote string constants or use integers.
    """
    atom = parse_atom(text, schema)
    if atom.variables:
        names = ", ".join(sorted(v.name for v in atom.variables))
        raise QueryParseError(
            f"fact {text!r} contains variables ({names}); quote string constants"
        )
    return atom.to_fact()


def parse_facts(lines: Sequence[str], schema: Optional[DatabaseSchema] = None) -> List[Fact]:
    """Parse several facts, sharing one schema."""
    schema = schema if schema is not None else DatabaseSchema()
    return [parse_fact(line, schema) for line in lines if line.strip()]
