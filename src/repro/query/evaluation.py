"""Evaluation of conjunctive queries over sets of facts.

Query satisfaction follows Section 3 of the paper: ``db |= q`` iff there is a
valuation ``θ`` over ``vars(q)`` such that ``θ(F) ∈ db`` for every atom
``F ∈ q``.  Evaluation is implemented as a backtracking join with a greedy
"most-bound-first" atom ordering and per-relation fact indexes, which is
adequate for the query sizes that occur in certain-answer classification
(queries are small; databases can be large).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Collection, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..model.atoms import Atom, Fact
from ..model.symbols import Constant, Variable, is_constant
from ..model.valuation import Valuation
from .conjunctive import ConjunctiveQuery

_EMPTY: Dict[Fact, None] = {}


class FactIndex:
    """Facts grouped by relation name, with an index on key values.

    The index supports incremental :meth:`add`/:meth:`discard` updates, so a
    long-lived index (e.g. the one held by an engine ``CertaintySession``)
    can track a mutating database instead of being rebuilt per call.  It
    implements the :class:`~repro.model.database.DatabaseObserver` protocol
    and can be registered directly on an ``UncertainDatabase``.

    Facts are stored in insertion-ordered dict-sets so iteration stays
    deterministic and membership/removal is O(1).
    """

    def __init__(self, facts: Iterable[Fact] = ()) -> None:
        self._by_relation: Dict[str, Dict[Fact, None]] = {}
        self._by_block: Dict[Tuple[str, Tuple[Constant, ...]], Dict[Fact, None]] = {}
        self._size = 0
        for fact in facts:
            self.add(fact)

    # -- incremental maintenance ------------------------------------------------

    def add(self, fact: Fact) -> None:
        """Insert a fact (idempotent)."""
        name = fact.relation.name
        relation = self._by_relation.setdefault(name, {})
        if fact in relation:
            return
        relation[fact] = None
        self._by_block.setdefault((name, fact.key_terms), {})[fact] = None
        self._size += 1

    def discard(self, fact: Fact) -> None:
        """Remove a fact if present."""
        name = fact.relation.name
        relation = self._by_relation.get(name)
        if relation is None or fact not in relation:
            return
        del relation[fact]
        if not relation:
            del self._by_relation[name]
        block_key = (name, fact.key_terms)
        block = self._by_block.get(block_key)
        if block is not None:
            block.pop(fact, None)
            if not block:
                del self._by_block[block_key]
        self._size -= 1

    # Observer protocol of UncertainDatabase.
    fact_added = add
    fact_discarded = discard

    # -- lookups ----------------------------------------------------------------

    def relation(self, name: str) -> Collection[Fact]:
        """All facts of relation *name*."""
        return self._by_relation.get(name, _EMPTY).keys()

    def block(self, name: str, key_values: Tuple[Constant, ...]) -> Collection[Fact]:
        """All facts of relation *name* with the given key values."""
        return self._by_block.get((name, key_values), _EMPTY).keys()

    def relations(self) -> List[str]:
        """The relation names present in the index."""
        return list(self._by_relation)

    def __contains__(self, fact: object) -> bool:
        if not isinstance(fact, Fact):
            return False
        return fact in self._by_relation.get(fact.relation.name, _EMPTY)

    def __iter__(self) -> Iterator[Fact]:
        for relation in self._by_relation.values():
            yield from relation

    def __len__(self) -> int:
        return self._size


def match_atom(atom: Atom, fact: Fact, valuation: Valuation) -> Optional[Valuation]:
    """Try to extend *valuation* so that it maps *atom* onto *fact*.

    Returns the extended valuation, or ``None`` if the fact does not match
    the atom pattern (wrong relation, conflicting constant, or a repeated
    variable bound to two different values).
    """
    if atom.relation.name != fact.relation.name or atom.relation.arity != fact.relation.arity:
        return None
    bindings = valuation.as_dict()
    for term, value in zip(atom.terms, fact.terms):
        if is_constant(term):
            if term != value:
                return None
        else:
            existing = bindings.get(term)
            if existing is None:
                bindings[term] = value  # type: ignore[assignment]
            elif existing != value:
                return None
    return Valuation(bindings)


@lru_cache(maxsize=2048)
def order_atoms(query: ConjunctiveQuery) -> Tuple[Atom, ...]:
    """Greedy atom ordering: maximise connectivity with already-placed atoms.

    The ordering depends only on the query, so it is memoised: repeated
    evaluations of the same (or residual) query reuse the compiled order.
    """
    remaining = list(query.atoms)
    if not remaining:
        return ()
    ordered: List[Atom] = []
    bound: Set[Variable] = set()
    # Start with the atom having the most constants (most selective).
    first = max(remaining, key=lambda a: (len(a.constants), -len(a.variables)))
    ordered.append(first)
    bound |= first.variables
    remaining.remove(first)
    while remaining:
        best = max(
            remaining,
            key=lambda a: (len(a.variables & bound), len(a.constants), -len(a.variables)),
        )
        ordered.append(best)
        bound |= best.variables
        remaining.remove(best)
    return tuple(ordered)


#: Per-position match operations of a compiled backtracking step.
CHECK_CONST, CHECK_SLOT, BIND_SLOT = 0, 1, 2


@lru_cache(maxsize=2048)
def backtrack_plan(query: ConjunctiveQuery):
    """Compile *query* into slot-based backtracking steps (memoised).

    Variables are assigned dense *slots* (ints) in first-occurrence order
    over the greedy :func:`order_atoms` ordering, so the join loop can keep
    its bindings in one mutable list instead of rebuilding a
    :class:`~repro.model.valuation.Valuation` dict per matched fact.  Each
    step describes one atom:

    ``(atom, ops, key_plan)``
        *ops* is a tuple of ``(op, position, arg)`` with *op* one of
        :data:`CHECK_CONST` (arg: the constant), :data:`CHECK_SLOT` (arg:
        the slot the position must equal) or :data:`BIND_SLOT` (arg: the
        slot the position binds); a repeated variable's first occurrence
        binds and later occurrences check, whether the repeat is within one
        atom or across atoms.  *key_plan* covers the primary-key positions
        with ``(slot, None)`` / ``(None, constant)`` entries when the whole
        key is determined by earlier steps (enabling a block probe), and is
        ``None`` otherwise.

    The same structural plan drives both the object-level loop below and
    the integer-encoded sweeps of :mod:`repro.store.kernels` (which encode
    the constants through an intern table per call).
    """
    steps = []
    slots: Dict[Variable, int] = {}
    for atom in order_atoms(query):
        before = dict(slots)
        ops: List[Tuple[int, int, object]] = []
        for position, term in enumerate(atom.terms):
            if is_constant(term):
                ops.append((CHECK_CONST, position, term))
            elif term in slots:
                ops.append((CHECK_SLOT, position, slots[term]))
            else:
                slot = len(slots)
                slots[term] = slot  # type: ignore[index]
                ops.append((BIND_SLOT, position, slot))
        key_plan: Optional[List[Tuple[Optional[int], Optional[Constant]]]] = []
        for position in range(atom.relation.key_size):
            term = atom.terms[position]
            if is_constant(term):
                key_plan.append((None, term))
            elif term in before:
                key_plan.append((before[term], None))
            else:
                key_plan = None
                break
        steps.append(
            (atom, tuple(ops), tuple(key_plan) if key_plan is not None else None)
        )
    return tuple(steps), tuple(slots.items())


def iterate_valuations(
    query: ConjunctiveQuery,
    index: FactIndex,
    restrict_to: Optional[FrozenSet[Fact]] = None,
) -> Iterator[Valuation]:
    """Yield every valuation ``θ`` over ``vars(q)`` with ``θ(q) ⊆`` the facts.

    Runs the compiled :func:`backtrack_plan`: one mutable slot array holds
    the bindings across the whole search, and a :class:`Valuation` object
    is only materialised per *solution* (not per matched fact).

    Parameters
    ----------
    query:
        The conjunctive query.
    index:
        A :class:`FactIndex` over the candidate facts.
    restrict_to:
        When given, only facts in this set are considered (used to evaluate
        the same index against many repairs without re-indexing).
    """
    steps, slot_variables = backtrack_plan(query)
    bindings: List[Optional[Constant]] = [None] * len(slot_variables)
    depth = len(steps)

    def backtrack(position: int) -> Iterator[Valuation]:
        if position == depth:
            valuation = Valuation.__new__(Valuation)
            valuation._mapping = {v: bindings[s] for v, s in slot_variables}
            yield valuation
            return
        atom, ops, key_plan = steps[position]
        relation = atom.relation
        candidates: Sequence[Fact]
        if key_plan is not None:
            key = tuple(
                bindings[slot] if constant is None else constant
                for slot, constant in key_plan
            )
            candidates = index.block(relation.name, key)  # type: ignore[arg-type]
        else:
            candidates = index.relation(relation.name)
        arity = relation.arity
        for fact in candidates:
            if restrict_to is not None and fact not in restrict_to:
                continue
            if fact.relation.arity != arity:
                continue
            terms = fact.terms
            matched = True
            bound: List[int] = []
            for op, pos, arg in ops:
                value = terms[pos]
                if op == CHECK_CONST:
                    if value != arg:
                        matched = False
                        break
                elif op == CHECK_SLOT:
                    if bindings[arg] != value:  # type: ignore[index]
                        matched = False
                        break
                else:
                    bindings[arg] = value  # type: ignore[index]
                    bound.append(arg)  # type: ignore[arg-type]
            if matched:
                yield from backtrack(position + 1)
            for slot in bound:
                bindings[slot] = None

    yield from backtrack(0)


def find_valuation(
    query: ConjunctiveQuery,
    facts: Iterable[Fact],
) -> Optional[Valuation]:
    """Return one satisfying valuation, or ``None`` if ``facts ⊭ q``."""
    index = facts if isinstance(facts, FactIndex) else FactIndex(facts)
    for valuation in iterate_valuations(query, index):
        return valuation
    return None


def satisfies(facts: Iterable[Fact], query: ConjunctiveQuery) -> bool:
    """``facts |= q``: does the set of facts satisfy the Boolean query?"""
    if query.is_empty:
        return True
    return find_valuation(query, facts) is not None


def all_valuations(query: ConjunctiveQuery, facts: Iterable[Fact]) -> List[Valuation]:
    """All satisfying valuations over ``vars(q)`` (deduplicated)."""
    index = facts if isinstance(facts, FactIndex) else FactIndex(facts)
    seen: Set[Valuation] = set()
    out: List[Valuation] = []
    for valuation in iterate_valuations(query, index):
        restricted = valuation.restrict(query.variables)
        if restricted not in seen:
            seen.add(restricted)
            out.append(restricted)
    return out


def witnesses(query: ConjunctiveQuery, facts: Iterable[Fact]) -> List[FrozenSet[Fact]]:
    """The *witnesses* of the query: images ``θ(q)`` of satisfying valuations.

    Witness sets are the unit of reasoning for certainty: a repair satisfies
    the query iff it contains some witness set entirely.
    """
    index = facts if isinstance(facts, FactIndex) else FactIndex(facts)
    seen: Set[FrozenSet[Fact]] = set()
    out: List[FrozenSet[Fact]] = []
    for valuation in iterate_valuations(query, index):
        image = frozenset(valuation.ground(atom) for atom in query.atoms)
        if image not in seen:
            seen.add(image)
            out.append(image)
    return out


def answer_tuples(
    query: ConjunctiveQuery,
    facts: Iterable[Fact],
) -> Set[Tuple[Constant, ...]]:
    """Evaluate a non-Boolean query: the set of free-variable tuples satisfied."""
    if query.is_boolean:
        raise ValueError("answer_tuples expects a query with free variables")
    index = facts if isinstance(facts, FactIndex) else FactIndex(facts)
    answers: Set[Tuple[Constant, ...]] = set()
    for valuation in iterate_valuations(query, index):
        answers.add(tuple(valuation[v] for v in query.free_variables))
    return answers
