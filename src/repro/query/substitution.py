"""Substitution of variables by constants in atoms and queries.

Definition 7 of the paper: ``q[x⃗ ↦ a⃗]`` denotes the query obtained from
``q`` by replacing every occurrence of the variable ``xi`` with the constant
``ai``.  Substitution is used pervasively: by the FO-rewriting solver, by the
Theorem 3 recursion, and by the ``IsSafe`` procedure.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from ..model.atoms import Atom
from ..model.symbols import Constant, Term, Variable, make_constant
from .conjunctive import ConjunctiveQuery

#: A substitution maps variables to constants.
Substitution = Mapping[Variable, Constant]


def make_substitution(
    variables: Sequence[Variable],
    values: Sequence,
) -> Dict[Variable, Constant]:
    """Pair up ``x⃗`` and ``a⃗`` into a substitution dictionary."""
    if len(variables) != len(values):
        raise ValueError(
            f"variable/value length mismatch: {len(variables)} vs {len(values)}"
        )
    if len(set(variables)) != len(variables):
        raise ValueError("substituted variables must be distinct")
    return {var: make_constant(val) for var, val in zip(variables, values)}


def substitute_term(term: Term, substitution: Substitution) -> Term:
    """Apply a substitution to a term."""
    if isinstance(term, Variable):
        return substitution.get(term, term)
    return term


def substitute_atom(atom: Atom, substitution: Substitution) -> Atom:
    """Apply a substitution to every term of an atom.

    The result is a :class:`~repro.model.atoms.Fact` when no variable remains.
    """
    terms = tuple(substitute_term(t, substitution) for t in atom.terms)
    image = Atom(atom.relation, terms)
    if not image.variables:
        return image.to_fact()
    return image


def substitute_query(
    query: ConjunctiveQuery,
    substitution: Substitution,
) -> ConjunctiveQuery:
    """``q[x⃗ ↦ a⃗]``: apply a substitution to every atom of the query.

    Free variables that get substituted disappear from the free-variable list.
    """
    atoms = [substitute_atom(atom, substitution) for atom in query.atoms]
    free = tuple(v for v in query.free_variables if v not in substitution)
    return ConjunctiveQuery(atoms, free)


def ground_free_variables(
    query: ConjunctiveQuery,
    values: Sequence,
) -> ConjunctiveQuery:
    """Ground the free variables of a non-Boolean query with *values*."""
    substitution = make_substitution(list(query.free_variables), list(values))
    return substitute_query(query, substitution).as_boolean()


def rename_variables(
    query: ConjunctiveQuery,
    renaming: Mapping[Variable, Variable],
) -> ConjunctiveQuery:
    """Rename variables (a bijective renaming is the caller's responsibility)."""
    atoms = []
    for atom in query.atoms:
        terms = tuple(
            renaming.get(t, t) if isinstance(t, Variable) else t for t in atom.terms
        )
        atoms.append(Atom(atom.relation, terms))
    free = tuple(renaming.get(v, v) for v in query.free_variables)
    return ConjunctiveQuery(atoms, free)
