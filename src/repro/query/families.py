"""Canonical query families used throughout the paper.

This module constructs, programmatically, every named query of the paper:

* ``q0 = {R0(x | y), S0(y, z | x)}`` — the two-atom query whose CERTAINTY
  problem is coNP-complete (Kolaitis–Pema), used as the source of the
  Theorem 2 reduction.
* ``q1 = {R(u, a | x), S(y | x, z), T(x | y), P(x | z)}`` — the running
  example of Figure 2 / Examples 2–4 (strong cycle ⇒ coNP-complete).
* The seven-atom query of Figure 4 / Example 5 (all cycles weak and
  terminal ⇒ in P, not FO).
* ``C(k)`` and ``AC(k)`` of Definition 8 (weak nonterminal cycles; in P by
  Theorem 4 / Corollary 1).

plus a few parametric families (paths, stars) that are convenient for
testing and for the query corpora of the experiments.
"""

from __future__ import annotations

from typing import List, Sequence

from ..model.atoms import RelationSchema
from ..model.symbols import Constant, Variable
from .conjunctive import ConjunctiveQuery


def kolaitis_pema_q0() -> ConjunctiveQuery:
    """``q0 = {R0(x | y), S0(y, z | x)}`` with signatures [2,1] and [3,2].

    CERTAINTY(q0) is coNP-complete (Kolaitis and Pema 2012); Theorem 2
    reduces it to CERTAINTY(q) for every q with a strong attack cycle.
    """
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    r0 = RelationSchema("R0", 2, 1)
    s0 = RelationSchema("S0", 3, 2)
    return ConjunctiveQuery([r0.atom(x, y), s0.atom(y, z, x)])


def figure2_q1() -> ConjunctiveQuery:
    """The query ``q1`` of Figure 2: ``{R(u,a|x), S(y|x,z), T(x|y), P(x|z)}``.

    ``a`` is a constant.  Its attack graph (Fig. 2 right) has the strong
    attack ``G → F`` and strong cycles, so CERTAINTY(q1) is coNP-complete.
    """
    u, x, y, z = Variable("u"), Variable("x"), Variable("y"), Variable("z")
    a = Constant("a")
    r = RelationSchema("R", 3, 1)
    s = RelationSchema("S", 3, 1)
    t = RelationSchema("T", 2, 1)
    p = RelationSchema("P", 2, 1)
    return ConjunctiveQuery(
        [
            r.atom(u, a, x),     # F = R(u, a, x), key {u}
            s.atom(y, x, z),     # G = S(y, x, z), key {y}
            t.atom(x, y),        # H = T(x, y),    key {x}
            p.atom(x, z),        # I = P(x, z),    key {x}
        ]
    )


def figure4_query(include_r0: bool = True) -> ConjunctiveQuery:
    """The query of Figure 4 / Example 5 (all attack cycles weak and terminal).

    The query consists of three weak terminal attack 2-cycles
    ``R1 ⇄ R2``, ``R3 ⇄ R4`` and ``R5 ⇄ R6`` plus (optionally) an unattacked
    atom ``R0`` that attacks into the cycles, which is what the Theorem 3
    recursion peels first.  The variable ``x`` is shared between the first two
    cycles and ``y`` between the last two, so the block-partitioning step of
    Theorem 3 is exercised.

    Note on key positions: the plain-text source of the paper loses the
    key underlining of Figure 4.  The keys used here —
    ``R0(u|z), R1(x,u1,z|u2), R2(x,u2,z|u1), R3(x,y,u3|u4), R4(x,y,u4|u3),
    R5(y,u5|u6), R6(y,u6|u5)`` — are the (unique up to symmetry) choice that
    satisfies every constraint the paper states about this example: the three
    2-cycles exist, they are weak, they are terminal even in the presence of
    ``R0``, ``R0`` is unattacked, and ``⟨x, y⟩`` is exactly the sequence of
    variables of the ``R3``/``R4`` cycle that occur in other cycles (as used
    in the proof of Theorem 3).
    """
    x, y, z, u = Variable("x"), Variable("y"), Variable("z"), Variable("u")
    u1, u2, u3 = Variable("u1"), Variable("u2"), Variable("u3")
    u4, u5, u6 = Variable("u4"), Variable("u5"), Variable("u6")
    r0 = RelationSchema("R0", 2, 1)
    r1 = RelationSchema("R1", 4, 3)
    r2 = RelationSchema("R2", 4, 3)
    r3 = RelationSchema("R3", 4, 3)
    r4 = RelationSchema("R4", 4, 3)
    r5 = RelationSchema("R5", 3, 2)
    r6 = RelationSchema("R6", 3, 2)
    atoms = [
        r1.atom(x, u1, z, u2),
        r2.atom(x, u2, z, u1),
        r3.atom(x, y, u3, u4),
        r4.atom(x, y, u4, u3),
        r5.atom(y, u5, u6),
        r6.atom(y, u6, u5),
    ]
    if include_r0:
        atoms.insert(0, r0.atom(u, z))
    return ConjunctiveQuery(atoms)


def cycle_query_c(k: int) -> ConjunctiveQuery:
    """``C(k) = {R1(x1|x2), ..., Rk(xk|x1)}`` (Definition 8).

    Acyclic for ``k = 2``, cyclic for ``k >= 3``.  CERTAINTY(C(k)) is in P
    for every ``k >= 2`` (Corollary 1).
    """
    if k < 2:
        raise ValueError("C(k) is defined for k >= 2")
    variables = [Variable(f"x{i}") for i in range(1, k + 1)]
    atoms = []
    for i in range(1, k + 1):
        relation = RelationSchema(f"R{i}", 2, 1)
        source = variables[i - 1]
        target = variables[i % k]
        atoms.append(relation.atom(source, target))
    return ConjunctiveQuery(atoms)


def cycle_query_ac(k: int) -> ConjunctiveQuery:
    """``AC(k) = C(k) ∪ {Sk(x1, ..., xk)}`` with ``Sk`` all-key (Definition 8).

    Acyclic for every ``k`` (the ``Sk`` atom contains all variables); the
    attack graph has ``k(k-1)/2`` weak nonterminal cycles and no strong
    cycle.  CERTAINTY(AC(k)) is in P by Theorem 4.
    """
    if k < 2:
        raise ValueError("AC(k) is defined for k >= 2")
    base = cycle_query_c(k)
    variables = [Variable(f"x{i}") for i in range(1, k + 1)]
    sk = RelationSchema(f"S{k}", k, k)
    return ConjunctiveQuery(list(base.atoms) + [sk.atom(*variables)])


def path_query(length: int, key_size: int = 1) -> ConjunctiveQuery:
    """A path query ``{P1(x1|x2), P2(x2|x3), ..., Pn(xn|x_{n+1})}``.

    With ``key_size=1`` the attack graph is acyclic (FO-expressible); useful
    as an easy family for tests and corpora.
    """
    if length < 1:
        raise ValueError("path length must be >= 1")
    atoms = []
    for i in range(1, length + 1):
        relation = RelationSchema(f"P{i}", 2, key_size)
        atoms.append(relation.atom(Variable(f"x{i}"), Variable(f"x{i + 1}")))
    return ConjunctiveQuery(atoms)


def star_query(branches: int) -> ConjunctiveQuery:
    """A star query ``{S1(c|x1), ..., Sn(c|xn)}`` sharing the centre variable."""
    if branches < 1:
        raise ValueError("star must have at least one branch")
    centre = Variable("c")
    atoms = []
    for i in range(1, branches + 1):
        relation = RelationSchema(f"S{i}", 2, 1)
        atoms.append(relation.atom(centre, Variable(f"x{i}")))
    return ConjunctiveQuery(atoms)


def two_atom_query(
    left_key: Sequence[str],
    left_rest: Sequence[str],
    right_key: Sequence[str],
    right_rest: Sequence[str],
    left_name: str = "R",
    right_name: str = "S",
) -> ConjunctiveQuery:
    """Build an arbitrary two-atom query from variable-name sequences.

    Example: ``two_atom_query(["x"], ["y"], ["y"], ["x"])`` is ``C(2)`` up to
    relation naming.
    """
    left_terms = [Variable(n) for n in list(left_key) + list(left_rest)]
    right_terms = [Variable(n) for n in list(right_key) + list(right_rest)]
    left_rel = RelationSchema(left_name, len(left_terms), len(left_key))
    right_rel = RelationSchema(right_name, len(right_terms), len(right_key))
    return ConjunctiveQuery([left_rel.atom(*left_terms), right_rel.atom(*right_terms)])


class CycleQueryShape:
    """Structural description of a query of the ``C(k)``/``AC(k)`` shape.

    Attributes
    ----------
    k:
        The number of ring atoms.
    ring_atoms:
        The binary atoms ordered along the variable cycle
        ``x1 → x2 → ... → xk → x1`` (starting at the lexicographically
        smallest variable, for determinism).
    variables:
        The cycle variables in the same order.
    sk_atom:
        The all-key atom over all cycle variables, or ``None`` for ``C(k)``.
    """

    def __init__(self, ring_atoms, variables, sk_atom=None) -> None:
        self.ring_atoms = list(ring_atoms)
        self.variables = list(variables)
        self.sk_atom = sk_atom
        self.k = len(self.ring_atoms)

    @property
    def has_sk_atom(self) -> bool:
        """``True`` for ``AC(k)``, ``False`` for ``C(k)``."""
        return self.sk_atom is not None

    def __repr__(self) -> str:
        kind = "AC" if self.has_sk_atom else "C"
        return f"CycleQueryShape({kind}({self.k}))"


def cycle_query_shape(query: ConjunctiveQuery):
    """Detect the ``C(k)``/``AC(k)`` shape of Definition 8, up to renaming.

    Returns a :class:`CycleQueryShape` if the query consists of ``k >= 2``
    atoms over distinct binary relations of signature ``[2,1]`` whose
    variables form a single directed cycle over ``k`` distinct variables,
    optionally plus one all-key atom of arity ``k`` listing the cycle
    variables in cyclic order.  Returns ``None`` otherwise.
    """
    if query.has_self_join:
        return None
    ring = [a for a in query.atoms if a.relation.arity == 2 and a.relation.key_size == 1]
    others = [a for a in query.atoms if a not in ring]
    k = len(ring)
    if k < 2 or len(others) > 1:
        return None
    successor = {}
    atom_of = {}
    for atom in ring:
        source, target = atom.terms
        if not (isinstance(source, Variable) and isinstance(target, Variable)) or source == target:
            return None
        if source in successor:
            return None
        successor[source] = target
        atom_of[source] = atom
    if len(successor) != k:
        return None
    start = min(successor, key=lambda v: v.name)
    ordered_vars = [start]
    current = start
    for _ in range(k):
        current = successor.get(current)
        if current is None:
            return None
        if current == start:
            break
        ordered_vars.append(current)
    if current != start or len(ordered_vars) != k:
        return None
    ordered_atoms = [atom_of[v] for v in ordered_vars]
    if not others:
        return CycleQueryShape(ordered_atoms, ordered_vars, None)
    sk = others[0]
    if not sk.relation.is_all_key or sk.relation.arity != k:
        return None
    terms = sk.terms
    if any(not isinstance(t, Variable) for t in terms) or set(terms) != set(ordered_vars):
        return None
    rotations = [tuple(ordered_vars[i:] + ordered_vars[:i]) for i in range(k)]
    if tuple(terms) not in rotations:
        return None
    return CycleQueryShape(ordered_atoms, ordered_vars, sk)


def fuxman_miller_cfree_example() -> ConjunctiveQuery:
    """A simple query in the Fuxman–Miller tractable class: ``{R(x|y), S(y|z)}``.

    The attack graph is acyclic, so CERTAINTY is FO-expressible.
    """
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    r = RelationSchema("R", 2, 1)
    s = RelationSchema("S", 2, 1)
    return ConjunctiveQuery([r.atom(x, y), s.atom(y, z)])


def all_named_queries() -> List[ConjunctiveQuery]:
    """The named queries of the paper, for corpus-style experiments."""
    return [
        kolaitis_pema_q0(),
        figure2_q1(),
        figure4_query(),
        cycle_query_c(2),
        cycle_query_ac(2),
        cycle_query_ac(3),
        cycle_query_ac(4),
        fuxman_miller_cfree_example(),
    ]
