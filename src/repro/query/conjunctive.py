"""Boolean conjunctive queries.

A Boolean conjunctive query is a finite set of atoms
``q = {R1(x⃗1|y⃗1), ..., Rn(x⃗n|y⃗n)}`` representing the sentence
``∃u1 ... ∃uk (R1(...) ∧ ... ∧ Rn(...))`` where ``u1..uk`` are the variables
of ``q``.  The query *has a self-join* when some relation name occurs in two
distinct atoms; the paper (and this library's classifier) is about
self-join-free queries.

The class also supports an optional tuple of *free variables* so that
non-Boolean certain answers can be reduced to Boolean certainty by grounding
(the paper notes the restriction to Boolean queries "is not fundamental").
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Tuple

from ..fd.functional_deps import FDSet, FunctionalDependency
from ..model.atoms import Atom
from ..model.schema import DatabaseSchema
from ..model.symbols import Constant, Variable


class ConjunctiveQuery:
    """A conjunctive query given by its atoms (with set semantics).

    Atoms are kept in a deterministic order (insertion order with duplicates
    removed) so that iteration, printing and algorithms behave reproducibly,
    but equality and hashing treat the query as a *set* of atoms, exactly as
    in the paper.
    """

    def __init__(
        self,
        atoms: Iterable[Atom],
        free_variables: Sequence[Variable] = (),
    ) -> None:
        ordered: List[Atom] = []
        seen = set()
        for atom in atoms:
            if not isinstance(atom, Atom):
                raise TypeError(f"expected Atom, got {atom!r}")
            if atom not in seen:
                seen.add(atom)
                ordered.append(atom)
        self._atoms: Tuple[Atom, ...] = tuple(ordered)
        self._free: Tuple[Variable, ...] = tuple(free_variables)
        all_vars = self.variables
        for var in self._free:
            if var not in all_vars:
                raise ValueError(f"free variable {var} does not occur in the query")

    # -- container protocol -------------------------------------------------------

    @property
    def atoms(self) -> Tuple[Atom, ...]:
        """The atoms of the query, in deterministic order."""
        return self._atoms

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._atoms)

    def __len__(self) -> int:
        return len(self._atoms)

    def __contains__(self, atom: object) -> bool:
        return atom in self._atoms

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConjunctiveQuery)
            and frozenset(self._atoms) == frozenset(other._atoms)
            and self._free == other._free
        )

    def __hash__(self) -> int:
        return hash((frozenset(self._atoms), self._free))

    def __repr__(self) -> str:
        return f"ConjunctiveQuery({self})"

    def __str__(self) -> str:
        body = ", ".join(str(a) for a in self._atoms)
        if self._free:
            head = ", ".join(v.name for v in self._free)
            return f"({head}) :- {body}"
        return "{" + body + "}"

    # -- structural properties ------------------------------------------------------

    @property
    def free_variables(self) -> Tuple[Variable, ...]:
        """The free (answer) variables; empty for Boolean queries."""
        return self._free

    @property
    def is_boolean(self) -> bool:
        """``True`` iff the query has no free variables."""
        return not self._free

    @property
    def variables(self) -> FrozenSet[Variable]:
        """``vars(q)``: all variables occurring in the query."""
        out: set = set()
        for atom in self._atoms:
            out |= atom.variables
        return frozenset(out)

    @property
    def bound_variables(self) -> FrozenSet[Variable]:
        """The existentially quantified variables."""
        return self.variables - frozenset(self._free)

    @property
    def constants(self) -> FrozenSet[Constant]:
        """All constants occurring in the query."""
        out: set = set()
        for atom in self._atoms:
            out |= atom.constants
        return frozenset(out)

    @property
    def relation_names(self) -> Tuple[str, ...]:
        """The relation names of the atoms, in order (with repetitions)."""
        return tuple(a.name for a in self._atoms)

    @property
    def has_self_join(self) -> bool:
        """``True`` iff some relation name occurs in two distinct atoms."""
        names = self.relation_names
        return len(names) != len(set(names))

    @property
    def is_empty(self) -> bool:
        """``True`` iff the query has no atoms (the query ``true``)."""
        return not self._atoms

    def schema(self) -> DatabaseSchema:
        """The database schema induced by the query's atoms."""
        return DatabaseSchema.from_atoms(self._atoms)

    def atom_with_relation(self, name: str) -> Atom:
        """The (unique, for self-join-free queries) atom over relation *name*."""
        matches = [a for a in self._atoms if a.name == name]
        if not matches:
            raise KeyError(f"no atom over relation {name!r}")
        if len(matches) > 1:
            raise ValueError(f"relation {name!r} occurs in several atoms (self-join)")
        return matches[0]

    # -- functional dependencies ------------------------------------------------------

    def key_fds(self, exclude: Iterable[Atom] = ()) -> FDSet:
        """``K(q \\ exclude)``: the FDs ``key(F) → vars(F)`` of the retained atoms."""
        skip = set(exclude)
        return FDSet(
            FunctionalDependency(atom.key_variables, atom.variables)
            for atom in self._atoms
            if atom not in skip
        )

    # -- derived queries --------------------------------------------------------------

    def without(self, *atoms: Atom) -> "ConjunctiveQuery":
        """``q \\ {atoms}``: the query with the given atoms removed."""
        drop = set(atoms)
        remaining = [a for a in self._atoms if a not in drop]
        free = tuple(v for v in self._free if any(v in a.variables for a in remaining))
        return ConjunctiveQuery(remaining, free)

    def restricted_to(self, atoms: Iterable[Atom]) -> "ConjunctiveQuery":
        """The sub-query containing exactly the given atoms (which must belong to q)."""
        keep = list(atoms)
        for atom in keep:
            if atom not in self._atoms:
                raise ValueError(f"atom {atom} does not belong to the query")
        free = tuple(v for v in self._free if any(v in a.variables for a in keep))
        return ConjunctiveQuery(keep, free)

    def with_atoms(self, *atoms: Atom) -> "ConjunctiveQuery":
        """The query with extra atoms added."""
        return ConjunctiveQuery(list(self._atoms) + list(atoms), self._free)

    def as_boolean(self) -> "ConjunctiveQuery":
        """The Boolean version of the query (all variables quantified)."""
        return ConjunctiveQuery(self._atoms)

    def atom_variable_map(self) -> Dict[Atom, FrozenSet[Variable]]:
        """Map each atom to its variable set (convenience for graph algorithms)."""
        return {atom: atom.variables for atom in self._atoms}


def query(*atoms: Atom, free: Sequence[Variable] = ()) -> ConjunctiveQuery:
    """Convenience constructor: ``query(R.atom(x, y), S.atom(y, z))``."""
    return ConjunctiveQuery(atoms, free)
