"""Deterministic fault injection: seeded plans, named sites, cheap hooks.

The robustness contract of this codebase is differential: every certain
answer served under failure must equal a fault-free sequential recompute.
Exercising that contract needs failures that are **deterministic and
replayable** — a flaky chaos test is worse than none — so faults here are
scheduled, never random at fire time:

* a :class:`FaultSpec` names one failure: a *site* (a dotted string naming
  a hook point compiled into the production code), a *kind* (what the site
  should do when the fault fires), and an arrival window (*at*, *count*)
  counted in per-site invocations;
* a :class:`FaultPlan` is an immutable schedule of specs.
  :meth:`FaultPlan.random` derives one deterministically from a seed, so a
  chaos harness can sweep seeds and every failing schedule reproduces from
  its seed alone;
* a :class:`FaultInjector` holds the plan plus thread-safe per-site
  arrival counters and a ``fired`` log, installed process-wide with
  :func:`install` / :func:`inject`.

Hook points call :func:`fire` — one module-global read and an ``is None``
test when no injector is installed, so production hot paths pay nothing.
Sites and the kinds they honour:

===========================  ==========================================
``shard.worker.command``     ``kill`` (``os._exit`` before handling a
                             command), ``stall`` (sleep *delay* seconds —
                             exercises dispatch deadlines)
``shard.worker.delta``       ``kill`` *between* the intern-suffix extend
                             and the row application of a delta flush —
                             the watermark-consistency crash window
``shard.pipe``               ``drop`` (the parent closes the worker pipe
                             before sending)
``parallel.dispatch``        ``error`` (the process-pool dispatch raises
                             ``BrokenExecutor``)
``wal.write``                ``torn`` (only a prefix of the frame lands,
                             then the append raises ``OSError``)
``wal.fsync``                ``error`` (``fsync`` raises ``OSError``)
``segment.fsync``            ``error`` (tmp-file fsync raises)
``segment.rename``           ``error`` (the checkpoint dies between the
                             tmp write and the atomic rename)
``service.queued``           ``error`` / ``stall`` for queued-band
                             admission work (feeds the circuit breaker)
===========================  ==========================================

Shard-worker sites run in *worker processes*: the parent ships the
matching specs at spawn time (:func:`worker_fault_specs`) and each worker
installs its own injector, so arrival counters are per process — still
deterministic, because worker command streams are.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from typing import Iterator, List, NamedTuple, Optional, Sequence, Tuple


class InjectedFault(OSError):
    """The error raised by ``error``/``torn`` faults.

    An ``OSError`` subclass on purpose: the production hardening paths
    (WAL re-open on fsync failure, checkpoint tmp sweeps, worker-failure
    containment) must treat an injected failure exactly like a real one,
    so injection raises through the same ``except OSError`` clauses.
    """


class FaultSpec(NamedTuple):
    """One scheduled failure at one hook site.

    ``site``/``kind`` name the hook point and its behaviour (see the
    module docstring); the fault fires on arrivals ``at .. at+count-1``
    at that site (1-based; ``count=0`` means every arrival from *at* on).
    ``delay`` parameterises ``stall`` kinds; ``shard`` restricts
    shard-runtime sites to one worker (``None`` matches all).
    """

    site: str
    kind: str
    at: int = 1
    count: int = 1
    delay: float = 0.0
    shard: Optional[int] = None

    def matches(self, arrival: int, shard: Optional[int]) -> bool:
        if self.shard is not None and self.shard != shard:
            return False
        if arrival < self.at:
            return False
        return self.count == 0 or arrival < self.at + self.count


#: The site catalogue :meth:`FaultPlan.random` draws from.
SITE_KINDS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("shard.worker.command", ("kill", "stall")),
    ("shard.worker.delta", ("kill",)),
    ("shard.pipe", ("drop",)),
    ("wal.write", ("torn",)),
    ("wal.fsync", ("error",)),
    ("segment.fsync", ("error",)),
    ("segment.rename", ("error",)),
    ("service.queued", ("error",)),
)


class FaultPlan:
    """An immutable, seed-reproducible schedule of :class:`FaultSpec` s."""

    __slots__ = ("specs", "seed")

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: Optional[int] = None) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = seed

    @classmethod
    def random(
        cls,
        seed: int,
        sites: Optional[Sequence[str]] = None,
        events: int = 3,
        horizon: int = 8,
        n_shards: Optional[int] = None,
    ) -> "FaultPlan":
        """A deterministic schedule derived from *seed* alone.

        Draws *events* specs over the first *horizon* arrivals of the
        chosen *sites* (default: the full catalogue).  When *n_shards* is
        given, shard-runtime faults pin a concrete shard, so a schedule
        names exactly which worker dies and when.
        """
        rng = random.Random(seed)
        catalogue = [
            (site, kinds)
            for site, kinds in SITE_KINDS
            if sites is None or site in sites
        ]
        if not catalogue:
            raise ValueError(f"no known fault sites among {sites!r}")
        specs: List[FaultSpec] = []
        for _ in range(events):
            site, kinds = catalogue[rng.randrange(len(catalogue))]
            kind = kinds[rng.randrange(len(kinds))]
            shard = None
            if n_shards is not None and site.startswith("shard."):
                shard = rng.randrange(n_shards)
            specs.append(
                FaultSpec(
                    site=site,
                    kind=kind,
                    at=rng.randrange(1, horizon + 1),
                    count=1,
                    delay=0.05 if kind == "stall" else 0.0,
                    shard=shard,
                )
            )
        return cls(specs, seed=seed)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __repr__(self) -> str:
        return f"FaultPlan({len(self.specs)} specs, seed={self.seed})"


class FaultInjector:
    """Thread-safe arrival counting and firing for one :class:`FaultPlan`."""

    __slots__ = ("plan", "fired", "_arrivals", "_lock")

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        #: Every fault that actually fired: ``(site, kind, arrival)``.
        self.fired: List[Tuple[str, str, int]] = []
        self._arrivals: dict = {}
        self._lock = threading.Lock()

    def fire(self, site: str, shard: Optional[int] = None) -> Optional[FaultSpec]:
        with self._lock:
            arrival = self._arrivals.get(site, 0) + 1
            self._arrivals[site] = arrival
            for spec in self.plan.specs:
                if spec.site == site and spec.matches(arrival, shard):
                    self.fired.append((site, spec.kind, arrival))
                    return spec
        return None

    def arrivals(self, site: str) -> int:
        """How many times *site* has been reached under this injector."""
        with self._lock:
            return self._arrivals.get(site, 0)

    def __repr__(self) -> str:
        return f"FaultInjector({self.plan!r}, fired={len(self.fired)})"


_INJECTOR: Optional[FaultInjector] = None


def install(plan: FaultPlan) -> FaultInjector:
    """Install *plan* process-wide; returns its injector (replaces any prior)."""
    global _INJECTOR
    injector = FaultInjector(plan)
    _INJECTOR = injector
    return injector


def clear() -> None:
    """Remove the installed injector (hook points go back to no-ops)."""
    global _INJECTOR
    _INJECTOR = None


def active_injector() -> Optional[FaultInjector]:
    """The currently installed injector, or ``None``."""
    return _INJECTOR


def fire(site: str, shard: Optional[int] = None) -> Optional[FaultSpec]:
    """Consult the installed injector at a hook site (``None`` = no fault).

    This is the call compiled into production code paths; with no
    injector installed it costs one global read.
    """
    injector = _INJECTOR
    if injector is None:
        return None
    return injector.fire(site, shard)


@contextmanager
def inject(plan: FaultPlan):
    """Install *plan* for the duration of a ``with`` block.

    Restores whatever injector (usually none) was active before, so
    chaos tests can nest setup without leaking schedules into later
    tests.
    """
    global _INJECTOR
    previous = _INJECTOR
    injector = FaultInjector(plan)
    _INJECTOR = injector
    try:
        yield injector
    finally:
        _INJECTOR = previous


def worker_fault_specs(n_shards: Optional[int] = None) -> Tuple[FaultSpec, ...]:
    """The active plan's shard-worker-process specs (shipped at spawn time).

    Worker processes cannot see the parent's injector (forkserver start
    method), so the shard runtime passes these through the process
    arguments and each worker installs a local injector over them.
    """
    injector = _INJECTOR
    if injector is None:
        return ()
    return tuple(
        spec
        for spec in injector.plan.specs
        if spec.site.startswith("shard.worker")
    )


__all__ = [
    "SITE_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active_injector",
    "clear",
    "fire",
    "inject",
    "install",
    "worker_fault_specs",
]
