"""Deterministic fault injection for the certainty-serving stack.

See :mod:`repro.faults.plan` for the site catalogue and semantics.  The
one-line summary: seeded :class:`FaultPlan` schedules (worker kills,
dispatch stalls, pipe drops, torn WAL writes, fsync failures, checkpoint
interruptions) fire at named hook points threaded through the shard
runtime, the parallel engine, the durability tier, and the service — and
the containment machinery they exercise must keep every served certain
answer identical to a fault-free sequential recompute.
"""

from .plan import (
    SITE_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_injector,
    clear,
    fire,
    inject,
    install,
    worker_fault_specs,
)

__all__ = [
    "SITE_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active_injector",
    "clear",
    "fire",
    "inject",
    "install",
    "worker_fault_specs",
]
