"""Repair counting (#CERTAINTY) and the uniform-repair probability."""

from .count_repairs import (
    certainty_from_counts,
    count_falsifying_repairs,
    count_satisfying_repairs,
    counting_summary,
    repair_frequency,
)

__all__ = [
    "certainty_from_counts",
    "count_falsifying_repairs",
    "count_satisfying_repairs",
    "counting_summary",
    "repair_frequency",
]
