"""Repair counting: the \\#CERTAINTY(q) problem (related work, Theorem 7).

``#CERTAINTY(q)`` asks how many repairs of an uncertain database satisfy the
query.  Maslowski and Wijsen showed an FP / #P-complete dichotomy for it;
this module provides the straightforward enumeration-based counter (the
query-independent exponential algorithm), the derived relative frequency,
and the consistency links with CERTAINTY and PROBABILITY that the
experiments check:

* ``db ∈ CERTAINTY(q)``  ⇔  every repair satisfies ``q``
  ⇔  ``count = #repairs``;
* under the uniform-repair BID database, ``Pr(q)`` equals the relative
  frequency of satisfying repairs.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Tuple

from ..model.database import UncertainDatabase
from ..model.repairs import count_repairs, enumerate_repairs
from ..query.conjunctive import ConjunctiveQuery
from ..query.evaluation import witnesses


def count_satisfying_repairs(db: UncertainDatabase, query: ConjunctiveQuery) -> int:
    """The number of repairs of *db* that satisfy *query* (exponential)."""
    boolean = query.as_boolean() if not query.is_boolean else query
    if boolean.is_empty:
        return count_repairs(db)
    witness_sets = witnesses(boolean, db.facts)
    if not witness_sets:
        return 0
    count = 0
    for repair in enumerate_repairs(db):
        if any(witness.issubset(repair) for witness in witness_sets):
            count += 1
    return count


def count_falsifying_repairs(db: UncertainDatabase, query: ConjunctiveQuery) -> int:
    """The number of repairs that falsify the query."""
    return count_repairs(db) - count_satisfying_repairs(db, query)


def repair_frequency(db: UncertainDatabase, query: ConjunctiveQuery) -> Fraction:
    """The fraction of repairs satisfying the query (the uniform-repair probability)."""
    total = count_repairs(db)
    if total == 0:
        return Fraction(0)
    return Fraction(count_satisfying_repairs(db, query), total)


def certainty_from_counts(db: UncertainDatabase, query: ConjunctiveQuery) -> bool:
    """``db ∈ CERTAINTY(q)`` decided through repair counting."""
    return count_satisfying_repairs(db, query) == count_repairs(db)


def counting_summary(db: UncertainDatabase, query: ConjunctiveQuery) -> Tuple[int, int, Fraction]:
    """``(satisfying, total, frequency)`` in one pass."""
    satisfying = count_satisfying_repairs(db, query)
    total = count_repairs(db)
    frequency = Fraction(satisfying, total) if total else Fraction(0)
    return satisfying, total, frequency
