"""Band-aware admission control: the trichotomy as a scheduling policy.

The paper's classifier places ``CERTAINTY(q)`` on the tractability frontier
*before* any data is touched — a property of the query shape alone.  The
admission controller turns that into the serving policy of the multi-tenant
service:

* **FO band** — the request is interactive: a certain first-order rewriting
  exists and executes as one compiled set-at-a-time plan, so the request
  runs inline on the submitting thread (the *hot path*) and the caller gets
  the answer synchronously;
* **every other band** (PTIME-not-FO, the Theorem 4 cycle queries, and the
  coNP-complete band's brute-force search) — the request is dispatched onto
  a bounded background worker pool and the caller gets an
  :class:`AdmissionTicket` whose future supports ``result(timeout)`` and
  ``cancel()``.  Each tenant has a queue-depth cap; a submission past the
  cap raises :class:`AdmissionRejected` (counted per tenant), which is the
  back-pressure signal — a tenant hammering coNP queries cannot starve the
  pool for everyone else.

Classification happens once per query *shape* process-wide (the plan cache
and ``classify_cached`` both memoise), so admission adds one dict probe to
the hot path.
"""

from __future__ import annotations

import threading
from concurrent.futures import CancelledError, Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Callable, Dict, FrozenSet, Optional, Tuple

from ..core.complexity import ComplexityBand
from ..model.symbols import Constant
from ..query.conjunctive import ConjunctiveQuery

#: Admission outcomes recorded on tickets.
INLINE = "inline"
QUEUED = "queued"

#: An answer set: frozenset of constant tuples ({()} / set() for Boolean).
AnswerSet = FrozenSet[Tuple[Constant, ...]]


class AdmissionRejected(RuntimeError):
    """A queued-band submission found the tenant's queue at capacity."""

    def __init__(self, tenant_id: str, depth: int, cap: int) -> None:
        super().__init__(
            f"tenant {tenant_id!r} has {depth} queued requests "
            f"(cap {cap}); retry after pending work drains"
        )
        self.tenant_id = tenant_id
        self.depth = depth
        self.cap = cap


class AdmissionStats:
    """Per-tenant admission counters.

    ``inline_served``
        FO-band requests answered synchronously on the hot path;
    ``queued`` / ``completed`` / ``cancelled``
        harder-band requests dispatched to the worker pool, and how many
        of those finished or were cancelled before starting;
    ``rejected``
        submissions refused at the tenant's queue-depth cap;
    ``timeouts``
        ``result(timeout)`` calls that expired before completion (the
        request keeps running; a later ``result()`` can still collect it);
    ``max_queue_depth``
        high-water mark of this tenant's concurrently queued requests.
    """

    __slots__ = (
        "inline_served",
        "queued",
        "completed",
        "cancelled",
        "rejected",
        "timeouts",
        "max_queue_depth",
    )

    def __init__(self) -> None:
        self.inline_served = 0
        self.queued = 0
        self.completed = 0
        self.cancelled = 0
        self.rejected = 0
        self.timeouts = 0
        self.max_queue_depth = 0

    def as_dict(self) -> dict:
        """A plain-dict rendering (for service stats aggregation)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        return (
            f"AdmissionStats(inline={self.inline_served}, queued={self.queued}, "
            f"completed={self.completed}, rejected={self.rejected})"
        )


class AdmissionTicket:
    """The handle for one admitted request.

    ``outcome`` is :data:`INLINE` (FO band; the answer is already computed)
    or :data:`QUEUED` (a harder band; the answer is a pending future).
    Either way :meth:`result` returns the answer set — a frozenset of
    constant tuples, ``{()}``/``set()`` encoding certain/not-certain for
    Boolean queries — so callers need not branch on the outcome.
    """

    __slots__ = ("tenant_id", "query", "band", "outcome", "_value", "_future", "_stats")

    def __init__(
        self,
        tenant_id: str,
        query: ConjunctiveQuery,
        band: ComplexityBand,
        outcome: str,
        value: Optional[AnswerSet] = None,
        future: Optional["Future[AnswerSet]"] = None,
        stats: Optional[AdmissionStats] = None,
    ) -> None:
        self.tenant_id = tenant_id
        self.query = query
        self.band = band
        self.outcome = outcome
        self._value = value
        self._future = future
        self._stats = stats

    @property
    def done(self) -> bool:
        """``True`` once the answer is available (always, for inline)."""
        return self._future is None or self._future.done()

    def result(self, timeout: Optional[float] = None) -> AnswerSet:
        """The answer set, waiting up to *timeout* seconds for queued work.

        Raises :class:`concurrent.futures.TimeoutError` when the deadline
        expires (counted in the tenant's stats; the computation keeps
        running and a later call can still collect it) and
        :class:`concurrent.futures.CancelledError` after :meth:`cancel`.
        """
        if self._future is None:
            assert self._value is not None
            return self._value
        try:
            return self._future.result(timeout)
        except FutureTimeoutError:
            if self._stats is not None:
                self._stats.timeouts += 1
            raise

    def cancel(self) -> bool:
        """Cancel a queued request that has not started running.

        Returns ``True`` on success (the future will never run; the queue
        slot is released immediately).  Inline and already-running requests
        return ``False``.
        """
        if self._future is None:
            return False
        return self._future.cancel()

    def __repr__(self) -> str:
        return (
            f"AdmissionTicket({self.tenant_id!r}, {self.band.name}, "
            f"{self.outcome}, done={self.done})"
        )


class AdmissionController:
    """Routes requests by complexity band; bounds background work per tenant.

    One controller (and one worker pool) serves every tenant of a
    :class:`~repro.service.service.CertaintyService`.  Thread-safe: the
    depth table is guarded by a lock, and per-tenant execution is
    serialised by the tenant's own lock (a queued decision never interleaves
    with that tenant's mutations).
    """

    def __init__(self, max_workers: int = 2, queue_depth: int = 8) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-service"
        )
        self._queue_depth = queue_depth
        self._depths: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._closed = False

    @property
    def queue_depth_cap(self) -> int:
        """The per-tenant cap on concurrently queued requests."""
        return self._queue_depth

    def queue_depth(self, tenant_id: str) -> int:
        """The tenant's current number of queued (unfinished) requests."""
        with self._lock:
            return self._depths.get(tenant_id, 0)

    def submit(
        self,
        tenant_id: str,
        query: ConjunctiveQuery,
        band: ComplexityBand,
        execute: Callable[[], AnswerSet],
        stats: AdmissionStats,
    ) -> AdmissionTicket:
        """Admit one request: FO inline, anything harder onto the pool.

        *execute* is the tenant-locked thunk computing the answer set; the
        controller decides only *where* it runs.  Raises
        :class:`AdmissionRejected` when the tenant's queue is full.
        """
        if self._closed:
            raise RuntimeError("the admission controller is closed")
        if band.is_first_order:
            value = execute()
            stats.inline_served += 1
            return AdmissionTicket(tenant_id, query, band, INLINE, value=value)
        with self._lock:
            depth = self._depths.get(tenant_id, 0)
            if depth >= self._queue_depth:
                stats.rejected += 1
                raise AdmissionRejected(tenant_id, depth, self._queue_depth)
            self._depths[tenant_id] = depth + 1
            stats.queued += 1
            stats.max_queue_depth = max(stats.max_queue_depth, depth + 1)

        def run() -> AnswerSet:
            try:
                value = execute()
                stats.completed += 1
                return value
            finally:
                self._release(tenant_id)

        # A successful cancel() skips run() (and its slot release) entirely —
        # release the slot and count the cancellation through a done
        # callback, which fires exactly once per future.
        def on_done(f: "Future[AnswerSet]") -> None:
            if f.cancelled():
                stats.cancelled += 1
                self._release(tenant_id)

        future = self._executor.submit(run)
        future.add_done_callback(on_done)
        return AdmissionTicket(
            tenant_id, query, band, QUEUED, future=future, stats=stats
        )

    def _release(self, tenant_id: str) -> None:
        with self._lock:
            depth = self._depths.get(tenant_id, 0)
            if depth > 0:
                self._depths[tenant_id] = depth - 1

    def close(self) -> None:
        """Shut the worker pool down, waiting for running work (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=True)


__all__ = [
    "INLINE",
    "QUEUED",
    "AdmissionController",
    "AdmissionRejected",
    "AdmissionStats",
    "AdmissionTicket",
    "AnswerSet",
    "CancelledError",
]
