"""Band-aware admission control: the trichotomy as a scheduling policy.

The paper's classifier places ``CERTAINTY(q)`` on the tractability frontier
*before* any data is touched — a property of the query shape alone.  The
admission controller turns that into the serving policy of the multi-tenant
service:

* **FO band** — the request is interactive: a certain first-order rewriting
  exists and executes as one compiled set-at-a-time plan, so the request
  runs inline on the submitting thread (the *hot path*) and the caller gets
  the answer synchronously;
* **every other band** (PTIME-not-FO, the Theorem 4 cycle queries, and the
  coNP-complete band's brute-force search) — the request is dispatched onto
  a bounded background worker pool and the caller gets an
  :class:`AdmissionTicket` whose future supports ``result(timeout)`` and
  ``cancel()``.  Each tenant has a queue-depth cap; a submission past the
  cap raises :class:`AdmissionRejected` (counted per tenant), which is the
  back-pressure signal — a tenant hammering coNP queries cannot starve the
  pool for everyone else.

Failure containment adds two layers on top of back-pressure:

* **Slot-accurate abandonment** — a queued request holds exactly one queue
  slot from admission until its worker thread finishes *or* the caller
  abandons it.  ``ticket.cancel()`` on a not-yet-started request skips the
  work entirely; on an already-running request it marks the ticket
  *abandoned* (counted in ``stats.abandoned``) and releases the slot
  immediately, so a caller that gave up never pins the tenant's queue
  capacity while the orphaned computation drains.  Every release goes
  through a once-only guard shared by the worker, the done-callback, and
  the abandon path — the slot can never leak or double-release.
* **A per-tenant circuit breaker** — repeated queued-band failures or
  ``result(timeout)`` expiries trip the tenant's breaker: further
  queued-band submissions are *shed* (:class:`CircuitOpen`, a subclass of
  :class:`AdmissionRejected`) for a cooldown window, after which a single
  half-open probe decides whether to close it again.  FO-band requests are
  never shed — the hot path stays inline even while the tenant's heavy
  band is failing.

Requests may also carry an absolute **deadline** (a ``time.monotonic``
instant).  A queued request whose deadline expires before a worker picks
it up fails fast with :class:`~repro.engine.shards.DeadlineExceeded`
instead of burning pool time on an answer nobody is waiting for.

Classification happens once per query *shape* process-wide (the plan cache
and ``classify_cached`` both memoise), so admission adds one dict probe to
the hot path.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import CancelledError, Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Callable, Dict, FrozenSet, Optional, Tuple

from ..core.complexity import ComplexityBand
from ..engine.shards import DeadlineExceeded
from ..faults import fire as _fire_fault
from ..model.symbols import Constant
from ..query.conjunctive import ConjunctiveQuery

#: Admission outcomes recorded on tickets.
INLINE = "inline"
QUEUED = "queued"

#: An answer set: frozenset of constant tuples ({()} / set() for Boolean).
AnswerSet = FrozenSet[Tuple[Constant, ...]]


class AdmissionRejected(RuntimeError):
    """A queued-band submission found the tenant's queue at capacity."""

    def __init__(self, tenant_id: str, depth: int, cap: int) -> None:
        super().__init__(
            f"tenant {tenant_id!r} has {depth} queued requests "
            f"(cap {cap}); retry after pending work drains"
        )
        self.tenant_id = tenant_id
        self.depth = depth
        self.cap = cap


class CircuitOpen(AdmissionRejected):
    """The tenant's circuit breaker is open: queued-band load is shed.

    Subclasses :class:`AdmissionRejected` so existing back-pressure
    handling (retry later) applies unchanged; ``retry_after`` says how
    long until the next half-open probe is allowed.
    """

    def __init__(self, tenant_id: str, retry_after: float) -> None:
        RuntimeError.__init__(
            self,
            f"tenant {tenant_id!r} circuit breaker is open "
            f"(retry in {max(retry_after, 0.0):.2f}s); queued-band load is shed",
        )
        self.tenant_id = tenant_id
        self.depth = 0
        self.cap = 0
        self.retry_after = retry_after


class AdmissionStats:
    """Per-tenant admission counters.

    ``inline_served``
        FO-band requests answered synchronously on the hot path;
    ``queued`` / ``completed`` / ``cancelled``
        harder-band requests dispatched to the worker pool, and how many
        of those finished or were cancelled before starting;
    ``rejected``
        submissions refused at the tenant's queue-depth cap;
    ``timeouts``
        ``result(timeout)`` calls that expired before completion (the
        request keeps running; a later ``result()`` can still collect it);
    ``abandoned``
        running requests whose caller gave up via ``cancel()`` — their
        queue slot was released immediately while the orphaned
        computation drained;
    ``shed``
        queued-band submissions refused because the tenant's circuit
        breaker was open;
    ``breaker_opens``
        times this tenant's circuit breaker tripped open;
    ``deadline_expired``
        queued requests whose deadline passed before a worker started
        them (failed fast without executing);
    ``max_queue_depth``
        high-water mark of this tenant's concurrently queued requests.
    """

    __slots__ = (
        "inline_served",
        "queued",
        "completed",
        "cancelled",
        "rejected",
        "timeouts",
        "abandoned",
        "shed",
        "breaker_opens",
        "deadline_expired",
        "max_queue_depth",
    )

    def __init__(self) -> None:
        self.inline_served = 0
        self.queued = 0
        self.completed = 0
        self.cancelled = 0
        self.rejected = 0
        self.timeouts = 0
        self.abandoned = 0
        self.shed = 0
        self.breaker_opens = 0
        self.deadline_expired = 0
        self.max_queue_depth = 0

    def as_dict(self) -> dict:
        """A plain-dict rendering (for service stats aggregation)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        return (
            f"AdmissionStats(inline={self.inline_served}, queued={self.queued}, "
            f"completed={self.completed}, rejected={self.rejected})"
        )


class _SlotGuard:
    """A once-only release of one tenant queue slot.

    Shared by the worker thread's ``finally``, the cancel done-callback,
    and the abandon path — whichever fires first wins, the rest are
    no-ops, so a slot can neither leak (someone always releases) nor
    double-release (only one of them does).
    """

    __slots__ = ("_controller", "_tenant_id", "_released", "_lock")

    def __init__(self, controller: "AdmissionController", tenant_id: str) -> None:
        self._controller = controller
        self._tenant_id = tenant_id
        self._released = False
        self._lock = threading.Lock()

    def release_once(self) -> bool:
        with self._lock:
            if self._released:
                return False
            self._released = True
        self._controller._release(self._tenant_id)
        return True


class _Breaker:
    """Per-tenant circuit-breaker state (guarded by the controller lock)."""

    __slots__ = ("failures", "open_until", "probing", "probe_deadline", "opens")

    def __init__(self) -> None:
        self.failures = 0  # consecutive queued-band failures
        self.open_until = 0.0  # monotonic instant the cooldown ends
        self.probing = False  # one half-open probe in flight
        self.probe_deadline = 0.0  # instant a silent probe is presumed lost
        self.opens = 0


class AdmissionTicket:
    """The handle for one admitted request.

    ``outcome`` is :data:`INLINE` (FO band; the answer is already computed)
    or :data:`QUEUED` (a harder band; the answer is a pending future).
    Either way :meth:`result` returns the answer set — a frozenset of
    constant tuples, ``{()}``/``set()`` encoding certain/not-certain for
    Boolean queries — so callers need not branch on the outcome.
    """

    __slots__ = (
        "tenant_id",
        "query",
        "band",
        "outcome",
        "deadline",
        "_value",
        "_future",
        "_stats",
        "_guard",
        "_controller",
        "_abandoned",
    )

    def __init__(
        self,
        tenant_id: str,
        query: ConjunctiveQuery,
        band: ComplexityBand,
        outcome: str,
        value: Optional[AnswerSet] = None,
        future: Optional["Future[AnswerSet]"] = None,
        stats: Optional[AdmissionStats] = None,
        guard: Optional[_SlotGuard] = None,
        controller: Optional["AdmissionController"] = None,
        deadline: Optional[float] = None,
    ) -> None:
        self.tenant_id = tenant_id
        self.query = query
        self.band = band
        self.outcome = outcome
        self.deadline = deadline
        self._value = value
        self._future = future
        self._stats = stats
        self._guard = guard
        self._controller = controller
        self._abandoned = False

    @property
    def done(self) -> bool:
        """``True`` once the answer is available (always, for inline)."""
        return self._future is None or self._future.done()

    @property
    def abandoned(self) -> bool:
        """``True`` after :meth:`cancel` gave up on a running request."""
        return self._abandoned

    def result(self, timeout: Optional[float] = None) -> AnswerSet:
        """The answer set, waiting up to *timeout* seconds for queued work.

        Raises :class:`concurrent.futures.TimeoutError` when the deadline
        expires (counted in the tenant's stats — and in the tenant's
        circuit breaker, so a tenant whose heavy queries chronically
        overrun starts shedding instead of queueing; the computation keeps
        running and a later call can still collect it) and
        :class:`concurrent.futures.CancelledError` after :meth:`cancel`.
        """
        if self._future is None:
            assert self._value is not None
            return self._value
        try:
            return self._future.result(timeout)
        except FutureTimeoutError:
            if self._stats is not None:
                self._stats.timeouts += 1
            if self._controller is not None:
                self._controller._breaker_failure(self.tenant_id)
            raise

    def cancel(self) -> bool:
        """Cancel a not-yet-started request, or abandon a running one.

        Returns ``True`` when the future was cancelled before starting
        (the work never runs).  A request already running cannot be
        stopped — but its queue slot is released *immediately* and the
        ticket is marked :attr:`abandoned` (returning ``False``), so a
        caller that gave up never holds the tenant's queue capacity
        hostage to an orphaned computation.  Inline requests return
        ``False``.
        """
        if self._future is None:
            return False
        if self._future.cancel():
            return True
        if not self._future.done() and not self._abandoned:
            self._abandoned = True
            if self._stats is not None:
                self._stats.abandoned += 1
            if self._guard is not None:
                self._guard.release_once()
        return False

    def __repr__(self) -> str:
        return (
            f"AdmissionTicket({self.tenant_id!r}, {self.band.name}, "
            f"{self.outcome}, done={self.done})"
        )


class AdmissionController:
    """Routes requests by complexity band; bounds background work per tenant.

    One controller (and one worker pool) serves every tenant of a
    :class:`~repro.service.service.CertaintyService`.  Thread-safe: the
    depth table is guarded by a lock, and per-tenant execution is
    serialised by the tenant's own lock (a queued decision never interleaves
    with that tenant's mutations).

    ``breaker_threshold`` consecutive queued-band failures (exceptions or
    ``result(timeout)`` expiries) open the tenant's circuit breaker for
    ``breaker_cooldown`` seconds; while open, queued-band submissions shed
    with :class:`CircuitOpen` and FO-band requests still serve inline.
    A half-open probe that never gets to report back — cancelled before a
    worker picked it up, or refused at the queue-depth cap — releases its
    claim immediately, and a probe silent for ``breaker_cooldown`` seconds
    is presumed lost, so a stuck probing flag can never wedge the tenant.
    ``breaker_threshold <= 0`` disables the breaker.  *clock* injects a
    monotonic time source for tests.
    """

    def __init__(
        self,
        max_workers: int = 2,
        queue_depth: int = 8,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 5.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-service"
        )
        self._queue_depth = queue_depth
        self._depths: Dict[str, int] = {}
        self._breakers: Dict[str, _Breaker] = {}
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown = breaker_cooldown
        self._clock = clock or time.monotonic
        self._lock = threading.Lock()
        self._closed = False

    @property
    def queue_depth_cap(self) -> int:
        """The per-tenant cap on concurrently queued requests."""
        return self._queue_depth

    def queue_depth(self, tenant_id: str) -> int:
        """The tenant's current number of queued (unfinished) requests."""
        with self._lock:
            return self._depths.get(tenant_id, 0)

    def now(self) -> float:
        """The controller's monotonic clock (injectable for tests)."""
        return self._clock()

    # -- circuit breaker ---------------------------------------------------------

    def _breaker(self, tenant_id: str) -> _Breaker:
        breaker = self._breakers.get(tenant_id)
        if breaker is None:
            breaker = self._breakers[tenant_id] = _Breaker()
        return breaker

    def _breaker_failure(
        self, tenant_id: str, stats: Optional[AdmissionStats] = None
    ) -> None:
        """Record one queued-band failure; trip the breaker at threshold."""
        if self._breaker_threshold <= 0:
            return
        with self._lock:
            breaker = self._breaker(tenant_id)
            breaker.failures += 1
            breaker.probing = False
            if breaker.failures >= self._breaker_threshold:
                was_open = self._clock() < breaker.open_until
                breaker.open_until = self._clock() + self._breaker_cooldown
                if not was_open:
                    breaker.opens += 1
                    if stats is not None:
                        stats.breaker_opens += 1

    def _probe_aborted(self, tenant_id: str) -> None:
        """A half-open probe was cancelled before it ran: allow another."""
        with self._lock:
            breaker = self._breakers.get(tenant_id)
            if breaker is not None:
                breaker.probing = False

    def _breaker_success(self, tenant_id: str) -> None:
        with self._lock:
            breaker = self._breakers.get(tenant_id)
            if breaker is not None:
                breaker.failures = 0
                breaker.open_until = 0.0
                breaker.probing = False

    def breaker_state(self, tenant_id: str) -> dict:
        """The tenant's breaker as a plain dict (state/failures/opens)."""
        with self._lock:
            breaker = self._breakers.get(tenant_id)
            now = self._clock()
            if breaker is None:
                return {
                    "state": "closed",
                    "consecutive_failures": 0,
                    "opens": 0,
                    "retry_in": 0.0,
                }
            if now < breaker.open_until:
                state = "open"
            elif breaker.probing or (
                breaker.open_until > 0.0
                and breaker.failures >= max(self._breaker_threshold, 1)
            ):
                state = "half-open"
            else:
                state = "closed"
            return {
                "state": state,
                "consecutive_failures": breaker.failures,
                "opens": breaker.opens,
                "retry_in": max(0.0, breaker.open_until - now),
            }

    # -- admission ---------------------------------------------------------------

    def submit(
        self,
        tenant_id: str,
        query: ConjunctiveQuery,
        band: ComplexityBand,
        execute: Callable[[], AnswerSet],
        stats: AdmissionStats,
        deadline: Optional[float] = None,
    ) -> AdmissionTicket:
        """Admit one request: FO inline, anything harder onto the pool.

        *execute* is the tenant-locked thunk computing the answer set; the
        controller decides only *where* it runs.  *deadline* is an
        absolute monotonic instant: a queued request still waiting for a
        worker when it passes fails fast with
        :class:`~repro.engine.shards.DeadlineExceeded`.  Raises
        :class:`AdmissionRejected` when the tenant's queue is full and
        :class:`CircuitOpen` while the tenant's breaker sheds load.
        """
        if self._closed:
            raise RuntimeError("the admission controller is closed")
        if band.is_first_order:
            # The hot path: never queued, never shed, never breaker-gated.
            value = execute()
            stats.inline_served += 1
            return AdmissionTicket(tenant_id, query, band, INLINE, value=value)
        is_probe = False
        with self._lock:
            if self._breaker_threshold > 0:
                breaker = self._breaker(tenant_id)
                now = self._clock()
                if breaker.probing and now >= breaker.probe_deadline:
                    # The in-flight probe never reported back (e.g. its
                    # ticket was cancelled before a worker picked it up):
                    # presume it lost and allow a fresh one, rather than
                    # shedding this tenant forever.
                    breaker.probing = False
                if now < breaker.open_until or breaker.probing:
                    stats.shed += 1
                    raise CircuitOpen(tenant_id, breaker.open_until - now)
                if breaker.open_until > 0.0 and breaker.failures >= (
                    self._breaker_threshold
                ):
                    # Cooldown over: admit exactly one half-open probe.
                    breaker.probing = True
                    breaker.probe_deadline = now + self._breaker_cooldown
                    is_probe = True
            depth = self._depths.get(tenant_id, 0)
            if depth >= self._queue_depth:
                if is_probe:
                    # The probe was never actually admitted: don't leave
                    # the flag claiming one is in flight.
                    breaker.probing = False
                stats.rejected += 1
                raise AdmissionRejected(tenant_id, depth, self._queue_depth)
            self._depths[tenant_id] = depth + 1
            stats.queued += 1
            stats.max_queue_depth = max(stats.max_queue_depth, depth + 1)

        guard = _SlotGuard(self, tenant_id)

        def run() -> AnswerSet:
            try:
                try:
                    if deadline is not None and self._clock() >= deadline:
                        stats.deadline_expired += 1
                        raise DeadlineExceeded(
                            f"tenant {tenant_id!r}: request deadline expired "
                            "before a worker started it"
                        )
                    fault = _fire_fault("service.queued")
                    if fault is not None:
                        if fault.kind == "stall":
                            time.sleep(fault.delay or 0.1)
                        else:
                            raise OSError("injected queued-execution failure")
                    value = execute()
                except BaseException:
                    self._breaker_failure(tenant_id, stats)
                    raise
                stats.completed += 1
                self._breaker_success(tenant_id)
                return value
            finally:
                guard.release_once()

        # A successful cancel() skips run() (and its slot release) entirely —
        # release the slot and count the cancellation through a done
        # callback, which fires exactly once per future.  A cancelled
        # half-open probe also never reaches the breaker bookkeeping in
        # run(), so its probing flag is cleared here.
        def on_done(f: "Future[AnswerSet]") -> None:
            if f.cancelled():
                stats.cancelled += 1
                if is_probe:
                    self._probe_aborted(tenant_id)
                guard.release_once()

        future = self._executor.submit(run)
        future.add_done_callback(on_done)
        return AdmissionTicket(
            tenant_id,
            query,
            band,
            QUEUED,
            future=future,
            stats=stats,
            guard=guard,
            controller=self,
            deadline=deadline,
        )

    def _release(self, tenant_id: str) -> None:
        with self._lock:
            depth = self._depths.get(tenant_id, 0)
            if depth > 0:
                self._depths[tenant_id] = depth - 1

    def close(self) -> None:
        """Shut the worker pool down, waiting for running work (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=True)


__all__ = [
    "INLINE",
    "QUEUED",
    "AdmissionController",
    "AdmissionRejected",
    "AdmissionStats",
    "AdmissionTicket",
    "AnswerSet",
    "CancelledError",
    "CircuitOpen",
]
