"""Per-tenant state: a private id space, database, session, and views.

A :class:`Tenant` bundles everything one customer of the
:class:`~repro.service.service.CertaintyService` owns:

* a **private** :class:`~repro.store.intern.InternTable` — the tenant's
  constant id space.  Nothing the tenant interns ever enters the process
  -global table or another tenant's table, so tenants cannot observe each
  other's constants (the isolation property the regression tests assert),
  and dropping the tenant releases the whole id space at once (the global
  table is append-only for the process lifetime);
* an :class:`~repro.model.database.UncertainDatabase` plus a scoped
  :class:`~repro.engine.session.CertaintySession` executing on the
  columnar backend against the private table;
* a :class:`~repro.incremental.manager.ViewManager` in bounded-staleness
  (deferred) mode, so the tenant's write path never pays synchronous view
  maintenance beyond the session's O(1)-amortised index upkeep;
* a re-entrant lock serialising this tenant's mutations and decisions —
  the service's background workers and the caller's threads interleave
  *across* tenants, never within one;
* optionally a :class:`~repro.durability.DurableStore` (``durability_dir``)
  persisting every committed batch: construction over a non-empty
  directory *recovers* the tenant — the persisted state wins over the
  ``facts`` argument — and :meth:`Tenant.checkpoint` writes segment
  snapshots (rotating the intern-table epoch when churn warrants it).
"""

from __future__ import annotations

import threading
import time
from typing import Iterable, List, Optional

from ..durability import DurableStore
from ..engine.cache import PlanCache
from ..engine.session import CertaintySession
from ..engine.shards import DeadlineExceeded, ShardedCertaintySession
from ..incremental.manager import ViewManager
from ..incremental.staleness import StalenessPolicy
from ..incremental.view import MaterializedCertainView
from ..model.atoms import Fact
from ..model.database import UncertainDatabase
from ..model.schema import DatabaseSchema
from ..query.conjunctive import ConjunctiveQuery
from ..store import InternTable
from ..workloads.streaming import MutationOp, apply_mutation
from .admission import AdmissionStats, AnswerSet


class Tenant:
    """One tenant's isolated certainty state (see the module docstring).

    Constructed by :meth:`CertaintyService.create_tenant`; user code
    normally goes through the service (which adds admission control), but
    every attribute here is a public read surface.
    """

    def __init__(
        self,
        tenant_id: str,
        facts: Iterable[Fact] = (),
        schema: Optional[DatabaseSchema] = None,
        plan_cache: Optional[PlanCache] = None,
        staleness: Optional[StalenessPolicy] = None,
        allow_exponential: bool = False,
        clock=None,
        durability_dir=None,
        durability_sync: str = "commit",
        shard_workers: Optional[int] = None,
    ) -> None:
        self.tenant_id = tenant_id
        self.intern_table = InternTable()
        self._clock = clock or time.monotonic
        self.durable: Optional[DurableStore] = None
        if durability_dir is not None:
            # Recover-or-fresh: a non-empty directory wins over the *facts*
            # argument (the persisted state IS the tenant's data); an empty
            # one adopts *facts* as the durable baseline.  The durable store
            # attaches before the session and view manager below, so its
            # changelog observer always runs first.
            self.durable = DurableStore(durability_dir, sync=durability_sync)
            if self.durable.mutation_version > 0 or len(self.durable.store) > 0:
                self.db = self.durable.database(schema=schema)
            else:
                self.db = UncertainDatabase(facts, schema=schema)
            self.durable.attach(self.db)
        else:
            self.db = UncertainDatabase(facts, schema=schema)
        self.session = CertaintySession(
            self.db,
            plan_cache=plan_cache,
            allow_exponential=allow_exponential,
            intern_table=self.intern_table,
        )
        manager_kwargs = {} if clock is None else {"clock": clock}
        self.views = ViewManager(
            self.db,
            session=self.session,
            staleness=staleness if staleness is not None else StalenessPolicy(),
            **manager_kwargs,
        )
        #: Optional supervised sharded session: open queries fan out over
        #: ``shard_workers`` worker processes with per-shard failure
        #: containment and graceful degradation (see
        #: :class:`~repro.engine.shards.ShardedCertaintySession`).
        self.sharded: Optional[ShardedCertaintySession] = None
        if shard_workers is not None:
            # The tenant's clock threads down to shard dispatch so ticket
            # deadlines and shard deadline checks share one timeline.
            self.sharded = ShardedCertaintySession(
                self.db,
                n_shards=shard_workers,
                allow_exponential=allow_exponential,
                plan_cache=plan_cache,
                intern_table=self.intern_table,
                clock=clock,
            )
        self.admission_stats = AdmissionStats()
        self._lock = threading.RLock()
        self._closed = False

    # -- locking -----------------------------------------------------------------

    @property
    def lock(self) -> "threading.RLock":
        """The lock serialising this tenant's mutations and decisions."""
        return self._lock

    # -- queries -----------------------------------------------------------------

    def band(self, query: ConjunctiveQuery):
        """The complexity band of *query* (classified once, via the plan cache)."""
        return self.session.plan_for(query).band

    def execute(
        self,
        query: ConjunctiveQuery,
        allow_exponential: Optional[bool] = None,
        deadline: Optional[float] = None,
    ) -> AnswerSet:
        """Decide *query* now, under the tenant lock.

        Returns the certain answers as a frozenset of constant tuples;
        Boolean queries encode their verdict as ``{()}`` / ``set()``.
        This is the thunk the admission controller runs — inline for the
        FO band, on a background worker otherwise.  *deadline* is an
        absolute monotonic instant threaded down to shard dispatch (when
        the tenant runs sharded); an expired deadline raises
        :class:`~repro.engine.shards.DeadlineExceeded` rather than
        returning a late answer.
        """
        with self._lock:
            self._check_open()
            if deadline is not None and self._clock() >= deadline:
                raise DeadlineExceeded(
                    f"tenant {self.tenant_id!r}: deadline expired before execution"
                )
            if query.is_boolean:
                certain = self.session.is_certain(
                    query, allow_exponential=allow_exponential
                )
                return frozenset({()}) if certain else frozenset()
            if self.sharded is not None:
                return frozenset(
                    self.sharded.certain_answers(
                        query,
                        allow_exponential=allow_exponential,
                        deadline=deadline,
                    )
                )
            return frozenset(
                self.session.certain_answers(
                    query, allow_exponential=allow_exponential
                )
            )

    # -- mutations ---------------------------------------------------------------

    def add(self, fact: Fact) -> None:
        """Insert one fact (tenant-locked)."""
        with self._lock:
            self._check_open()
            self.db.add(fact)

    def discard(self, fact: Fact) -> None:
        """Remove one fact (tenant-locked)."""
        with self._lock:
            self._check_open()
            self.db.discard(fact)

    def apply(self, batch: List[MutationOp]) -> None:
        """Apply a batch of mutation ops inside one ``db.batch()`` block.

        Observers (the session index, the view manager's changelog) receive
        one consolidated notification; in deferred mode the whole batch
        merges into the pending staleness changelog.
        """
        with self._lock:
            self._check_open()
            with self.db.batch():
                for op in batch:
                    apply_mutation(self.db, op)

    # -- views -------------------------------------------------------------------

    def register_view(self, query: ConjunctiveQuery) -> MaterializedCertainView:
        """Materialize (and keep maintaining) the certain answers of *query*."""
        with self._lock:
            self._check_open()
            return self.views.register(query)

    def view_answers(self, query: ConjunctiveQuery) -> AnswerSet:
        """Read a registered view under the tenant lock (bounded-stale)."""
        with self._lock:
            self._check_open()
            view = self.views.register(query)
            return view.answers

    def flush_views(self) -> bool:
        """Deliver every deferred mutation to the tenant's views now."""
        with self._lock:
            self._check_open()
            return self.views.flush()

    # -- durability --------------------------------------------------------------

    def checkpoint(self, rotate: Optional[bool] = None) -> Optional[dict]:
        """Write a durable segment snapshot of this tenant's database now.

        Returns the checkpoint summary (see
        :meth:`~repro.durability.DurableStore.checkpoint`), or ``None``
        when the tenant was created without a ``durability_dir``.  *rotate*
        forces or suppresses the intern-table epoch rotation; the default
        applies the automatic live-fraction policy.
        """
        with self._lock:
            self._check_open()
            if self.durable is None:
                return None
            return self.durable.checkpoint(rotate=rotate)

    # -- observability -----------------------------------------------------------

    def stats(self) -> dict:
        """This tenant's memory, staleness, and admission counters.

        ``intern_memory`` is the private table's
        :meth:`~repro.store.intern.InternTable.memory_stats` — the
        previously un-aggregated footprint the service surfaces per tenant;
        ``store_memory`` adds the columnar store's column footprint.
        """
        with self._lock:
            store = self.session.store
            return {
                "facts": len(self.db),
                "blocks": self.db.num_blocks(),
                "mutation_version": self.db.mutation_version,
                "views": len(self.views.views),
                "pending_view_mutations": self.views.pending_mutations,
                "intern_memory": self.intern_table.memory_stats(),
                "store_memory": store.memory_stats() if store is not None else {},
                "staleness": self.views.staleness_stats.as_dict(),
                "admission": self.admission_stats.as_dict(),
                "sharded": (
                    {
                        "n_shards": self.sharded.n_shards,
                        "degraded_mode": self.sharded.degraded_mode,
                        "worker_failures": self.sharded.stats.worker_failures,
                        "worker_restarts": self.sharded.stats.worker_restarts,
                        "degradations": self.sharded.stats.degradations,
                    }
                    if self.sharded is not None
                    else None
                ),
                "durability": (
                    {
                        "epoch": self.durable.epoch,
                        "mutation_version": self.durable.mutation_version,
                        **self.durable.stats.as_dict(),
                    }
                    if self.durable is not None
                    else None
                ),
            }

    # -- lifecycle ---------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """``True`` once :meth:`close` has run."""
        return self._closed

    def close(self) -> None:
        """Detach the session and views from the database (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self.views.close()
            if self.sharded is not None:
                self.sharded.close()
            self.session.close()
            if self.durable is not None:
                self.durable.close()
            self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"tenant {self.tenant_id!r} is closed")

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"Tenant({self.tenant_id!r}, {len(self.db)} facts, "
            f"{len(self.intern_table)} constants, {state})"
        )
