"""Multi-tenant certainty serving: tenants, admission control, staleness.

The serving layer on top of the engine (conf_pods_Wijsen13).  The paper's
trichotomy — ``CERTAINTY(q)`` is FO, PTIME-complete, or coNP-complete
depending only on the query shape — becomes an *admission policy*:

* :class:`CertaintyService` — hosts isolated :class:`Tenant` objects (each
  a private :class:`~repro.store.intern.InternTable`, database, session,
  and view manager) behind one shared worker pool;
* :class:`~repro.service.admission.AdmissionController` — classifies each
  submitted query once and routes the FO band inline (hot compiled path)
  while dispatching PTIME/coNP bands onto bounded background workers with
  per-tenant queue-depth caps;
* bounded-staleness views — tenant mutations defer view maintenance into
  the changelog; views refresh lazily on read, flush, or staleness
  deadline (:class:`~repro.incremental.staleness.StalenessPolicy`).
"""

from .admission import (
    INLINE,
    QUEUED,
    AdmissionController,
    AdmissionRejected,
    AdmissionStats,
    AdmissionTicket,
    AnswerSet,
    CancelledError,
    CircuitOpen,
)
from .service import CertaintyService
from .tenant import Tenant

__all__ = [
    "INLINE",
    "QUEUED",
    "AdmissionController",
    "AdmissionRejected",
    "AdmissionStats",
    "AdmissionTicket",
    "AnswerSet",
    "CancelledError",
    "CertaintyService",
    "CircuitOpen",
    "Tenant",
]
