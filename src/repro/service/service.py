"""The multi-tenant certainty service: admission-controlled serving.

:class:`CertaintyService` hosts any number of :class:`~repro.service.tenant.Tenant`
objects — each with its own intern table, database, session, and
bounded-staleness views — behind one band-aware
:class:`~repro.service.admission.AdmissionController`:

>>> from repro.service import CertaintyService            # doctest: +SKIP
>>> with CertaintyService(max_workers=4) as svc:
...     svc.create_tenant("acme", facts=acme_facts)
...     ticket = svc.submit("acme", query)      # FO band: answered inline
...     answers = ticket.result(timeout=1.0)
...     svc.apply("acme", [("add", fact)])      # views go bounded-stale
...     svc.stats()["totals"]

Design points:

* **One classification, one policy.**  ``submit`` classifies the query via
  the tenant's plan cache (memoised per shape) and hands the band to the
  controller: the FO band runs on the submitting thread, every harder band
  becomes a future on the shared bounded worker pool.
* **Per-tenant serialisation, cross-tenant parallelism.**  Every decision
  and mutation runs under its tenant's re-entrant lock, so a queued coNP
  decision never interleaves with that tenant's writes — but two tenants'
  work proceeds concurrently.
* **Writes are cheap, reads are honest.**  Mutations update the session's
  incremental index synchronously but view maintenance is deferred under
  the tenant's :class:`~repro.incremental.staleness.StalenessPolicy`; the
  default policy (zero stale budget) flushes on the next read, so view
  reads through the service are always fresh unless the tenant opted into
  staleness.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from ..engine.cache import PlanCache
from ..incremental.staleness import StalenessPolicy
from ..model.atoms import Fact
from ..model.schema import DatabaseSchema
from ..query.conjunctive import ConjunctiveQuery
from ..workloads.streaming import MutationOp
from .admission import AdmissionController, AdmissionTicket, AnswerSet
from .tenant import Tenant


class CertaintyService:
    """Admission-controlled, multi-tenant CERTAINTY(q) serving (see module doc)."""

    def __init__(
        self,
        max_workers: int = 2,
        queue_depth: int = 8,
        staleness: Optional[StalenessPolicy] = None,
        plan_cache_size: int = 256,
        allow_exponential: bool = True,
        clock=None,
        durability_dir=None,
        durability_sync: str = "commit",
        breaker_threshold: int = 5,
        breaker_cooldown: float = 5.0,
        shard_workers: Optional[int] = None,
    ) -> None:
        """Create an empty service.

        Parameters
        ----------
        max_workers / queue_depth:
            Worker-pool size and per-tenant queued-request cap of the
            admission controller.
        staleness:
            Default :class:`StalenessPolicy` for new tenants (overridable
            per tenant).  ``None`` means the zero-budget policy: writes
            defer view maintenance, reads always see fresh views.
        plan_cache_size:
            Size of each tenant's private plan cache.
        allow_exponential:
            Whether queued coNP-band requests may run the brute-force
            fallback.  ``True`` by default — the whole point of queueing
            is making the hard band servable without blocking the hot path.
        clock:
            Injectable monotonic clock handed to tenants' view managers
            (for deterministic staleness tests).
        durability_dir:
            When set, every tenant persists through a
            :class:`~repro.durability.DurableStore` rooted at
            ``durability_dir/<tenant_id>``, and construction **recovers**
            every tenant whose subdirectory already holds a segment — a
            service restarted over the same directory comes back serving
            the last committed state of each tenant.
        durability_sync:
            Changelog fsync policy for durable tenants (``"commit"`` /
            ``"flush"`` / ``"never"``).
        breaker_threshold / breaker_cooldown:
            Per-tenant circuit breaker: after *breaker_threshold*
            consecutive queued-band failures (worker exceptions, request
            deadline expiries, or ``result(timeout)`` overruns) the
            tenant's heavy-band load is **shed**
            (:class:`~repro.service.admission.CircuitOpen`) for
            *breaker_cooldown* seconds, then one half-open probe decides
            whether to resume.  FO-band requests keep serving inline
            throughout.  ``breaker_threshold <= 0`` disables shedding.
        shard_workers:
            When set, every tenant serves open queries through a
            supervised :class:`~repro.engine.shards.ShardedCertaintySession`
            with this many worker processes — individual worker crashes
            are contained per shard and degrade gracefully instead of
            failing requests.
        """
        self._admission = AdmissionController(
            max_workers=max_workers,
            queue_depth=queue_depth,
            breaker_threshold=breaker_threshold,
            breaker_cooldown=breaker_cooldown,
            clock=clock,
        )
        self._shard_workers = shard_workers
        self._staleness = staleness
        self._plan_cache_size = plan_cache_size
        self._allow_exponential = allow_exponential
        self._clock = clock
        self._durability_dir = Path(durability_dir) if durability_dir else None
        self._durability_sync = durability_sync
        self._tenants: Dict[str, Tenant] = {}
        self._lock = threading.Lock()
        self._closed = False
        if self._durability_dir is not None and self._durability_dir.exists():
            for subdir in sorted(self._durability_dir.iterdir()):
                if subdir.is_dir() and any(subdir.glob("segment-*.seg")):
                    self.create_tenant(subdir.name)

    # -- tenant lifecycle --------------------------------------------------------

    def create_tenant(
        self,
        tenant_id: str,
        facts: Iterable[Fact] = (),
        schema: Optional[DatabaseSchema] = None,
        staleness: Optional[StalenessPolicy] = None,
    ) -> Tenant:
        """Provision an isolated tenant (private intern table and engine state).

        On a durable service (``durability_dir``), a tenant whose
        subdirectory already holds persisted state is *recovered* — the
        on-disk facts win over the *facts* argument.
        """
        self._check_open()
        with self._lock:
            if tenant_id in self._tenants:
                raise ValueError(f"tenant {tenant_id!r} already exists")
            durability_dir = None
            if self._durability_dir is not None:
                durability_dir = self._durability_dir / tenant_id
            tenant = Tenant(
                tenant_id,
                facts=facts,
                schema=schema,
                plan_cache=PlanCache(maxsize=self._plan_cache_size),
                staleness=staleness if staleness is not None else self._staleness,
                allow_exponential=self._allow_exponential,
                clock=self._clock,
                durability_dir=durability_dir,
                durability_sync=self._durability_sync,
                shard_workers=self._shard_workers,
            )
            self._tenants[tenant_id] = tenant
            return tenant

    def tenant(self, tenant_id: str) -> Tenant:
        """The tenant registered as *tenant_id* (KeyError if unknown)."""
        with self._lock:
            try:
                return self._tenants[tenant_id]
            except KeyError:
                raise KeyError(f"unknown tenant {tenant_id!r}") from None

    def drop_tenant(self, tenant_id: str) -> None:
        """Close and forget a tenant; its id space dies with it."""
        with self._lock:
            tenant = self._tenants.pop(tenant_id, None)
        if tenant is not None:
            tenant.close()

    @property
    def tenants(self) -> Tuple[str, ...]:
        """Registered tenant ids, in creation order."""
        with self._lock:
            return tuple(self._tenants)

    # -- serving -----------------------------------------------------------------

    def submit(
        self,
        tenant_id: str,
        query: ConjunctiveQuery,
        deadline: Optional[float] = None,
    ) -> AdmissionTicket:
        """Admit one certainty request for *tenant_id*.

        FO-band queries are answered inline (the returned ticket is already
        done); harder bands are queued onto the worker pool.  *deadline* —
        seconds from now — becomes an end-to-end request budget carried
        from the ticket through the tenant down to shard dispatch: an
        expired budget raises
        :class:`~repro.engine.shards.DeadlineExceeded` from the ticket's
        ``result()`` instead of returning a late answer.  Raises
        :class:`~repro.service.admission.AdmissionRejected` when the
        tenant's queue is at capacity and
        :class:`~repro.service.admission.CircuitOpen` while the tenant's
        circuit breaker sheds heavy-band load.
        """
        self._check_open()
        tenant = self.tenant(tenant_id)
        band = tenant.band(query)
        abs_deadline = (
            None if deadline is None else self._admission.now() + deadline
        )
        return self._admission.submit(
            tenant_id,
            query,
            band,
            lambda: tenant.execute(query, deadline=abs_deadline),
            tenant.admission_stats,
            deadline=abs_deadline,
        )

    def certain_answers(
        self,
        tenant_id: str,
        query: ConjunctiveQuery,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> AnswerSet:
        """Submit and wait: the certain answers of *query* for *tenant_id*.

        Boolean queries come back as ``{()}`` (certain) / ``set()`` (not).
        """
        return self.submit(tenant_id, query, deadline=deadline).result(timeout)

    def is_certain(
        self,
        tenant_id: str,
        query: ConjunctiveQuery,
        timeout: Optional[float] = None,
    ) -> bool:
        """Submit a Boolean query and wait for its certainty verdict."""
        return bool(self.certain_answers(tenant_id, query, timeout=timeout))

    # -- mutations ---------------------------------------------------------------

    def apply(self, tenant_id: str, batch: List[MutationOp]) -> None:
        """Apply a mutation batch to one tenant (views defer per its policy)."""
        self._check_open()
        self.tenant(tenant_id).apply(batch)

    def flush_views(self, tenant_id: str) -> bool:
        """Force the tenant's deferred view maintenance to run now."""
        return self.tenant(tenant_id).flush_views()

    # -- durability --------------------------------------------------------------

    def checkpoint(self, tenant_id: str, rotate: Optional[bool] = None) -> Optional[dict]:
        """Write a durable segment snapshot of one tenant (``None`` if not durable)."""
        self._check_open()
        return self.tenant(tenant_id).checkpoint(rotate=rotate)

    def checkpoint_all(self) -> Dict[str, Optional[dict]]:
        """Checkpoint every tenant; maps tenant id → checkpoint summary."""
        self._check_open()
        with self._lock:
            tenants = list(self._tenants.values())
        return {t.tenant_id: t.checkpoint() for t in tenants}

    # -- observability -----------------------------------------------------------

    @property
    def admission(self) -> AdmissionController:
        """The shared admission controller (queue-depth introspection)."""
        return self._admission

    def stats(self) -> dict:
        """Per-tenant and aggregate service statistics.

        ``tenants`` maps tenant id → :meth:`Tenant.stats` (facts, intern
        memory, staleness and admission counters, live queue depth);
        ``totals`` sums the cross-tenant aggregates — total interned bytes,
        facts, pending view mutations, and every admission counter.
        """
        with self._lock:
            tenants = dict(self._tenants)
        per_tenant = {}
        totals = {
            "tenants": len(tenants),
            "facts": 0,
            "intern_constants": 0,
            "intern_bytes": 0,
            "pending_view_mutations": 0,
            "inline_served": 0,
            "queued": 0,
            "completed": 0,
            "cancelled": 0,
            "rejected": 0,
            "timeouts": 0,
            "abandoned": 0,
            "shed": 0,
            "breaker_opens": 0,
            "deadline_expired": 0,
        }
        for tenant_id, tenant in tenants.items():
            stats = tenant.stats()
            stats["queue_depth"] = self._admission.queue_depth(tenant_id)
            stats["breaker"] = self._admission.breaker_state(tenant_id)
            per_tenant[tenant_id] = stats
            totals["facts"] += stats["facts"]
            totals["intern_constants"] += stats["intern_memory"]["constants"]
            totals["intern_bytes"] += stats["intern_memory"]["total_bytes"]
            totals["pending_view_mutations"] += stats["pending_view_mutations"]
            for key in (
                "inline_served",
                "queued",
                "completed",
                "cancelled",
                "rejected",
                "timeouts",
                "abandoned",
                "shed",
                "breaker_opens",
                "deadline_expired",
            ):
                totals[key] += stats["admission"][key]
        return {
            "tenants": per_tenant,
            "totals": totals,
            "queue_depth_cap": self._admission.queue_depth_cap,
        }

    # -- lifecycle ---------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """``True`` once :meth:`close` has run."""
        return self._closed

    def close(self) -> None:
        """Drain the worker pool and close every tenant (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._admission.close()
        with self._lock:
            tenants = list(self._tenants.values())
            self._tenants.clear()
        for tenant in tenants:
            tenant.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("the service is closed")

    def __enter__(self) -> "CertaintyService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"CertaintyService({len(self.tenants)} tenants, {state})"
