"""Uncertain databases, blocks, and consistency.

An *uncertain database* is a finite set of facts in which primary keys need
not be satisfied.  A *block* is a maximal set of key-equal facts.  The
database is *consistent* when every block is a singleton.  A *repair* is a
maximal consistent subset, i.e. it picks exactly one fact from every block.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from .atoms import Fact, RelationSchema
from .schema import DatabaseSchema
from .symbols import Constant

#: Identifier of a block: relation name plus the tuple of key constants.
BlockKey = Tuple[str, Tuple[Constant, ...]]


class ChangeSet:
    """The *net* record of a batch of database mutations.

    Recording keeps net semantics relative to the start of the batch: a fact
    added and then discarded inside the same batch cancels out entirely, and
    a fact discarded and re-added likewise leaves no trace.  Observers
    receiving a change set therefore see exactly the difference between the
    database before and after the batch, never the intermediate churn.
    """

    __slots__ = ("_added", "_discarded")

    def __init__(
        self, added: Iterable[Fact] = (), discarded: Iterable[Fact] = ()
    ) -> None:
        # Insertion-ordered dict-sets keep replay deterministic.
        self._added: Dict[Fact, None] = dict.fromkeys(added)
        self._discarded: Dict[Fact, None] = dict.fromkeys(discarded)

    # -- recording (used by UncertainDatabase inside a batch) --------------------

    def record_added(self, fact: Fact) -> None:
        """Record an insertion, cancelling a prior in-batch discard."""
        if fact in self._discarded:
            del self._discarded[fact]
        else:
            self._added[fact] = None

    def record_discarded(self, fact: Fact) -> None:
        """Record a removal, cancelling a prior in-batch insertion."""
        if fact in self._added:
            del self._added[fact]
        else:
            self._discarded[fact] = None

    # -- views -------------------------------------------------------------------

    @property
    def added(self) -> Tuple[Fact, ...]:
        """The facts inserted (net) by the batch."""
        return tuple(self._added)

    @property
    def discarded(self) -> Tuple[Fact, ...]:
        """The facts removed (net) by the batch."""
        return tuple(self._discarded)

    def facts(self) -> Iterator[Fact]:
        """Every fact touched by the batch (added, then discarded)."""
        yield from self._added
        yield from self._discarded

    def touched_blocks(self) -> Set[BlockKey]:
        """The block keys of every touched fact."""
        return {fact.block_key for fact in self.facts()}

    def touched_relations(self) -> Set[str]:
        """The relation names of every touched fact."""
        return {fact.relation.name for fact in self.facts()}

    def __len__(self) -> int:
        return len(self._added) + len(self._discarded)

    def __bool__(self) -> bool:
        return bool(self._added) or bool(self._discarded)

    def __repr__(self) -> str:
        return f"ChangeSet(+{len(self._added)}, -{len(self._discarded)})"


class DatabaseObserver:
    """Protocol for objects notified of database mutations.

    Observers registered with :meth:`UncertainDatabase.register_observer`
    receive ``fact_added(fact)`` after an insertion and
    ``fact_discarded(fact)`` after a removal.  Derived structures (such as
    the engine's shared fact indexes) use the hooks to stay consistent
    incrementally instead of being rebuilt per call.

    Mutations performed inside a :meth:`UncertainDatabase.batch` block are
    delivered as **one** consolidated :meth:`batch_applied` call instead of
    per-fact churn.  The default implementation replays the net changes
    through the per-fact hooks, so plain observers stay correct without
    opting in; batch-aware observers (such as the incremental view manager)
    override it to coalesce their maintenance work.
    """

    def fact_added(self, fact: Fact) -> None:  # pragma: no cover - protocol
        raise NotImplementedError

    def fact_discarded(self, fact: Fact) -> None:  # pragma: no cover - protocol
        raise NotImplementedError

    def batch_applied(self, changes: ChangeSet) -> None:
        """One consolidated notification for a whole mutation batch.

        Default: replay the net changes through ``fact_added`` /
        ``fact_discarded`` in recording order.
        """
        for fact in changes.added:
            self.fact_added(fact)
        for fact in changes.discarded:
            self.fact_discarded(fact)


class UncertainDatabase:
    """A finite set of facts over a database schema.

    The database may violate primary keys; facts sharing a relation name and
    a key value form a *block*.  The class is a mutable container but every
    derived view (blocks, repairs) is computed from the current contents.
    Per-relation fact and block indexes are maintained on mutation, and
    observers can register for add/discard notifications.
    """

    def __init__(
        self,
        facts: Iterable[Fact] = (),
        schema: Optional[DatabaseSchema] = None,
        mutation_version: Optional[int] = None,
    ) -> None:
        self._schema = schema if schema is not None else DatabaseSchema()
        self._facts: Set[Fact] = set()
        self._blocks: Dict[BlockKey, Set[Fact]] = {}
        self._by_relation: Dict[str, Set[Fact]] = {}
        self._relation_block_keys: Dict[str, Set[BlockKey]] = {}
        self._observers: List[DatabaseObserver] = []
        self._batch_depth = 0
        self._batch_changes: Optional[ChangeSet] = None
        self._mutation_version = 0
        for fact in facts:
            self.add(fact)
        if mutation_version is not None:
            # Resume a prior counter sequence (crash recovery): the initial
            # facts are state being *restored*, not new mutations, so their
            # add() bumps above are folded into the recovered version.
            if mutation_version < 0:
                raise ValueError("mutation_version must be non-negative")
            self._mutation_version = mutation_version

    @property
    def mutation_version(self) -> int:
        """A counter that advances exactly when the fact set changes.

        Semantics: the version is bumped once per *effective* mutation — an
        ``add`` of a new fact or a ``discard`` of a present fact — and once
        per outermost :meth:`batch` whose net :class:`ChangeSet` is
        non-empty (the bump happens before observers are notified, so a
        ``batch_applied`` handler already sees the post-batch version).
        Idempotent no-ops (re-adding a present fact, discarding an absent
        one, a batch that nets out to nothing) leave it unchanged.

        Two reads returning the same version therefore guarantee the fact
        set is identical, which is what lets derived caches — e.g. the
        candidate-enumeration memo of
        :class:`~repro.engine.session.CertaintySession` — validate with one
        integer comparison.  Inside a batch the version is *not* yet
        advanced, matching the documented staleness of observer-derived
        structures there.
        """
        return self._mutation_version

    # -- observers --------------------------------------------------------------

    def register_observer(self, observer: DatabaseObserver) -> None:
        """Register an observer for add/discard notifications (idempotent)."""
        if observer not in self._observers:
            self._observers.append(observer)

    def unregister_observer(self, observer: DatabaseObserver) -> None:
        """Remove a previously registered observer (no-op if absent)."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    # -- mutation ---------------------------------------------------------------

    def add(self, fact: Fact) -> None:
        """Insert a fact (idempotent)."""
        if not isinstance(fact, Fact):
            raise TypeError(f"expected a Fact, got {fact!r}")
        self._schema.add(fact.relation)
        if fact in self._facts:
            return
        name = fact.relation.name
        self._facts.add(fact)
        self._blocks.setdefault(fact.block_key, set()).add(fact)
        self._by_relation.setdefault(name, set()).add(fact)
        self._relation_block_keys.setdefault(name, set()).add(fact.block_key)
        if self._batch_changes is not None:
            self._batch_changes.record_added(fact)
        else:
            self._mutation_version += 1
            for observer in self._observers:
                observer.fact_added(fact)

    def add_all(self, facts: Iterable[Fact]) -> None:
        """Insert every fact in *facts*."""
        for fact in facts:
            self.add(fact)

    def discard(self, fact: Fact) -> None:
        """Remove a fact if present."""
        if fact not in self._facts:
            return
        name = fact.relation.name
        self._facts.discard(fact)
        block = self._blocks.get(fact.block_key)
        if block is not None:
            block.discard(fact)
            if not block:
                del self._blocks[fact.block_key]
                keys = self._relation_block_keys.get(name)
                if keys is not None:
                    keys.discard(fact.block_key)
                    if not keys:
                        del self._relation_block_keys[name]
        relation_facts = self._by_relation.get(name)
        if relation_facts is not None:
            relation_facts.discard(fact)
            if not relation_facts:
                del self._by_relation[name]
        if self._batch_changes is not None:
            self._batch_changes.record_discarded(fact)
        else:
            self._mutation_version += 1
            for observer in self._observers:
                observer.fact_discarded(fact)

    def remove_block(self, block_key: BlockKey) -> None:
        """Remove an entire block of key-equal facts."""
        for fact in list(self._blocks.get(block_key, ())):
            self.discard(fact)

    # -- batched mutation --------------------------------------------------------

    @property
    def in_batch(self) -> bool:
        """``True`` while inside a :meth:`batch` block."""
        return self._batch_depth > 0

    @contextmanager
    def batch(self) -> Iterator["UncertainDatabase"]:
        """Coalesce mutations into one consolidated observer notification.

        Inside the block, ``add``/``discard``/``remove_block`` update the
        database (and its internal indexes) immediately, but observers are
        *not* notified per fact.  When the outermost batch exits, every
        observer receives a single :meth:`DatabaseObserver.batch_applied`
        call carrying the net :class:`ChangeSet` — plain observers replay it
        per fact through the default implementation, batch-aware observers
        (incremental views, mutation counters) coalesce.

        Batches nest: inner batches merge into the outermost change set.
        If the block raises, mutations already applied are still reported
        (the database *was* changed — observers must not go stale).
        :attr:`mutation_version` advances once per non-empty outermost
        batch, just before the observer fan-out.

        Note that derived observer structures (e.g. a session's fact index)
        are stale *inside* the batch; queries should run outside it.

        >>> with db.batch():                       # doctest: +SKIP
        ...     db.add(f1)
        ...     db.discard(f2)
        ... # one batch_applied(ChangeSet(+1, -1)) fires here
        """
        if self._batch_depth == 0:
            self._batch_changes = ChangeSet()
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0:
                changes = self._batch_changes
                self._batch_changes = None
                if changes:
                    # One version bump per non-empty batch, before the
                    # fan-out: batch-aware observers see the new version.
                    self._mutation_version += 1
                    for observer in list(self._observers):
                        # Observers are duck-typed (e.g. FactIndex aliases
                        # fact_added = add); fall back to per-fact replay
                        # for those without a batch hook.
                        handler = getattr(observer, "batch_applied", None)
                        if handler is not None:
                            handler(changes)
                        else:
                            for fact in changes.added:
                                observer.fact_added(fact)
                            for fact in changes.discarded:
                                observer.fact_discarded(fact)

    def bulk_add(self, facts: Iterable[Fact]) -> None:
        """Insert many facts; observers receive one batched notification.

        Internal indexes are updated per fact exactly as :meth:`add` does,
        but the observer fan-out is deferred to a single consolidated
        :meth:`DatabaseObserver.batch_applied` call.
        """
        with self.batch():
            for fact in facts:
                self.add(fact)

    def bulk_discard(self, facts: Iterable[Fact]) -> None:
        """Remove many facts; observers receive one batched notification."""
        with self.batch():
            for fact in facts:
                self.discard(fact)

    # -- container protocol -------------------------------------------------------

    def __contains__(self, fact: object) -> bool:
        return fact in self._facts

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def __len__(self) -> int:
        return len(self._facts)

    def __bool__(self) -> bool:
        return bool(self._facts)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, UncertainDatabase) and self._facts == other._facts

    def __repr__(self) -> str:
        return f"UncertainDatabase({len(self._facts)} facts, {len(self._blocks)} blocks)"

    # -- views ---------------------------------------------------------------------

    @property
    def schema(self) -> DatabaseSchema:
        """The database schema (relation signatures)."""
        return self._schema

    @property
    def facts(self) -> FrozenSet[Fact]:
        """An immutable snapshot of the facts."""
        return frozenset(self._facts)

    def relation_facts(self, name: str) -> FrozenSet[Fact]:
        """All facts of relation *name* (read from the per-relation index)."""
        return frozenset(self._by_relation.get(name, ()))

    def blocks(self) -> List[FrozenSet[Fact]]:
        """All blocks, as frozensets of key-equal facts."""
        return [frozenset(block) for block in self._blocks.values()]

    def block_keys(self) -> List[BlockKey]:
        """The identifiers of all blocks."""
        return list(self._blocks)

    def block_of(self, fact: Fact) -> FrozenSet[Fact]:
        """``block(A, db)``: the block containing *fact*."""
        if fact not in self._facts:
            raise KeyError(f"fact {fact} is not in the database")
        return frozenset(self._blocks[fact.block_key])

    def block(self, block_key: BlockKey) -> FrozenSet[Fact]:
        """The block identified by *block_key* (empty if absent)."""
        return frozenset(self._blocks.get(block_key, frozenset()))

    def blocks_of_relation(self, name: str) -> List[FrozenSet[Fact]]:
        """All blocks of relation *name* (read from the per-relation index)."""
        return [
            frozenset(self._blocks[key])
            for key in self._relation_block_keys.get(name, ())
        ]

    def num_blocks(self) -> int:
        """The number of blocks."""
        return len(self._blocks)

    def is_consistent(self) -> bool:
        """``True`` iff every block is a singleton (no key violations)."""
        return all(len(block) == 1 for block in self._blocks.values())

    def conflicting_blocks(self) -> List[FrozenSet[Fact]]:
        """Blocks with more than one fact (the sources of uncertainty)."""
        return [frozenset(b) for b in self._blocks.values() if len(b) > 1]

    def active_domain(self) -> FrozenSet[Constant]:
        """The set of constants occurring in the database."""
        domain: Set[Constant] = set()
        for fact in self._facts:
            domain.update(fact.terms)  # all terms of a fact are constants
        return frozenset(domain)

    def restrict_to_relations(self, names: Iterable[str]) -> "UncertainDatabase":
        """The sub-database containing only facts of the given relations.

        The restricted database keeps the relation signatures of every kept
        relation, including relations that currently have no facts.
        """
        keep = set(names)
        schema = DatabaseSchema(r for r in self._schema if r.name in keep)
        return UncertainDatabase(
            (f for f in self._facts if f.relation.name in keep), schema=schema
        )

    def copy(self) -> "UncertainDatabase":
        """A shallow copy (facts are immutable, so this is a full copy).

        Observers are *not* copied: they track the original database only.
        """
        return UncertainDatabase(self._facts, schema=DatabaseSchema(iter(self._schema)))

    def union(self, other: "UncertainDatabase") -> "UncertainDatabase":
        """The union of two uncertain databases."""
        db = self.copy()
        db.add_all(other.facts)
        return db

    # -- convenience constructors ----------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        rows: Iterable[Tuple[RelationSchema, Tuple]],
    ) -> "UncertainDatabase":
        """Build a database from ``(relation, value-tuple)`` pairs."""
        db = cls()
        for relation, values in rows:
            db.add(relation.fact(*values))
        return db

    def pretty(self) -> str:
        """A human-readable multi-line rendering grouped by relation and block."""
        lines: List[str] = []
        by_relation: Dict[str, List[BlockKey]] = {}
        for key in self._blocks:
            by_relation.setdefault(key[0], []).append(key)
        for name in sorted(by_relation):
            lines.append(f"{name}:")
            for key in sorted(by_relation[name], key=lambda k: tuple(str(c) for c in k[1])):
                rendered = sorted(str(f) for f in self._blocks[key])
                lines.append("  " + " | ".join(rendered))
        return "\n".join(lines)
