"""Database schemas: finite collections of relation schemas."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from .atoms import RelationSchema


class DatabaseSchema:
    """A finite set of relation names, each with a fixed signature."""

    def __init__(self, relations: Iterable[RelationSchema] = ()) -> None:
        self._relations: Dict[str, RelationSchema] = {}
        for relation in relations:
            self.add(relation)

    def add(self, relation: RelationSchema) -> RelationSchema:
        """Register a relation.  Re-registering an identical schema is a no-op."""
        existing = self._relations.get(relation.name)
        if existing is not None and existing != relation:
            raise ValueError(
                f"relation {relation.name!r} already declared with signature "
                f"[{existing.arity},{existing.key_size}]"
            )
        self._relations[relation.name] = relation
        return relation

    def relation(self, name: str, arity: Optional[int] = None, key_size: Optional[int] = None) -> RelationSchema:
        """Look up a relation by name, creating it if arity/key_size are given."""
        existing = self._relations.get(name)
        if existing is not None:
            if arity is not None and (existing.arity != arity or existing.key_size != (key_size or arity)):
                if key_size is not None and (existing.arity, existing.key_size) != (arity, key_size):
                    raise ValueError(f"relation {name!r} signature mismatch")
            return existing
        if arity is None:
            raise KeyError(f"unknown relation {name!r}")
        return self.add(RelationSchema(name, arity, key_size if key_size is not None else arity))

    def __getitem__(self, name: str) -> RelationSchema:
        return self._relations[name]

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def names(self) -> List[str]:
        """The relation names in insertion order."""
        return list(self._relations)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DatabaseSchema) and self._relations == other._relations

    def __repr__(self) -> str:
        inner = ", ".join(str(r) for r in self._relations.values())
        return f"DatabaseSchema({inner})"

    @classmethod
    def from_atoms(cls, atoms: Iterable) -> "DatabaseSchema":
        """Collect the relation schemas used by a set of atoms or facts."""
        schema = cls()
        for atom in atoms:
            schema.add(atom.relation)
        return schema
