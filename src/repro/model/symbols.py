"""Terms of the relational model: variables and constants.

The paper assumes two disjoint countable sets of *variables* and
*constants*.  We model both as small immutable value objects so that they
can be used as dictionary keys, members of frozensets, and compared for
equality structurally.

A :class:`Variable` is identified by its name.  A :class:`Constant` wraps an
arbitrary hashable Python value (strings, integers, tuples, ...); two
constants are equal iff their wrapped values are equal.  Tuples are allowed
as constant values because the reduction of Theorem 2 builds constants that
are pairs or triples of other constants.
"""

from __future__ import annotations

from typing import Any, Iterable, Tuple, Union


class Variable:
    """A first-order variable, identified by its name."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not isinstance(name, str) or not name:
            raise ValueError("variable name must be a non-empty string")
        self.name = name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("Variable", self.name))

    def __lt__(self, other: "Variable") -> bool:
        if not isinstance(other, Variable):
            return NotImplemented
        return self.name < other.name


class Constant:
    """A database constant wrapping an arbitrary hashable value."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        hash(value)  # raise early if the value is not hashable
        self.value = value

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    def __str__(self) -> str:
        return repr(self.value) if isinstance(self.value, tuple) else str(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Constant) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("Constant", self.value))

    def __lt__(self, other: "Constant") -> bool:
        if not isinstance(other, Constant):
            return NotImplemented
        try:
            return self.value < other.value
        except TypeError:
            return str(self.value) < str(other.value)


#: A term is either a variable or a constant.
Term = Union[Variable, Constant]


def is_variable(term: Term) -> bool:
    """Return ``True`` if *term* is a variable."""
    return isinstance(term, Variable)


def is_constant(term: Term) -> bool:
    """Return ``True`` if *term* is a constant."""
    return isinstance(term, Constant)


def variables_of(terms: Iterable[Term]) -> frozenset:
    """Return the set of variables occurring in *terms* (``vars(x⃗)``)."""
    return frozenset(t for t in terms if isinstance(t, Variable))


def constants_of(terms: Iterable[Term]) -> frozenset:
    """Return the set of constants occurring in *terms*."""
    return frozenset(t for t in terms if isinstance(t, Constant))


def make_term(value: Any) -> Term:
    """Coerce a raw Python value into a :class:`Term`.

    Strings are interpreted as variable names; every other value (and
    already-constructed terms) are passed through/wrapped as constants.
    Use :func:`make_constant` when a string should denote a constant.
    """
    if isinstance(value, (Variable, Constant)):
        return value
    if isinstance(value, str):
        return Variable(value)
    return Constant(value)


def make_constant(value: Any) -> Constant:
    """Coerce a raw Python value into a :class:`Constant`."""
    if isinstance(value, Constant):
        return value
    if isinstance(value, Variable):
        raise TypeError(f"cannot interpret variable {value} as a constant")
    return Constant(value)


def fresh_variables(prefix: str, count: int, avoid: Iterable[Variable] = ()) -> Tuple[Variable, ...]:
    """Create *count* fresh variables named ``prefix0 .. prefix{count-1}``.

    Names that collide with variables in *avoid* are suffixed with primes
    until they are fresh.
    """
    taken = {v.name for v in avoid}
    out = []
    for i in range(count):
        name = f"{prefix}{i}"
        while name in taken:
            name += "_"
        taken.add(name)
        out.append(Variable(name))
    return tuple(out)
