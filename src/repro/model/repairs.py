"""Repairs (possible worlds) of an uncertain database.

A *repair* is a maximal consistent subset of an uncertain database: it
contains exactly one fact from every block.  The number of repairs is the
product of the block sizes, so enumeration is exponential in general; the
functions below expose enumeration (as a generator), counting, sampling and
consistency checks so that callers can pick the cheapest primitive.
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, FrozenSet, Iterable, Iterator, List, Optional, Sequence

from .atoms import Fact
from .database import UncertainDatabase

#: A repair is represented as a frozenset of facts.
Repair = FrozenSet[Fact]


def count_repairs(db: UncertainDatabase) -> int:
    """The number of repairs of *db* (the product of block sizes)."""
    total = 1
    for block in db.blocks():
        total *= len(block)
    return total


def enumerate_repairs(db: UncertainDatabase) -> Iterator[Repair]:
    """Yield every repair of *db*.

    The empty database has exactly one repair: the empty set.  Blocks are
    iterated in a deterministic order so that the enumeration is stable for
    a given database.
    """
    blocks: List[Sequence[Fact]] = [
        sorted(block, key=str) for block in sorted(db.blocks(), key=_block_sort_key)
    ]
    if not blocks:
        yield frozenset()
        return
    for choice in itertools.product(*blocks):
        yield frozenset(choice)


def _block_sort_key(block: FrozenSet[Fact]) -> str:
    return min(str(f) for f in block)


def is_repair(db: UncertainDatabase, candidate: Iterable[Fact]) -> bool:
    """``True`` iff *candidate* is a repair of *db*.

    A repair must (i) be a subset of the database, (ii) be consistent, and
    (iii) contain a fact from every block (maximality).
    """
    chosen = set(candidate)
    if not chosen.issubset(db.facts):
        return False
    seen_blocks = set()
    for fact in chosen:
        key = fact.block_key
        if key in seen_blocks:
            return False
        seen_blocks.add(key)
    return seen_blocks == set(db.block_keys())


def is_possible_world(db: UncertainDatabase, candidate: Iterable[Fact]) -> bool:
    """``True`` iff *candidate* is a possible world (consistent subset) of *db*.

    Possible worlds, unlike repairs, need not be maximal (Definition 9).
    """
    chosen = set(candidate)
    if not chosen.issubset(db.facts):
        return False
    seen_blocks = set()
    for fact in chosen:
        key = fact.block_key
        if key in seen_blocks:
            return False
        seen_blocks.add(key)
    return True


def enumerate_possible_worlds(db: UncertainDatabase) -> Iterator[FrozenSet[Fact]]:
    """Yield every possible world (consistent subset) of *db*.

    The number of worlds is the product over blocks of (block size + 1),
    since a world may omit a block entirely.
    """
    blocks: List[List[Optional[Fact]]] = [
        [None] + sorted(block, key=str)
        for block in sorted(db.blocks(), key=_block_sort_key)
    ]
    if not blocks:
        yield frozenset()
        return
    for choice in itertools.product(*blocks):
        yield frozenset(fact for fact in choice if fact is not None)


def count_possible_worlds(db: UncertainDatabase) -> int:
    """The number of possible worlds of *db*."""
    total = 1
    for block in db.blocks():
        total *= len(block) + 1
    return total


def random_repair(db: UncertainDatabase, rng: Optional[random.Random] = None) -> Repair:
    """Sample a repair uniformly at random."""
    rng = rng if rng is not None else random.Random()
    return frozenset(rng.choice(sorted(block, key=str)) for block in db.blocks())


def greedy_repair(
    db: UncertainDatabase,
    prefer: Callable[[Fact], float],
) -> Repair:
    """Build a repair by picking, in each block, a fact maximising *prefer*."""
    return frozenset(max(block, key=lambda f: (prefer(f), str(f))) for block in db.blocks())


def every_repair_satisfies(
    db: UncertainDatabase,
    predicate: Callable[[Repair], bool],
) -> bool:
    """``True`` iff *predicate* holds in every repair (early exit on failure)."""
    return all(predicate(repair) for repair in enumerate_repairs(db))


def some_repair_satisfies(
    db: UncertainDatabase,
    predicate: Callable[[Repair], bool],
) -> bool:
    """``True`` iff *predicate* holds in at least one repair."""
    return any(predicate(repair) for repair in enumerate_repairs(db))


def falsifying_repair(
    db: UncertainDatabase,
    predicate: Callable[[Repair], bool],
) -> Optional[Repair]:
    """Return a repair violating *predicate*, or ``None`` if none exists.

    This is the "no"-certificate of membership in coNP mentioned in the
    introduction of the paper.
    """
    for repair in enumerate_repairs(db):
        if not predicate(repair):
            return repair
    return None
