"""Relation signatures, atoms, and facts.

Every relation name ``R`` has a fixed *signature* ``[n, k]`` with
``n >= k >= 1``: ``n`` is the arity and positions ``1..k`` form the primary
key.  ``R`` is *all-key* when ``n == k``.

An :class:`Atom` is ``R(s1, ..., sn)`` where each ``si`` is a variable or a
constant.  Following the paper we write atoms as ``R(x⃗ | y⃗)`` with the
primary-key positions first.  A :class:`Fact` is an atom without variables.
Two facts are *key-equal* when they have the same relation name and agree on
the key positions.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence, Tuple

from .symbols import Constant, Term, Variable, constants_of, make_constant, make_term, variables_of


class RelationSchema:
    """A relation name together with its signature ``[arity, key_size]``."""

    __slots__ = ("name", "arity", "key_size")

    def __init__(self, name: str, arity: int, key_size: int) -> None:
        if not isinstance(name, str) or not name:
            raise ValueError("relation name must be a non-empty string")
        if not (isinstance(arity, int) and isinstance(key_size, int)):
            raise TypeError("arity and key_size must be integers")
        if not (arity >= key_size >= 1):
            raise ValueError(
                f"signature [{arity},{key_size}] violates n >= k >= 1 for relation {name!r}"
            )
        self.name = name
        self.arity = arity
        self.key_size = key_size

    @property
    def is_all_key(self) -> bool:
        """``True`` iff every position belongs to the primary key."""
        return self.arity == self.key_size

    @property
    def key_positions(self) -> range:
        """0-based positions of the primary key."""
        return range(self.key_size)

    @property
    def nonkey_positions(self) -> range:
        """0-based positions outside the primary key."""
        return range(self.key_size, self.arity)

    def __repr__(self) -> str:
        return f"RelationSchema({self.name!r}, arity={self.arity}, key_size={self.key_size})"

    def __str__(self) -> str:
        return f"{self.name}[{self.arity},{self.key_size}]"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RelationSchema)
            and self.name == other.name
            and self.arity == other.arity
            and self.key_size == other.key_size
        )

    def __hash__(self) -> int:
        return hash(("RelationSchema", self.name, self.arity, self.key_size))

    def atom(self, *terms: Any) -> "Atom":
        """Build an atom over this relation from raw term values."""
        return Atom(self, tuple(make_term(t) for t in terms))

    def fact(self, *values: Any) -> "Fact":
        """Build a fact over this relation from raw constant values."""
        return Fact(self, tuple(make_constant(v) for v in values))


class Atom:
    """An atom ``R(s1, ..., sn)`` over a relation schema."""

    __slots__ = ("relation", "terms", "_hash")

    def __init__(self, relation: RelationSchema, terms: Sequence[Term]) -> None:
        terms = tuple(terms)
        if len(terms) != relation.arity:
            raise ValueError(
                f"atom over {relation} needs {relation.arity} terms, got {len(terms)}"
            )
        for t in terms:
            if not isinstance(t, (Variable, Constant)):
                raise TypeError(f"term {t!r} is neither a Variable nor a Constant")
        self.relation = relation
        self.terms = terms
        self._hash = hash(("Atom", relation, terms))

    # -- structural accessors -------------------------------------------------

    @property
    def name(self) -> str:
        """The relation name."""
        return self.relation.name

    @property
    def key_terms(self) -> Tuple[Term, ...]:
        """The terms in primary-key positions (``x⃗``)."""
        return self.terms[: self.relation.key_size]

    @property
    def nonkey_terms(self) -> Tuple[Term, ...]:
        """The terms outside the primary key (``y⃗``)."""
        return self.terms[self.relation.key_size :]

    @property
    def key_variables(self) -> frozenset:
        """``key(F)``: the variables occurring in key positions."""
        return variables_of(self.key_terms)

    @property
    def variables(self) -> frozenset:
        """``vars(F)``: all variables occurring in the atom."""
        return variables_of(self.terms)

    @property
    def nonkey_variables(self) -> frozenset:
        """The variables occurring only counted from non-key positions."""
        return variables_of(self.nonkey_terms)

    @property
    def constants(self) -> frozenset:
        """All constants occurring in the atom."""
        return constants_of(self.terms)

    @property
    def is_fact(self) -> bool:
        """``True`` iff the atom contains no variable."""
        return not self.variables

    # -- behaviour -------------------------------------------------------------

    def __repr__(self) -> str:
        return f"Atom({self!s})"

    def __str__(self) -> str:
        key = ", ".join(str(t) for t in self.key_terms)
        rest = ", ".join(str(t) for t in self.nonkey_terms)
        if rest:
            return f"{self.name}({key} | {rest})"
        return f"{self.name}({key})"

    def __eq__(self, other: object) -> bool:
        # A Fact compares equal to a ground Atom with the same relation and
        # terms: a fact *is* an atom without variables.
        return (
            isinstance(other, Atom)
            and self.relation == other.relation
            and self.terms == other.terms
        )

    def __hash__(self) -> int:
        return self._hash

    def __getstate__(self):
        # The cached hash must NOT cross process boundaries: string hashing
        # is salted per interpreter (PYTHONHASHSEED), so an unpickled atom
        # carrying its origin process's hash would be == to a locally built
        # atom yet land in a different hash bucket — silently breaking set
        # and dict membership (e.g. facts shipped to parallel workers).
        return (self.relation, self.terms)

    def __setstate__(self, state) -> None:
        relation, terms = state
        self.relation = relation
        self.terms = terms
        self._hash = hash(("Atom", relation, terms))

    def to_fact(self) -> "Fact":
        """Convert a variable-free atom into a :class:`Fact`."""
        if self.variables:
            raise ValueError(f"atom {self} contains variables and is not a fact")
        return Fact(self.relation, self.terms)

    def rename_relation(self, relation: RelationSchema) -> "Atom":
        """Return the same atom over a different (same-signature) relation."""
        if (relation.arity, relation.key_size) != (self.relation.arity, self.relation.key_size):
            raise ValueError("target relation must have the same signature")
        return Atom(relation, self.terms)


class Fact(Atom):
    """A variable-free atom.  Facts populate uncertain databases."""

    __slots__ = ()

    def __init__(self, relation: RelationSchema, terms: Sequence[Term]) -> None:
        super().__init__(relation, terms)
        if self.variables:
            raise ValueError(f"fact must not contain variables: {self}")

    @property
    def key_values(self) -> Tuple[Constant, ...]:
        """The constants in primary-key positions."""
        return self.key_terms  # type: ignore[return-value]

    @property
    def values(self) -> Tuple[Any, ...]:
        """The raw Python values of all positions."""
        return tuple(t.value for t in self.terms)  # type: ignore[union-attr]

    @property
    def block_key(self) -> Tuple[str, Tuple[Constant, ...]]:
        """The identifier of the block this fact belongs to."""
        return (self.relation.name, self.key_terms)

    def __repr__(self) -> str:
        return f"Fact({self!s})"

    def key_equal(self, other: "Fact") -> bool:
        """``True`` iff the two facts are key-equal (same relation, same key)."""
        return (
            self.relation.name == other.relation.name
            and self.key_terms == other.key_terms
        )


def atoms_use_distinct_relations(atoms: Iterable[Atom]) -> bool:
    """``True`` iff no relation name appears twice (i.e., no self-join)."""
    seen = set()
    for atom in atoms:
        if atom.name in seen:
            return False
        seen.add(atom.name)
    return True
