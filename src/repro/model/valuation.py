"""Valuations: total mappings from variables to constants.

A valuation over a set of variables ``U`` maps every variable of ``U`` to a
constant, and is extended to be the identity on constants and on variables
outside ``U`` (Section 3 of the paper).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Tuple

from .atoms import Atom, Fact
from .symbols import Constant, Term, Variable, make_constant


class Valuation:
    """A total mapping from a finite set of variables to constants.

    The mapping is immutable; :meth:`extend` returns a new valuation.
    """

    __slots__ = ("_mapping",)

    def __init__(self, mapping: Optional[Mapping[Variable, Constant]] = None) -> None:
        items: Dict[Variable, Constant] = {}
        for var, value in (mapping or {}).items():
            if not isinstance(var, Variable):
                raise TypeError(f"valuation keys must be variables, got {var!r}")
            items[var] = make_constant(value)
        self._mapping = items

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[Variable, Any]]) -> "Valuation":
        """Build a valuation from ``(variable, raw value)`` pairs."""
        return cls({var: make_constant(val) for var, val in pairs})

    def extend(self, var: Variable, value: Any) -> "Valuation":
        """Return a new valuation that additionally maps *var* to *value*.

        Raises ``ValueError`` if *var* is already bound to a different value.
        """
        constant = make_constant(value)
        existing = self._mapping.get(var)
        if existing is not None and existing != constant:
            raise ValueError(f"variable {var} already bound to {existing}, not {constant}")
        new = dict(self._mapping)
        new[var] = constant
        return Valuation(new)

    def merge(self, other: "Valuation") -> Optional["Valuation"]:
        """Merge two valuations; return ``None`` if they conflict."""
        new = dict(self._mapping)
        for var, value in other._mapping.items():
            existing = new.get(var)
            if existing is not None and existing != value:
                return None
            new[var] = value
        return Valuation(new)

    def restrict(self, variables: Iterable[Variable]) -> "Valuation":
        """Return the restriction of the valuation to *variables*."""
        keep = set(variables)
        return Valuation({v: c for v, c in self._mapping.items() if v in keep})

    def override(self, mapping: Mapping[Variable, Any]) -> "Valuation":
        """Return ``θ[x⃗ ↦ a⃗]``: rebind the given variables, keep the rest."""
        new = dict(self._mapping)
        for var, value in mapping.items():
            new[var] = make_constant(value)
        return Valuation(new)

    # -- application -----------------------------------------------------------

    def apply_term(self, term: Term) -> Term:
        """Apply the valuation to a single term (identity outside the domain)."""
        if isinstance(term, Variable):
            return self._mapping.get(term, term)
        return term

    def apply_atom(self, atom: Atom) -> Atom:
        """Apply the valuation to every term of *atom*."""
        terms = tuple(self.apply_term(t) for t in atom.terms)
        image = Atom(atom.relation, terms)
        if not image.variables:
            return image.to_fact()
        return image

    def ground(self, atom: Atom) -> Fact:
        """Apply the valuation and require the result to be a fact."""
        image = self.apply_atom(atom)
        if image.variables:
            missing = ", ".join(sorted(v.name for v in image.variables))
            raise ValueError(f"valuation does not cover variables: {missing}")
        return image if isinstance(image, Fact) else image.to_fact()

    # -- mapping protocol --------------------------------------------------------

    def __getitem__(self, var: Variable) -> Constant:
        return self._mapping[var]

    def get(self, var: Variable, default: Optional[Constant] = None) -> Optional[Constant]:
        """Return the binding of *var*, or *default* if unbound."""
        return self._mapping.get(var, default)

    def __contains__(self, var: object) -> bool:
        return var in self._mapping

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._mapping)

    def __len__(self) -> int:
        return len(self._mapping)

    def items(self) -> Iterable[Tuple[Variable, Constant]]:
        """Iterate over ``(variable, constant)`` bindings."""
        return self._mapping.items()

    def domain(self) -> frozenset:
        """The set of variables the valuation is defined on."""
        return frozenset(self._mapping)

    def as_dict(self) -> Dict[Variable, Constant]:
        """A copy of the underlying mapping."""
        return dict(self._mapping)

    # -- value semantics ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Valuation) and self._mapping == other._mapping

    def __hash__(self) -> int:
        return hash(frozenset(self._mapping.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{v}→{c}" for v, c in sorted(self._mapping.items(), key=lambda p: p[0].name))
        return f"Valuation({{{inner}}})"


EMPTY_VALUATION = Valuation()
