"""Relational model substrate: terms, atoms, facts, schemas, databases, repairs."""

from .atoms import Atom, Fact, RelationSchema, atoms_use_distinct_relations
from .database import BlockKey, ChangeSet, DatabaseObserver, UncertainDatabase
from .repairs import (
    Repair,
    count_possible_worlds,
    count_repairs,
    enumerate_possible_worlds,
    enumerate_repairs,
    every_repair_satisfies,
    falsifying_repair,
    greedy_repair,
    is_possible_world,
    is_repair,
    random_repair,
    some_repair_satisfies,
)
from .schema import DatabaseSchema
from .symbols import (
    Constant,
    Term,
    Variable,
    constants_of,
    fresh_variables,
    is_constant,
    is_variable,
    make_constant,
    make_term,
    variables_of,
)
from .valuation import EMPTY_VALUATION, Valuation

__all__ = [
    "Atom",
    "BlockKey",
    "ChangeSet",
    "Constant",
    "DatabaseObserver",
    "DatabaseSchema",
    "EMPTY_VALUATION",
    "Fact",
    "RelationSchema",
    "Repair",
    "Term",
    "UncertainDatabase",
    "Valuation",
    "Variable",
    "atoms_use_distinct_relations",
    "constants_of",
    "count_possible_worlds",
    "count_repairs",
    "enumerate_possible_worlds",
    "enumerate_repairs",
    "every_repair_satisfies",
    "falsifying_repair",
    "fresh_variables",
    "greedy_repair",
    "is_constant",
    "is_possible_world",
    "is_repair",
    "is_variable",
    "make_constant",
    "make_term",
    "random_repair",
    "some_repair_satisfies",
    "variables_of",
]
