"""A small first-order logic over database atoms.

Theorem 1 of the paper characterises when ``CERTAINTY(q)`` is *first-order
expressible*: there is a first-order sentence ``φ`` (the *certain first-order
rewriting*) such that ``db ∈ CERTAINTY(q)`` iff ``db |= φ``.  To make that
statement executable, this package provides a formula AST
(:mod:`repro.fo.formulas`), a model checker over uncertain databases
(:mod:`repro.fo.evaluate`) and the rewriting generator
(:mod:`repro.fo.rewrite`).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Mapping, Sequence, Tuple

from ..model.atoms import Atom
from ..model.symbols import Constant, Term, Variable


class Formula:
    """Base class of first-order formulas."""

    def free_variables(self) -> FrozenSet[Variable]:
        """The free variables of the formula."""
        raise NotImplementedError

    # -- convenience combinators -------------------------------------------------

    def __and__(self, other: "Formula") -> "Formula":
        return And([self, other])

    def __or__(self, other: "Formula") -> "Formula":
        return Or([self, other])

    def __invert__(self) -> "Formula":
        return Not(self)


class Top(Formula):
    """The formula ``true``."""

    def free_variables(self) -> FrozenSet[Variable]:
        return frozenset()

    def __repr__(self) -> str:
        return "⊤"


class Bottom(Formula):
    """The formula ``false``."""

    def free_variables(self) -> FrozenSet[Variable]:
        return frozenset()

    def __repr__(self) -> str:
        return "⊥"


class AtomFormula(Formula):
    """An atomic formula ``R(t1, ..., tn)``."""

    def __init__(self, atom: Atom) -> None:
        self.atom = atom

    def free_variables(self) -> FrozenSet[Variable]:
        return self.atom.variables

    def __repr__(self) -> str:
        return str(self.atom)


class Equals(Formula):
    """An equality ``t1 = t2`` between terms."""

    def __init__(self, left: Term, right: Term) -> None:
        self.left = left
        self.right = right

    def free_variables(self) -> FrozenSet[Variable]:
        out = set()
        for term in (self.left, self.right):
            if isinstance(term, Variable):
                out.add(term)
        return frozenset(out)

    def __repr__(self) -> str:
        return f"({self.left} = {self.right})"


class Not(Formula):
    """Negation."""

    def __init__(self, operand: Formula) -> None:
        self.operand = operand

    def free_variables(self) -> FrozenSet[Variable]:
        return self.operand.free_variables()

    def __repr__(self) -> str:
        return f"¬{self.operand!r}"


class And(Formula):
    """Finite conjunction (empty conjunction is ``true``)."""

    def __init__(self, operands: Iterable[Formula]) -> None:
        self.operands: Tuple[Formula, ...] = tuple(operands)

    def free_variables(self) -> FrozenSet[Variable]:
        out: set = set()
        for operand in self.operands:
            out |= operand.free_variables()
        return frozenset(out)

    def __repr__(self) -> str:
        if not self.operands:
            return "⊤"
        return "(" + " ∧ ".join(repr(o) for o in self.operands) + ")"


class Or(Formula):
    """Finite disjunction (empty disjunction is ``false``)."""

    def __init__(self, operands: Iterable[Formula]) -> None:
        self.operands: Tuple[Formula, ...] = tuple(operands)

    def free_variables(self) -> FrozenSet[Variable]:
        out: set = set()
        for operand in self.operands:
            out |= operand.free_variables()
        return frozenset(out)

    def __repr__(self) -> str:
        if not self.operands:
            return "⊥"
        return "(" + " ∨ ".join(repr(o) for o in self.operands) + ")"


class Implies(Formula):
    """Implication ``antecedent → consequent``."""

    def __init__(self, antecedent: Formula, consequent: Formula) -> None:
        self.antecedent = antecedent
        self.consequent = consequent

    def free_variables(self) -> FrozenSet[Variable]:
        return self.antecedent.free_variables() | self.consequent.free_variables()

    def __repr__(self) -> str:
        return f"({self.antecedent!r} → {self.consequent!r})"


class Exists(Formula):
    """Existential quantification over a sequence of variables."""

    def __init__(self, variables: Sequence[Variable], operand: Formula) -> None:
        self.variables: Tuple[Variable, ...] = tuple(variables)
        self.operand = operand

    def free_variables(self) -> FrozenSet[Variable]:
        return self.operand.free_variables() - frozenset(self.variables)

    def __repr__(self) -> str:
        if not self.variables:
            return repr(self.operand)
        quantified = " ".join(v.name for v in self.variables)
        return f"∃{quantified}.{self.operand!r}"


class Forall(Formula):
    """Universal quantification over a sequence of variables."""

    def __init__(self, variables: Sequence[Variable], operand: Formula) -> None:
        self.variables: Tuple[Variable, ...] = tuple(variables)
        self.operand = operand

    def free_variables(self) -> FrozenSet[Variable]:
        return self.operand.free_variables() - frozenset(self.variables)

    def __repr__(self) -> str:
        if not self.variables:
            return repr(self.operand)
        quantified = " ".join(v.name for v in self.variables)
        return f"∀{quantified}.{self.operand!r}"


def conjunction(operands: Sequence[Formula]) -> Formula:
    """Flattened conjunction avoiding redundant ``⊤`` members."""
    flattened: List[Formula] = []
    for operand in operands:
        if isinstance(operand, Top):
            continue
        if isinstance(operand, And):
            flattened.extend(operand.operands)
        else:
            flattened.append(operand)
    if not flattened:
        return Top()
    if len(flattened) == 1:
        return flattened[0]
    return And(flattened)


def disjunction(operands: Sequence[Formula]) -> Formula:
    """Flattened disjunction avoiding redundant ``⊥`` members."""
    flattened: List[Formula] = []
    for operand in operands:
        if isinstance(operand, Bottom):
            continue
        if isinstance(operand, Or):
            flattened.extend(operand.operands)
        else:
            flattened.append(operand)
    if not flattened:
        return Bottom()
    if len(flattened) == 1:
        return flattened[0]
    return Or(flattened)


def replace_constants(formula: Formula, mapping: "Mapping[Constant, Term]") -> Formula:
    """Replace constants by terms throughout the formula (capture is the
    caller's responsibility: replacement variables must not collide with
    quantified ones).

    Used by the engine to turn the rewriting of a *representative grounding*
    back into an open formula: the placeholder constants become the query's
    free variables, giving one compiled plan that serves every candidate
    tuple of a batched ``certain_answers`` via a valuation.
    """

    def term(t: Term) -> Term:
        return mapping.get(t, t) if not isinstance(t, Variable) else t

    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, AtomFormula):
        atom = formula.atom
        return AtomFormula(Atom(atom.relation, tuple(term(t) for t in atom.terms)))
    if isinstance(formula, Equals):
        return Equals(term(formula.left), term(formula.right))
    if isinstance(formula, Not):
        return Not(replace_constants(formula.operand, mapping))
    if isinstance(formula, And):
        return And([replace_constants(o, mapping) for o in formula.operands])
    if isinstance(formula, Or):
        return Or([replace_constants(o, mapping) for o in formula.operands])
    if isinstance(formula, Implies):
        return Implies(
            replace_constants(formula.antecedent, mapping),
            replace_constants(formula.consequent, mapping),
        )
    if isinstance(formula, Exists):
        return Exists(formula.variables, replace_constants(formula.operand, mapping))
    if isinstance(formula, Forall):
        return Forall(formula.variables, replace_constants(formula.operand, mapping))
    raise TypeError(f"unknown formula node {formula!r}")


def formula_size(formula: Formula) -> int:
    """The number of AST nodes (a rough measure of rewriting size)."""
    if isinstance(formula, (Top, Bottom, AtomFormula, Equals)):
        return 1
    if isinstance(formula, Not):
        return 1 + formula_size(formula.operand)
    if isinstance(formula, (And, Or)):
        return 1 + sum(formula_size(o) for o in formula.operands)
    if isinstance(formula, Implies):
        return 1 + formula_size(formula.antecedent) + formula_size(formula.consequent)
    if isinstance(formula, (Exists, Forall)):
        return 1 + formula_size(formula.operand)
    raise TypeError(f"unknown formula node {formula!r}")
