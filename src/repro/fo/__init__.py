"""First-order logic: formulas, model checking, and certain FO rewritings.

The package contains the formula AST (:mod:`repro.fo.formulas`), the model
checker (:mod:`repro.fo.evaluate`), the set-at-a-time plan compiler that
backs its fast path (:mod:`repro.fo.compile`), and the certain-rewriting
generator of Theorem 1 (:mod:`repro.fo.rewrite`).
"""

from .compile import CompiledFormula, EvalContext, compile_formula, push_negation
from .evaluate import FormulaEvaluator, evaluate_sentence
from .formulas import (
    And,
    AtomFormula,
    Bottom,
    Equals,
    Exists,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Top,
    conjunction,
    disjunction,
    formula_size,
)
from .rewrite import certain_rewriting, certain_rewriting_cached

__all__ = [
    "And",
    "AtomFormula",
    "Bottom",
    "CompiledFormula",
    "Equals",
    "EvalContext",
    "Exists",
    "Forall",
    "Formula",
    "FormulaEvaluator",
    "Implies",
    "Not",
    "Or",
    "Top",
    "certain_rewriting",
    "certain_rewriting_cached",
    "compile_formula",
    "conjunction",
    "disjunction",
    "evaluate_sentence",
    "formula_size",
    "push_negation",
]
