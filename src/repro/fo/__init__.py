"""First-order logic: formulas, model checking, and certain FO rewritings."""

from .evaluate import FormulaEvaluator, evaluate_sentence
from .formulas import (
    And,
    AtomFormula,
    Bottom,
    Equals,
    Exists,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Top,
    conjunction,
    disjunction,
    formula_size,
)
from .rewrite import certain_rewriting

__all__ = [
    "And",
    "AtomFormula",
    "Bottom",
    "Equals",
    "Exists",
    "Forall",
    "Formula",
    "FormulaEvaluator",
    "Implies",
    "Not",
    "Or",
    "Top",
    "certain_rewriting",
    "conjunction",
    "disjunction",
    "evaluate_sentence",
    "formula_size",
]
