"""Model checking of first-order formulas over uncertain databases.

A database is viewed as an ordinary relational structure (the key
constraints play no role in plain satisfaction).  Quantifiers range over the
*active domain* of the database, which is the standard semantics for certain
first-order rewritings.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Sequence

from ..model.atoms import Fact
from ..model.database import UncertainDatabase
from ..model.symbols import Constant, Variable
from ..model.valuation import Valuation
from ..query.evaluation import FactIndex, match_atom
from .formulas import (
    And,
    AtomFormula,
    Bottom,
    Equals,
    Exists,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Top,
)


class FormulaEvaluator:
    """Evaluate formulas against a fixed database (facts + active domain)."""

    def __init__(self, db: UncertainDatabase, domain: Optional[Iterable[Constant]] = None) -> None:
        self.db = db
        self.index = FactIndex(db.facts)
        self.domain: Sequence[Constant] = sorted(
            set(domain) if domain is not None else db.active_domain(), key=str
        )

    def evaluate(self, formula: Formula, valuation: Optional[Valuation] = None) -> bool:
        """``db |= formula [valuation]`` under active-domain semantics."""
        valuation = valuation if valuation is not None else Valuation()
        missing = formula.free_variables() - valuation.domain()
        if missing:
            names = ", ".join(sorted(v.name for v in missing))
            raise ValueError(f"free variables not bound by the valuation: {names}")
        return self._eval(formula, valuation)

    # -- recursive evaluation -----------------------------------------------------

    def _eval(self, formula: Formula, valuation: Valuation) -> bool:
        if isinstance(formula, Top):
            return True
        if isinstance(formula, Bottom):
            return False
        if isinstance(formula, AtomFormula):
            grounded = valuation.apply_atom(formula.atom)
            if grounded.variables:
                raise ValueError(f"atom {formula.atom} not fully bound during evaluation")
            return grounded.to_fact() in self.db
        if isinstance(formula, Equals):
            left = valuation.apply_term(formula.left)
            right = valuation.apply_term(formula.right)
            return left == right
        if isinstance(formula, Not):
            return not self._eval(formula.operand, valuation)
        if isinstance(formula, And):
            return all(self._eval(o, valuation) for o in formula.operands)
        if isinstance(formula, Or):
            return any(self._eval(o, valuation) for o in formula.operands)
        if isinstance(formula, Implies):
            if not self._eval(formula.antecedent, valuation):
                return True
            return self._eval(formula.consequent, valuation)
        if isinstance(formula, Exists):
            return self._eval_quantifier(formula.variables, formula.operand, valuation, existential=True)
        if isinstance(formula, Forall):
            return self._eval_quantifier(formula.variables, formula.operand, valuation, existential=False)
        raise TypeError(f"unknown formula node {formula!r}")

    def _eval_quantifier(
        self,
        variables: Sequence[Variable],
        operand: Formula,
        valuation: Valuation,
        existential: bool,
    ) -> bool:
        if not variables:
            return self._eval(operand, valuation)
        head, rest = variables[0], variables[1:]
        for value in self.domain:
            extended = valuation.override({head: value})
            result = self._eval_quantifier(rest, operand, extended, existential)
            if existential and result:
                return True
            if not existential and not result:
                return False
        return not existential


def evaluate_sentence(db: UncertainDatabase, formula: Formula) -> bool:
    """Evaluate a sentence (no free variables) against *db*."""
    return FormulaEvaluator(db).evaluate(formula)
