"""Model checking of first-order formulas over uncertain databases.

A database is viewed as an ordinary relational structure (the key
constraints play no role in plain satisfaction).  Quantifiers range over the
*active domain* of the database, which is the standard semantics for certain
first-order rewritings.

Two evaluation strategies are available:

* the **compiled** strategy (the default): the formula is compiled once by
  :mod:`repro.fo.compile` into a bottom-up set-at-a-time relational plan —
  atom leaves scan :class:`~repro.query.evaluation.FactIndex` entries,
  quantifiers become projections and guarded anti-joins — so evaluation
  cost tracks the data actually matching the formula's atoms instead of
  ``|adom|^quantifier-depth``;
* the **naive** strategy (``compiled=False``): the textbook recursive
  model checker that enumerates the active domain for every quantified
  variable.  It is kept as the executable definition of the semantics and
  as the reference side of the differential tests.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..model.database import UncertainDatabase
from ..model.symbols import Constant, Variable
from ..model.valuation import Valuation
from ..query.evaluation import FactIndex
from .compile import EvalContext, compile_formula
from .formulas import (
    And,
    AtomFormula,
    Bottom,
    Equals,
    Exists,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Top,
)


class FormulaEvaluator:
    """Evaluate formulas against a fixed database (facts + active domain).

    Parameters
    ----------
    db:
        The database acting as the relational structure.
    domain:
        Quantification domain; defaults to the active domain of *db*.
    index:
        An externally shared :class:`FactIndex` over *db* (e.g. the
        incrementally maintained index of an engine session, via
        ``SolverContext.index_for``).  When omitted, one is built from the
        database's facts.
    compiled:
        When ``True`` (the default) formulas are evaluated through the
        set-at-a-time plans of :mod:`repro.fo.compile`; ``False`` selects
        the naive active-domain recursion.
    """

    def __init__(
        self,
        db: UncertainDatabase,
        domain: Optional[Iterable[Constant]] = None,
        index: Optional[FactIndex] = None,
        compiled: bool = True,
    ) -> None:
        self.db = db
        self.index = index if index is not None else FactIndex(db.facts)
        self._explicit_domain = domain is not None
        # The active domain is only needed by the naive recursion (and by
        # the rare unguarded compiled fallbacks, which derive it from the
        # index themselves), so it is collected lazily — the compiled fast
        # path must not pay an O(|db| log |db|) setup scan it never reads.
        self._domain: Optional[Sequence[Constant]] = (
            sorted(set(domain), key=str) if domain is not None else None
        )
        self.compiled = compiled
        self._context: Optional[EvalContext] = None

    @property
    def domain(self) -> Sequence[Constant]:
        """The quantification domain (defaults to the active domain of the db)."""
        if self._domain is None:
            self._domain = sorted(self.db.active_domain(), key=str)
        return self._domain

    def evaluate(self, formula: Formula, valuation: Optional[Valuation] = None) -> bool:
        """``db |= formula [valuation]`` under active-domain semantics."""
        valuation = valuation if valuation is not None else Valuation()
        missing = formula.free_variables() - valuation.domain()
        if missing:
            names = ", ".join(sorted(v.name for v in missing))
            raise ValueError(f"free variables not bound by the valuation: {names}")
        if self.compiled:
            return compile_formula(formula).evaluate(
                context=self._eval_context(), valuation=valuation
            )
        return self._eval(formula, valuation)

    def _eval_context(self) -> EvalContext:
        """The (lazily built, reused) compiled-plan context over the index."""
        if self._context is None:
            self._context = EvalContext(
                self.index, domain=self.domain if self._explicit_domain else None
            )
        return self._context

    # -- recursive evaluation -----------------------------------------------------

    def _eval(self, formula: Formula, valuation: Valuation) -> bool:
        if isinstance(formula, Top):
            return True
        if isinstance(formula, Bottom):
            return False
        if isinstance(formula, AtomFormula):
            grounded = valuation.apply_atom(formula.atom)
            if grounded.variables:
                raise ValueError(f"atom {formula.atom} not fully bound during evaluation")
            return grounded.to_fact() in self.index
        if isinstance(formula, Equals):
            left = valuation.apply_term(formula.left)
            right = valuation.apply_term(formula.right)
            return left == right
        if isinstance(formula, Not):
            return not self._eval(formula.operand, valuation)
        if isinstance(formula, And):
            return all(self._eval(o, valuation) for o in formula.operands)
        if isinstance(formula, Or):
            return any(self._eval(o, valuation) for o in formula.operands)
        if isinstance(formula, Implies):
            if not self._eval(formula.antecedent, valuation):
                return True
            return self._eval(formula.consequent, valuation)
        if isinstance(formula, Exists):
            return self._eval_quantifier(formula.variables, formula.operand, valuation, existential=True)
        if isinstance(formula, Forall):
            return self._eval_quantifier(formula.variables, formula.operand, valuation, existential=False)
        raise TypeError(f"unknown formula node {formula!r}")

    def _eval_quantifier(
        self,
        variables: Sequence[Variable],
        operand: Formula,
        valuation: Valuation,
        existential: bool,
    ) -> bool:
        if not variables:
            return self._eval(operand, valuation)
        head, rest = variables[0], variables[1:]
        for value in self.domain:
            extended = valuation.override({head: value})
            result = self._eval_quantifier(rest, operand, extended, existential)
            if existential and result:
                return True
            if not existential and not result:
                return False
        return not existential


def evaluate_sentence(
    db: UncertainDatabase,
    formula: Formula,
    compiled: bool = True,
    index: Optional[FactIndex] = None,
) -> bool:
    """Evaluate a sentence (no free variables) against *db*.

    *compiled* selects the set-at-a-time plan evaluator (the fast path);
    pass ``compiled=False`` for the naive active-domain recursion.  An
    externally maintained *index* over *db* avoids the O(|db|) rebuild.
    """
    return FormulaEvaluator(db, index=index, compiled=compiled).evaluate(formula)
