"""Certain first-order rewritings for queries with an acyclic attack graph.

Theorem 1: ``CERTAINTY(q)`` is first-order expressible iff the attack graph
of ``q`` is acyclic.  This module constructs an explicit rewriting ``φ``
with ``db |= φ  ⇔  db ∈ CERTAINTY(q)`` by the classical unattacked-atom
construction (Fuxman–Miller style, as generalised by Wijsen): peel an
unattacked atom ``F = R(x⃗ | y⃗)`` and emit

    ``∃ vars(F) [ F  ∧  ∀ w⃗ ( R(x⃗, w⃗) → pattern-conditions ∧ φ' ) ]``

where ``w⃗`` are fresh variables for the non-key positions, the pattern
conditions equate them with the constants / repeated variables of ``F``, and
``φ'`` is the rewriting of the remaining query with ``F``'s non-key
variables renamed to the corresponding ``w``.

The resulting sentence is evaluated with
:class:`repro.fo.evaluate.FormulaEvaluator`.  Since the evaluator's compiled
set-at-a-time path (:mod:`repro.fo.compile`) made guarded evaluation as fast
as the peeling solver, the rewriting is the *operational counterpart of
Theorem 1* — the engine's production execution strategy for FO-band queries
(see :func:`repro.certainty.rewriting.certain_fo_rewriting`) — and no longer
just a test oracle; the test suite still verifies it against both the
peeling solver and the brute-force oracle.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, FrozenSet, List

from ..attacks.graph import AttackGraph
from ..certainty.exceptions import UnsupportedQueryError
from ..model.atoms import Atom
from ..model.symbols import Variable, is_constant
from ..query.conjunctive import ConjunctiveQuery
from ..query.substitution import rename_variables
from .formulas import AtomFormula, Equals, Exists, Forall, Formula, Implies, Top, conjunction


class _FreshNames:
    """A supply of fresh variable names avoiding a set of reserved names."""

    def __init__(self, reserved: FrozenSet[str]) -> None:
        self._reserved = set(reserved)
        self._counter = 0

    def fresh(self, hint: str) -> Variable:
        while True:
            name = f"{hint}_{self._counter}"
            self._counter += 1
            if name not in self._reserved:
                self._reserved.add(name)
                return Variable(name)


def certain_rewriting(query: ConjunctiveQuery) -> Formula:
    """The certain first-order rewriting of *query* (acyclic attack graph only)."""
    boolean = query.as_boolean() if not query.is_boolean else query
    if boolean.has_self_join:
        raise UnsupportedQueryError("certain rewritings require self-join-free queries")
    if not boolean.is_empty and not AttackGraph(boolean).is_acyclic():
        raise UnsupportedQueryError(
            f"the attack graph of {boolean} is cyclic; no certain FO rewriting exists (Theorem 1)"
        )
    names = _FreshNames(frozenset(v.name for v in boolean.variables))
    return _rewrite(boolean, frozenset(), names)


@lru_cache(maxsize=512)
def certain_rewriting_cached(query: ConjunctiveQuery) -> Formula:
    """Memoised :func:`certain_rewriting`.

    The construction is pure and deterministic, so repeated executions of
    the same query (or of the per-candidate groundings of a batched
    ``certain_answers`` call) share one formula object — which in turn
    shares one compiled plan through the identity-keyed memo of
    :func:`repro.fo.compile.compile_formula`.

    Concurrency: ``lru_cache`` keeps its bookkeeping consistent under
    concurrent callers; two threads racing on the same uncached query may
    each build a rewriting, in which case one formula object wins the cache
    and later calls converge on it (both objects are semantically equal, so
    correctness is unaffected either way).
    """
    return certain_rewriting(query)


def _rewrite(
    query: ConjunctiveQuery,
    frozen: FrozenSet[Variable],
    names: _FreshNames,
) -> Formula:
    if query.is_empty:
        return Top()
    graph = AttackGraph(query)
    unattacked = graph.unattacked_atoms()
    if not unattacked:
        raise UnsupportedQueryError(
            f"residual query {query} has no unattacked atom; the rewriting construction fails"
        )
    atom = min(unattacked, key=lambda a: (len(a.variables), str(a)))
    rest = query.without(atom)

    exist_vars = sorted(atom.variables - frozen, key=lambda v: v.name)

    fresh_vars: List[Variable] = []
    conditions: List[Formula] = []
    renaming: Dict[Variable, Variable] = {}
    key_vars = atom.key_variables
    for position, term in enumerate(atom.nonkey_terms):
        fresh = names.fresh("w")
        fresh_vars.append(fresh)
        if is_constant(term):
            conditions.append(Equals(fresh, term))
        elif term in key_vars or term in frozen:
            conditions.append(Equals(fresh, term))
        elif term in renaming:
            conditions.append(Equals(fresh, renaming[term]))
        else:
            renaming[term] = fresh

    universal_atom = Atom(atom.relation, tuple(atom.key_terms) + tuple(fresh_vars))
    rest_renamed = rename_variables(rest, renaming)
    inner_frozen = frozen | atom.variables | frozenset(fresh_vars)
    inner = _rewrite(rest_renamed, inner_frozen, names)

    consequent = conjunction(conditions + [inner])
    universal = Forall(fresh_vars, Implies(AtomFormula(universal_atom), consequent))
    body = conjunction([AtomFormula(atom), universal])
    if exist_vars:
        return Exists(exist_vars, body)
    return body
