"""Compilation of first-order formulas into set-at-a-time relational plans.

The naive :class:`~repro.fo.evaluate.FormulaEvaluator` enumerates the entire
active domain for every quantified variable, which makes evaluation of the
certain first-order rewritings of Theorem 1 exponential in quantifier depth.
This module restores the promise of the theorem — FO-expressible means
*evaluable by an ordinary database engine* — by compiling each subformula
once into a :class:`PlanNode` whose result is the **set of satisfying
assignment tuples over its free variables**, computed bottom-up with
relational operations:

* an atom ``R(t⃗)`` becomes a scan of the per-relation (or, when the key is
  ground or bound by the surrounding plan, per-block) entries of a
  :class:`~repro.query.evaluation.FactIndex`;
* ``∃x φ`` becomes a projection of the plan of ``φ``;
* conjunction becomes a sequence of (hash-)joins on shared free variables,
  seeded by the *guarded* conjuncts (those whose satisfying set is bounded
  by positive atoms) and finished by applying the remaining conjuncts as
  selections / anti-joins;
* disjunction becomes a union;
* ``∀x⃗ φ`` and ``¬φ`` become anti-joins: the plan of the *violating*
  assignments (``∃x⃗ ¬φ`` after pushing the negation inwards) is evaluated
  and subtracted from the rows supplied by the surrounding conjunction.

Range analysis happens at compile time: a node is *guarded* when its
satisfying set can be produced without enumerating the active domain, which
is the common shape emitted by :mod:`repro.fo.rewrite` (every quantified
variable is bounded by a positive atom).  Active-domain enumeration survives
only as a rare fallback (tracked by ``EvalContext.domain_expansions``) for
formulas such as ``∀x ¬R(x | x)`` that no real rewriting produces.

Compiled plans are memoised per formula object (formulas hash by identity),
so re-evaluating the same rewriting against many databases compiles once.
"""

from __future__ import annotations

import itertools
import threading
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)
from weakref import WeakKeyDictionary

from ..model.atoms import Atom
from ..model.database import BlockKey, UncertainDatabase
from ..model.symbols import Constant, Variable, is_constant
from ..model.valuation import Valuation
from ..query.evaluation import FactIndex
from .formulas import (
    And,
    AtomFormula,
    Bottom,
    Equals,
    Exists,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Top,
)

#: A row of a relation: one constant per schema column.
Row = Tuple[Constant, ...]

#: A key-position mask: one entry per primary-key position — a
#: :class:`Constant` the position must equal, or ``None`` (wildcard).
KeyMask = Tuple[Optional[Constant], ...]


class ReadSet:
    """An immutable over-approximation of what one plan execution read.

    A decision whose read set does not overlap a set of database mutations
    is guaranteed to re-produce the same verdict: plan execution is
    deterministic, the first index accesses are fixed by the plan structure,
    and every later probe key is derived from facts found by earlier
    accesses — so if no read block/relation changed, the entire execution
    replays identically.  This is the dependency unit of the incremental
    view subsystem (:mod:`repro.incremental`).

    ``blocks``
        block keys probed through the per-block index (including *empty*
        probes — an insertion into a probed-but-empty block changes what
        the probe returns, so it must dirty the verdict);
    ``block_ids``
        the same dependency, recorded as dense integer block ids when the
        execution ran on a columnar backend (see
        :meth:`repro.store.columnar.ColumnarFactStore.block_id`) — one
        small int per probe instead of a ``(name, constants)`` tuple, which
        is what keeps support indexes compact under heavy candidate counts.
        Ids are only meaningful against the store that issued them; use
        :meth:`to_portable` before shipping a read set across processes;
    ``relations``
        relations read through full scans (any mutation of the relation may
        change the result);
    ``key_masks``
        static ``(relation name, key mask)`` dependencies recorded by the
        non-FO solvers: the verdict of a grounded query can only change
        when a mutated fact's key constants match the mask of some atom of
        the query (``None`` positions are wildcards).  Soundness is the
        block granularity of Lemma 1: a mask constrains *key* positions
        only, so an entire block either matches or misses it, and blocks
        matching no atom's mask contain no fact any witness can use —
        purification removes them without changing certainty;
    ``domain_read``
        the execution consulted the active domain derived from the whole
        index — any mutation anywhere may change the verdict;
    ``opaque``
        the execution left every instrumented path: the read set is unknown
        and callers must treat the verdict as depending on everything.
    """

    __slots__ = ("blocks", "block_ids", "relations", "key_masks", "domain_read", "opaque")

    def __init__(
        self,
        blocks: FrozenSet[BlockKey] = frozenset(),
        relations: FrozenSet[str] = frozenset(),
        domain_read: bool = False,
        opaque: bool = False,
        block_ids: FrozenSet[int] = frozenset(),
        key_masks: FrozenSet[Tuple[str, KeyMask]] = frozenset(),
    ) -> None:
        self.blocks = blocks
        self.block_ids = block_ids
        self.relations = relations
        self.key_masks = key_masks
        self.domain_read = domain_read
        self.opaque = opaque

    @property
    def is_global(self) -> bool:
        """``True`` when any mutation whatsoever must dirty the verdict."""
        return self.domain_read or self.opaque

    def to_portable(self, store) -> "ReadSet":
        """Decode store-local block ids into portable ``(name, key)`` keys.

        Worker processes capture read sets against their own columnar
        stores, whose block-id spaces do not match the parent's; this
        rewrites ``block_ids`` through the worker *store* into object-space
        block keys before the read set is shipped back.
        """
        if not self.block_ids:
            return self
        blocks = set(self.blocks)
        for block_id in self.block_ids:
            blocks.add(store.decode_block_key(block_id))
        return ReadSet(
            blocks=frozenset(blocks),
            relations=self.relations,
            domain_read=self.domain_read,
            opaque=self.opaque,
            key_masks=self.key_masks,  # already object-space, hence portable
        )

    def __repr__(self) -> str:
        if self.opaque:
            return "ReadSet(opaque)"
        if self.domain_read:
            return "ReadSet(domain)"
        return (
            f"ReadSet({len(self.blocks) + len(self.block_ids)} blocks, "
            f"{len(self.key_masks)} masks, {len(self.relations)} relations)"
        )

    # ReadSets cross process boundaries (parallel support capture).
    def __getstate__(self):
        return (
            self.blocks,
            self.relations,
            self.domain_read,
            self.opaque,
            self.block_ids,
            self.key_masks,
        )

    def __setstate__(self, state):
        (
            self.blocks,
            self.relations,
            self.domain_read,
            self.opaque,
            self.block_ids,
            self.key_masks,
        ) = state


class ReadSetRecorder:
    """Mutable collector the evaluator writes its index accesses into.

    Hand one to :meth:`CompiledFormula.evaluate` (or thread it through
    ``QueryPlan.execute``) and call :meth:`freeze` afterwards to obtain the
    immutable :class:`ReadSet` of that execution.
    """

    __slots__ = ("blocks", "block_ids", "relations", "key_masks", "domain_read", "opaque")

    def __init__(self) -> None:
        self.blocks: Set[BlockKey] = set()
        self.block_ids: Set[Tuple[str, int]] = set()
        self.relations: Set[str] = set()
        self.key_masks: Set[Tuple[str, KeyMask]] = set()
        self.domain_read = False
        self.opaque = False

    def record_block(self, name: str, key: Tuple[Constant, ...]) -> None:
        self.blocks.add((name, key))

    def record_block_id(self, name: str, block_id: int) -> None:
        """Record a probe by dense block id (columnar backend)."""
        self.block_ids.add((name, block_id))

    def record_key_mask(self, name: str, mask: KeyMask) -> None:
        """Record a static key-mask dependency (non-FO solver support)."""
        self.key_masks.add((name, mask))

    def record_relation(self, name: str) -> None:
        self.relations.add(name)

    def record_domain(self) -> None:
        self.domain_read = True

    def record_opaque(self) -> None:
        """Mark the read set unknown (execution left the instrumented path)."""
        self.opaque = True

    def freeze(self) -> ReadSet:
        """The immutable read set collected so far."""
        # Blocks of fully scanned relations are subsumed by the relation
        # entry; dropping them keeps support indexes small.
        blocks = frozenset(
            key for key in self.blocks if key[0] not in self.relations
        )
        block_ids = frozenset(
            block_id
            for name, block_id in self.block_ids
            if name not in self.relations
        )
        key_masks = frozenset(
            entry for entry in self.key_masks if entry[0] not in self.relations
        )
        return ReadSet(
            blocks=blocks,
            block_ids=block_ids,
            relations=frozenset(self.relations),
            key_masks=key_masks,
            domain_read=self.domain_read,
            opaque=self.opaque,
        )


class Relation:
    """A set of assignment tuples over an ordered tuple of variables.

    The *schema* lists the variables each column binds; *rows* is a set of
    equally long constant tuples.  The Boolean relations are the two
    zero-column relations: ``{()}`` (true) and ``{}`` (false).
    """

    __slots__ = ("schema", "rows")

    def __init__(self, schema: Tuple[Variable, ...], rows: Set[Row]) -> None:
        self.schema = schema
        self.rows = rows

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        names = ", ".join(v.name for v in self.schema)
        return f"Relation([{names}], {len(self.rows)} rows)"


def _ordered(variables: Iterable[Variable]) -> Tuple[Variable, ...]:
    """A deterministic column order for a set of variables."""
    return tuple(sorted(set(variables), key=lambda v: v.name))


def _unit() -> Relation:
    """The unit (true) relation: no columns, one empty row."""
    return Relation((), {()})


def _project(rel: Relation, schema: Tuple[Variable, ...]) -> Relation:
    """Project (and/or reorder) *rel* onto *schema* ⊆ ``rel.schema``."""
    if schema == rel.schema:
        return rel
    positions = [rel.schema.index(v) for v in schema]
    return Relation(schema, {tuple(row[p] for p in positions) for row in rel.rows})


def _join(left: Relation, right: Relation) -> Relation:
    """Natural (hash) join of two relations on their shared variables."""
    if not left.schema:
        return right if left.rows else Relation(right.schema, set())
    if not right.schema:
        return left if right.rows else Relation(left.schema, set())
    shared = [v for v in right.schema if v in left.schema]
    extra = [v for v in right.schema if v not in left.schema]
    out_schema = left.schema + tuple(extra)
    if not shared:
        rows = {lrow + rrow for lrow in left.rows for rrow in right.rows}
        return Relation(out_schema, rows)
    left_key = [left.schema.index(v) for v in shared]
    right_key = [right.schema.index(v) for v in shared]
    extra_pos = [right.schema.index(v) for v in extra]
    table: Dict[Row, List[Row]] = {}
    for rrow in right.rows:
        table.setdefault(tuple(rrow[p] for p in right_key), []).append(
            tuple(rrow[p] for p in extra_pos)
        )
    rows = set()
    for lrow in left.rows:
        for tail in table.get(tuple(lrow[p] for p in left_key), ()):
            rows.add(lrow + tail)
    return Relation(out_schema, rows)


def _antijoin(rel: Relation, exclude: Relation) -> Relation:
    """Rows of *rel* whose projection onto ``exclude.schema`` is absent there."""
    if not exclude.schema:
        return Relation(rel.schema, set()) if exclude.rows else rel
    positions = [rel.schema.index(v) for v in exclude.schema]
    rows = {row for row in rel.rows if tuple(row[p] for p in positions) not in exclude.rows}
    return Relation(rel.schema, rows)


def _semijoin(rel: Relation, keep: Relation) -> Relation:
    """Rows of *rel* whose projection onto ``keep.schema`` is present there."""
    if not keep.schema:
        return rel if keep.rows else Relation(rel.schema, set())
    positions = [rel.schema.index(v) for v in keep.schema]
    rows = {row for row in rel.rows if tuple(row[p] for p in positions) in keep.rows}
    return Relation(rel.schema, rows)


class EvalContext:
    """Per-database state for one or more compiled-plan evaluations.

    Bundles the :class:`FactIndex` the atom scans read, the active domain
    used by the (rare) unguarded fallbacks, and instrumentation counters:

    ``domain_expansions``
        number of times a plan node had to enumerate the active domain for
        an unguarded variable — ``0`` for every formula produced by
        :mod:`repro.fo.rewrite`;
    ``atom_scans`` / ``block_lookups``
        how atom leaves obtained their facts (full relation scan versus
        guarded per-block index probes).

    An optional :class:`ReadSetRecorder` captures every index access made
    through the context — per-block probes, full relation scans, and active
    domain derivations — so callers can learn which parts of the database a
    verdict depended on.

    When *index* is a :class:`~repro.store.index.ColumnarFactIndex` the
    context is *encoded*: atom leaves scan id-rows from the columnar store,
    the quantification domain is a tuple of term ids, plan constants are
    interned on first use, and every relation row that flows through the
    plan is a tuple of small ints.  The same plan nodes serve both
    backends — only the leaves and the constant encoding differ.
    """

    __slots__ = (
        "index",
        "store",
        "_domain",
        "_domain_set",
        "explicit_domain",
        "domain_expansions",
        "atom_scans",
        "block_lookups",
        "recorder",
    )

    def __init__(
        self,
        index: FactIndex,
        domain: Optional[Iterable[Constant]] = None,
        recorder: Optional[ReadSetRecorder] = None,
    ) -> None:
        self.index = index
        #: The columnar store when the index has one (the encoded backend).
        self.store = getattr(index, "store", None)
        self.recorder = recorder
        # An explicitly supplied domain may be *smaller* than the set of
        # constants in the facts; quantifier nodes must then re-check that
        # the bindings found through atom guards lie inside it (matching the
        # naive evaluator, whose quantifier loops range over this domain).
        self.explicit_domain = domain is not None
        if domain is None:
            # Guarded plans never consult the domain, so deriving it from
            # the (possibly large) index is deferred until first use.
            self._domain: Optional[Tuple] = None
        elif self.store is not None:
            intern = self.store.table.intern
            self._domain = tuple(sorted({intern(c) for c in domain}))
        else:
            self._domain = tuple(sorted(set(domain), key=str))
        self._domain_set: Optional[FrozenSet] = None
        self.domain_expansions = 0
        self.atom_scans = 0
        self.block_lookups = 0

    def encode_constant(self, constant: Constant):
        """*constant* in the row value space of this context.

        Identity for the object backend; the interned term id for the
        encoded backend (interning is sound for constants absent from the
        database: a fresh id equals no stored id, exactly as a fresh
        constant equals no stored constant).
        """
        if self.store is not None:
            return self.store.table.intern(constant)
        return constant

    @property
    def domain(self) -> Tuple:
        """The quantification domain (computed from the index on first use).

        Term ids for the encoded backend, constants for the object backend.
        """
        if self.recorder is not None and not self.explicit_domain:
            # A domain derived from the index depends on *every* fact.
            self.recorder.record_domain()
        if self._domain is None:
            if self.store is not None:
                self._domain = tuple(sorted(self.store.term_ids()))
            else:
                values: Set[Constant] = set()
                for fact in self.index:
                    values.update(fact.terms)
                self._domain = tuple(sorted(values, key=str))
        return self._domain

    @property
    def domain_set(self) -> FrozenSet:
        if self._domain_set is None:
            self._domain_set = frozenset(self.domain)
        return self._domain_set

    @classmethod
    def for_database(
        cls,
        db: UncertainDatabase,
        index: Optional[FactIndex] = None,
        domain: Optional[Iterable[Constant]] = None,
    ) -> "EvalContext":
        """A context over *db*, reusing *index* when supplied (else building one)."""
        if index is None:
            index = FactIndex(db.facts)
        return cls(index, domain=domain)

    def in_domain(self, rel: Relation, variables: Iterable[Variable]) -> Relation:
        """Restrict *rel* to rows whose *variables* columns lie in the domain.

        A no-op unless the domain was explicitly supplied (bindings found
        through fact guards are by definition in the active domain).
        """
        if not self.explicit_domain:
            return rel
        positions = [rel.schema.index(v) for v in variables if v in rel.schema]
        if not positions:
            return rel
        rows = {row for row in rel.rows if all(row[p] in self.domain_set for p in positions)}
        return Relation(rel.schema, rows)

    def expand(self, rel: Relation, missing: Iterable[Variable]) -> Relation:
        """Cross product of *rel* with the active domain for *missing* variables.

        This is the unguarded fallback; each call bumps ``domain_expansions``.
        """
        missing = _ordered(missing)
        if not missing:
            return rel
        self.domain_expansions += 1
        schema = rel.schema + missing
        rows = {
            row + combo
            for row in rel.rows
            for combo in itertools.product(self.domain, repeat=len(missing))
        }
        return Relation(schema, rows)


def push_negation(formula: Formula) -> Formula:
    """The negation of *formula*, pushed through the connectives.

    Rewriting ``¬∀`` into ``∃¬`` (and dually) at compile time is what keeps
    universal quantification guarded: the violating assignments of
    ``∀w⃗ (R(x⃗, w⃗) → φ)`` are ``∃w⃗ (R(x⃗, w⃗) ∧ ¬φ)``, whose quantified
    variables are bounded by the positive atom ``R``.
    """
    if isinstance(formula, Top):
        return Bottom()
    if isinstance(formula, Bottom):
        return Top()
    if isinstance(formula, Not):
        return formula.operand
    if isinstance(formula, And):
        return Or([push_negation(o) for o in formula.operands])
    if isinstance(formula, Or):
        return And([push_negation(o) for o in formula.operands])
    if isinstance(formula, Implies):
        return And([formula.antecedent, push_negation(formula.consequent)])
    if isinstance(formula, Exists):
        return Forall(formula.variables, push_negation(formula.operand))
    if isinstance(formula, Forall):
        return Exists(formula.variables, push_negation(formula.operand))
    return Not(formula)


class PlanNode:
    """A compiled subformula.

    Every node knows its free variables and whether it is *guarded* — able
    to :meth:`produce` its satisfying set without enumerating the active
    domain.  Two evaluation entry points exist:

    ``produce(ctx, env)``
        the satisfying assignments over ``env.schema ∪ free``, restricted to
        rows extending *env* (sideways information passing: an enclosing
        join hands its partial result down so atom leaves can use per-block
        index lookups);
    ``filter(ctx, rel)``
        the rows of *rel* (whose schema must cover ``free``) that satisfy
        the node — the set-at-a-time selection/anti-join used for equality
        conditions, negation and universal quantification.
    """

    __slots__ = ("free", "schema", "guarded")

    def __init__(self, free: FrozenSet[Variable], guarded: bool) -> None:
        self.free = free
        self.schema = _ordered(free)
        self.guarded = guarded

    def produce(self, ctx: EvalContext, env: Optional[Relation] = None) -> Relation:
        raise NotImplementedError

    def filter(self, ctx: EvalContext, rel: Relation) -> Relation:
        """Default filter: semi-join *rel* with the produced satisfying set."""
        env = _project(rel, self.schema)
        sat = self.produce(ctx, env)
        return _semijoin(rel, _project(sat, self.schema))


class TopNode(PlanNode):
    def __init__(self) -> None:
        super().__init__(frozenset(), True)

    def produce(self, ctx: EvalContext, env: Optional[Relation] = None) -> Relation:
        return env if env is not None else _unit()

    def filter(self, ctx: EvalContext, rel: Relation) -> Relation:
        return rel


class BottomNode(PlanNode):
    def __init__(self) -> None:
        super().__init__(frozenset(), True)

    def produce(self, ctx: EvalContext, env: Optional[Relation] = None) -> Relation:
        return Relation(env.schema if env is not None else (), set())

    def filter(self, ctx: EvalContext, rel: Relation) -> Relation:
        return Relation(rel.schema, set())


class AtomNode(PlanNode):
    """A scan of the fact index, matching the atom's term pattern."""

    __slots__ = ("atom", "_const_checks", "_first_position", "_repeat_checks", "_key_terms")

    def __init__(self, atom: Atom) -> None:
        super().__init__(atom.variables, True)
        self.atom = atom
        self._const_checks: List[Tuple[int, Constant]] = []
        self._first_position: Dict[Variable, int] = {}
        self._repeat_checks: List[Tuple[int, int]] = []
        for position, term in enumerate(atom.terms):
            if is_constant(term):
                self._const_checks.append((position, term))
            elif term in self._first_position:
                self._repeat_checks.append((position, self._first_position[term]))
            else:
                self._first_position[term] = position
        self._key_terms = atom.key_terms

    def _match(self, fact_terms: Sequence[Constant]) -> Optional[Row]:
        for position, constant in self._const_checks:
            if fact_terms[position] != constant:
                return None
        for position, first in self._repeat_checks:
            if fact_terms[position] != fact_terms[first]:
                return None
        return tuple(fact_terms[self._first_position[v]] for v in self.schema)

    def _produce_encoded(self, ctx: EvalContext, env: Optional[Relation]) -> Relation:
        """The id-space scan: identical shape, integer rows end-to-end.

        Mirrors the object path below term for term — per-block dict
        probes when the key is bound, full row scans otherwise — but every
        key, row and output tuple is made of interned term ids, and
        read-set probes are recorded as dense block ids.
        """
        store = ctx.store
        relation = self.atom.relation
        name = relation.name
        columns = store.relation_columns(name)
        # Rows of a same-name relation with a different arity can never
        # match this atom (the object path filters them per fact).
        arity_ok = columns is not None and columns.schema.arity == relation.arity
        intern = store.table.intern
        const_checks = [(pos, intern(c)) for pos, c in self._const_checks]
        repeat_checks = self._repeat_checks
        first_position = self._first_position
        # Guarded probe: the key is ground, or fully bound by the incoming rows.
        if env is not None and env.rows:
            env_positions = {v: p for p, v in enumerate(env.schema)}
            key_getters = []
            for term in self._key_terms:
                if is_constant(term):
                    key_getters.append((None, intern(term)))
                elif term in env_positions:
                    key_getters.append((env_positions[term], None))
                else:
                    key_getters.append(None)
            if all(g is not None for g in key_getters):
                ctx.block_lookups += 1
                recorder = ctx.recorder
                out_extra = [v for v in self.schema if v not in env_positions]
                out_schema = env.schema + tuple(out_extra)
                bound = [
                    (env_positions[v], p)
                    for v, p in first_position.items()
                    if v in env_positions
                ]
                extra_pos = [first_position[v] for v in out_extra]
                blocks = columns.blocks if arity_ok else None
                # Hoist the per-row key construction out of the hot loop;
                # single-position keys (the overwhelmingly common shape)
                # build one 1-tuple per row with no generator machinery.
                if len(key_getters) == 1:
                    position0, const0 = key_getters[0]  # type: ignore[misc]
                    if const0 is None:
                        def make_key(row, _p=position0):
                            return (row[_p],)
                    else:
                        def make_key(row, _k=(const0,)):
                            return _k
                else:
                    def make_key(row, _plan=tuple(key_getters)):
                        return tuple(
                            row[pos] if const is None else const
                            for pos, const in _plan  # type: ignore[misc]
                        )
                single_extra = extra_pos[0] if len(extra_pos) == 1 else None
                rows: Set[Row] = set()
                empty_block: Tuple = ()
                for env_row in env.rows:
                    key = make_key(env_row)
                    if recorder is not None:
                        # Empty probes are recorded too: a later insertion
                        # into this block changes what the probe returns.
                        recorder.record_block_id(name, store.block_id(name, key))
                    if blocks is None:
                        continue
                    for terms in blocks.get(key, empty_block):
                        matched = True
                        for position, cid in const_checks:
                            if terms[position] != cid:
                                matched = False
                                break
                        if matched:
                            for position, first in repeat_checks:
                                if terms[position] != terms[first]:
                                    matched = False
                                    break
                        if matched:
                            for ep, fp in bound:
                                if env_row[ep] != terms[fp]:
                                    matched = False
                                    break
                        if not matched:
                            continue
                        if single_extra is not None:
                            rows.add(env_row + (terms[single_extra],))
                        else:
                            rows.add(env_row + tuple(terms[p] for p in extra_pos))
                return Relation(out_schema, rows)
        ctx.atom_scans += 1
        candidates: Iterable = ()
        if self._key_terms and all(is_constant(t) for t in self._key_terms):
            key = tuple(intern(t) for t in self._key_terms)
            if ctx.recorder is not None:
                ctx.recorder.record_block_id(name, store.block_id(name, key))
            if arity_ok:
                candidates = columns.blocks.get(key, ())
        else:
            if ctx.recorder is not None:
                ctx.recorder.record_relation(name)
            if arity_ok:
                candidates = columns.row_index.keys()
        rows = set()
        for terms in candidates:
            matched = True
            for position, cid in const_checks:
                if terms[position] != cid:
                    matched = False
                    break
            if matched:
                for position, first in repeat_checks:
                    if terms[position] != terms[first]:
                        matched = False
                        break
            if matched:
                rows.add(tuple(terms[first_position[v]] for v in self.schema))
        rel = Relation(self.schema, rows)
        if env is not None:
            rel = _join(env, rel)
        return rel

    def produce(self, ctx: EvalContext, env: Optional[Relation] = None) -> Relation:
        if ctx.store is not None:
            return self._produce_encoded(ctx, env)
        relation = self.atom.relation
        name = relation.name
        # Guarded probe: the key is ground, or fully bound by the incoming rows.
        if env is not None and env.rows:
            env_positions = {v: p for p, v in enumerate(env.schema)}
            key_getters = []
            for term in self._key_terms:
                if is_constant(term):
                    key_getters.append((None, term))
                elif term in env_positions:
                    key_getters.append((env_positions[term], None))
                else:
                    key_getters.append(None)
            if all(g is not None for g in key_getters):
                ctx.block_lookups += 1
                recorder = ctx.recorder
                out_extra = [v for v in self.schema if v not in env_positions]
                out_schema = env.schema + tuple(out_extra)
                bound = [(env_positions[v], p) for v, p in self._first_position.items() if v in env_positions]
                extra_pos = [self._first_position[v] for v in out_extra]
                rows: Set[Row] = set()
                for env_row in env.rows:
                    key = tuple(
                        env_row[pos] if const is None else const  # type: ignore[index]
                        for pos, const in key_getters  # type: ignore[misc]
                    )
                    if recorder is not None:
                        # Empty probes are recorded too: a later insertion
                        # into this block changes what the probe returns.
                        recorder.record_block(name, key)
                    for fact in ctx.index.block(name, key):
                        if fact.relation.arity != relation.arity:
                            continue
                        terms = fact.terms
                        if self._match(terms) is None:
                            continue
                        if any(env_row[ep] != terms[fp] for ep, fp in bound):
                            continue
                        rows.add(env_row + tuple(terms[p] for p in extra_pos))
                return Relation(out_schema, rows)
        ctx.atom_scans += 1
        if self._key_terms and all(is_constant(t) for t in self._key_terms):
            if ctx.recorder is not None:
                ctx.recorder.record_block(name, self._key_terms)
            candidates: Iterable = ctx.index.block(name, self._key_terms)
        else:
            if ctx.recorder is not None:
                ctx.recorder.record_relation(name)
            candidates = ctx.index.relation(name)
        rows = set()
        for fact in candidates:
            if fact.relation.arity != relation.arity:
                continue
            row = self._match(fact.terms)
            if row is not None:
                rows.add(row)
        rel = Relation(self.schema, rows)
        if env is not None:
            rel = _join(env, rel)
        return rel


class EqualsNode(PlanNode):
    """An equality ``t1 = t2``: a selection, or a one-row relation."""

    __slots__ = ("left", "right")

    def __init__(self, left, right) -> None:
        free = frozenset(t for t in (left, right) if isinstance(t, Variable))
        # Guarded when at most one side must range over the domain *and* a
        # constant pins it down; ``x = y`` / ``x = x`` need the domain.
        guarded = len(free) <= 1 and not (len(free) == 1 and left == right)
        super().__init__(free, guarded)
        self.left = left
        self.right = right

    def filter(self, ctx: EvalContext, rel: Relation) -> Relation:
        def getter(term):
            if isinstance(term, Variable):
                position = rel.schema.index(term)
                return lambda row: row[position]
            value = ctx.encode_constant(term)  # row values may be term ids
            return lambda row: value

        get_left, get_right = getter(self.left), getter(self.right)
        rows = {row for row in rel.rows if get_left(row) == get_right(row)}
        return Relation(rel.schema, rows)

    def produce(self, ctx: EvalContext, env: Optional[Relation] = None) -> Relation:
        if env is not None and self.free <= set(env.schema):
            return self.filter(ctx, env)
        if not self.free:  # constant = constant
            rows = {()} if self.left == self.right else set()
            base = Relation((), rows)
            return _join(env, base) if env is not None else base
        if self.guarded:
            variable = next(iter(self.free))
            constant = self.right if isinstance(self.left, Variable) else self.left
            value = ctx.encode_constant(constant)
            rows = {(value,)} if value in ctx.domain_set else set()
            base = Relation((variable,), rows)
            return _join(env, base) if env is not None else base
        # x = y (or x = x): enumerate the domain — the unguarded fallback.
        base = env if env is not None else _unit()
        missing = self.free - set(base.schema)
        return self.filter(ctx, ctx.expand(base, missing))


class NotNode(PlanNode):
    """Negation of a (post-push) leaf: a difference against the input rows."""

    __slots__ = ("operand",)

    def __init__(self, operand: PlanNode) -> None:
        super().__init__(operand.free, False)
        self.operand = operand

    def filter(self, ctx: EvalContext, rel: Relation) -> Relation:
        sat = self.operand.filter(ctx, rel)
        return Relation(rel.schema, rel.rows - sat.rows)

    def produce(self, ctx: EvalContext, env: Optional[Relation] = None) -> Relation:
        base = env if env is not None else _unit()
        missing = self.free - set(base.schema)
        if missing:
            base = ctx.expand(base, missing)
        return self.filter(ctx, base)


class AndNode(PlanNode):
    """Conjunction: join the guarded conjuncts, apply the rest as filters."""

    __slots__ = ("producers", "filters")

    def __init__(self, children: Sequence[PlanNode]) -> None:
        free = frozenset().union(*(c.free for c in children)) if children else frozenset()
        producers = [c for c in children if c.guarded]
        covered = frozenset().union(*(p.free for p in producers)) if producers else frozenset()
        super().__init__(free, free <= covered)
        self.producers = producers
        self.filters = [c for c in children if not c.guarded]

    def produce(self, ctx: EvalContext, env: Optional[Relation] = None) -> Relation:
        rel = env if env is not None else _unit()
        remaining = list(self.producers)
        while remaining:
            bound = set(rel.schema)
            # Greedy join order: prefer conjuncts sharing variables with the
            # rows built so far (turns scans into guarded block probes and
            # avoids cross products).
            best = max(remaining, key=lambda p: (len(p.free & bound), -len(p.free)))
            remaining.remove(best)
            rel = best.produce(ctx, rel)
        missing = self.free - set(rel.schema)
        if missing:
            rel = ctx.expand(rel, missing)
        for child in self.filters:
            if not rel.rows:
                break
            rel = child.filter(ctx, rel)
        return rel

    def filter(self, ctx: EvalContext, rel: Relation) -> Relation:
        for child in self.producers + self.filters:
            if not rel.rows:
                break
            rel = child.filter(ctx, rel)
        return rel


class OrNode(PlanNode):
    """Disjunction: a union of the operand plans."""

    __slots__ = ("children",)

    def __init__(self, children: Sequence[PlanNode]) -> None:
        free = frozenset().union(*(c.free for c in children)) if children else frozenset()
        guarded = bool(children) and all(c.guarded and c.free == free for c in children)
        super().__init__(free, guarded)
        self.children = list(children)

    def produce(self, ctx: EvalContext, env: Optional[Relation] = None) -> Relation:
        env_schema = env.schema if env is not None else ()
        out_schema = env_schema + tuple(v for v in self.schema if v not in env_schema)
        rows: Set[Row] = set()
        for child in self.children:
            rel = child.produce(ctx, env)
            missing = set(out_schema) - set(rel.schema)
            if missing:
                rel = ctx.expand(rel, missing)
            rows |= _project(rel, out_schema).rows
        return Relation(out_schema, rows)

    def filter(self, ctx: EvalContext, rel: Relation) -> Relation:
        rows: Set[Row] = set()
        for child in self.children:
            rows |= child.filter(ctx, rel).rows
            if len(rows) == len(rel.rows):
                break
        return Relation(rel.schema, rows)


class ExistsNode(PlanNode):
    """Existential quantification: a projection of the operand plan."""

    __slots__ = ("qvars", "operand", "vacuous")

    def __init__(self, qvars: FrozenSet[Variable], operand: PlanNode) -> None:
        super().__init__(operand.free - qvars, operand.guarded)
        self.qvars = qvars
        self.operand = operand
        self.vacuous = qvars - operand.free

    def produce(self, ctx: EvalContext, env: Optional[Relation] = None) -> Relation:
        inner_env = env
        shadowed = env is not None and any(v in self.qvars for v in env.schema)
        if shadowed:
            inner_env = _project(env, tuple(v for v in env.schema if v not in self.qvars))
        env_schema = inner_env.schema if inner_env is not None else ()
        out_schema = env_schema + tuple(v for v in self.schema if v not in env_schema)
        if self.vacuous and not ctx.domain:
            # ∃x φ is false over an empty active domain.
            sat = Relation(out_schema, set())
        else:
            inner = self.operand.produce(ctx, inner_env)
            inner = ctx.in_domain(inner, self.qvars)
            sat = _project(inner, out_schema)
        if shadowed:
            return _join(env, sat)  # re-attach the shadowed outer columns
        return sat


class ForallNode(PlanNode):
    """Universal quantification, evaluated as an anti-join with its violations.

    ``∀x⃗ φ`` holds for an assignment iff the *violation plan* —
    ``∃x⃗ ¬φ`` with the negation pushed inwards — produces no extension of
    it.  When ``φ`` is the guarded implication shape of the rewritings, the
    violation plan is guarded by the implication's antecedent atom and never
    touches the active domain.
    """

    __slots__ = ("qvars", "violation")

    def __init__(self, qvars: FrozenSet[Variable], operand_free: FrozenSet[Variable], violation: PlanNode) -> None:
        super().__init__(operand_free - qvars, False)
        self.qvars = qvars
        self.violation = violation

    def filter(self, ctx: EvalContext, rel: Relation) -> Relation:
        env = _project(rel, self.schema)
        violations = self.violation.produce(ctx, env)
        return _antijoin(rel, _project(violations, self.schema))

    def produce(self, ctx: EvalContext, env: Optional[Relation] = None) -> Relation:
        base = env if env is not None else _unit()
        shadowed = tuple(v for v in base.schema if v in self.qvars)
        if shadowed:
            base = _project(base, tuple(v for v in base.schema if v not in self.qvars))
        missing = self.free - set(base.schema)
        if missing:
            base = ctx.expand(base, missing)
        result = self.filter(ctx, base)
        if shadowed and env is not None:
            return _join(env, result)
        return result


def _compile(formula: Formula) -> PlanNode:
    if isinstance(formula, Top):
        return TopNode()
    if isinstance(formula, Bottom):
        return BottomNode()
    if isinstance(formula, AtomFormula):
        return AtomNode(formula.atom)
    if isinstance(formula, Equals):
        return EqualsNode(formula.left, formula.right)
    if isinstance(formula, Not):
        pushed = push_negation(formula.operand)
        if isinstance(pushed, Not):
            # ¬atom / ¬equality: a genuine difference node.
            return NotNode(_compile(pushed.operand))
        return _compile(pushed)
    if isinstance(formula, And):
        return AndNode([_compile(o) for o in formula.operands])
    if isinstance(formula, Or):
        return OrNode([_compile(o) for o in formula.operands])
    if isinstance(formula, Implies):
        # a → c  ≡  ¬a ∨ c, with the negation pushed for guardedness.
        return OrNode([_compile(push_negation(formula.antecedent)), _compile(formula.consequent)])
    if isinstance(formula, Exists):
        if not formula.variables:
            return _compile(formula.operand)
        return ExistsNode(frozenset(formula.variables), _compile(formula.operand))
    if isinstance(formula, Forall):
        if not formula.variables:
            return _compile(formula.operand)
        qvars = frozenset(formula.variables)
        violation = _compile(Exists(formula.variables, push_negation(formula.operand)))
        return ForallNode(qvars, formula.operand.free_variables(), violation)
    raise TypeError(f"unknown formula node {formula!r}")


class CompiledFormula:
    """A formula compiled into a relational plan, evaluable against databases.

    Instances are produced by :func:`compile_formula` (which memoises per
    formula object) and are immutable: one compiled formula can be evaluated
    against many databases, or against one mutating database through a
    long-lived :class:`EvalContext` / engine session index.

    The source formula is intentionally *not* retained: the memo keys
    formulas weakly, and a strong back-reference from the cached value
    would keep every key alive forever.
    """

    __slots__ = ("root",)

    def __init__(self, root: PlanNode) -> None:
        self.root = root

    @property
    def free_variables(self) -> FrozenSet[Variable]:
        return self.root.free

    def evaluate(
        self,
        db: Optional[UncertainDatabase] = None,
        *,
        index: Optional[FactIndex] = None,
        domain: Optional[Iterable[Constant]] = None,
        valuation: Optional[Valuation] = None,
        context: Optional[EvalContext] = None,
        recorder: Optional[ReadSetRecorder] = None,
    ) -> bool:
        """``db |= formula [valuation]`` via the compiled plan.

        Either *db*, an *index*, or a prebuilt *context* must be supplied;
        free variables of the formula must be covered by *valuation*.  A
        *recorder* captures the read set of this execution (pass it via the
        context instead when supplying a prebuilt one).
        """
        ctx = self._context(db, index, domain, context, recorder)
        free = self.root.free
        if free:
            valuation = valuation if valuation is not None else Valuation()
            missing = free - valuation.domain()
            if missing:
                names = ", ".join(sorted(v.name for v in missing))
                raise ValueError(f"free variables not bound by the valuation: {names}")
            schema = self.root.schema
            seed = Relation(
                schema, {tuple(ctx.encode_constant(valuation[v]) for v in schema)}
            )
            return bool(self.root.filter(ctx, seed).rows)
        return bool(self.root.produce(ctx, None).rows)

    def satisfying_assignments(
        self,
        db: Optional[UncertainDatabase] = None,
        *,
        index: Optional[FactIndex] = None,
        domain: Optional[Iterable[Constant]] = None,
        context: Optional[EvalContext] = None,
    ) -> Relation:
        """The full satisfying set over the formula's free variables.

        Rows always contain :class:`Constant` values: encoded executions
        decode their id-rows through the store before returning.
        """
        ctx = self._context(db, index, domain, context)
        sat = _project(self.root.produce(ctx, None), self.root.schema)
        if ctx.store is not None:
            decode = ctx.store.table.decode
            return Relation(sat.schema, {decode(row) for row in sat.rows})
        return sat

    @staticmethod
    def _context(
        db: Optional[UncertainDatabase],
        index: Optional[FactIndex],
        domain: Optional[Iterable[Constant]],
        context: Optional[EvalContext],
        recorder: Optional[ReadSetRecorder] = None,
    ) -> EvalContext:
        if context is not None:
            if recorder is not None:
                raise ValueError(
                    "pass the recorder through the EvalContext when supplying one"
                )
            return context
        if index is not None:
            return EvalContext(index, domain=domain, recorder=recorder)
        if db is not None:
            index = FactIndex(db.facts)
            return EvalContext(index, domain=domain, recorder=recorder)
        raise ValueError("evaluate needs a database, a fact index, or an EvalContext")

    def __repr__(self) -> str:
        names = ", ".join(v.name for v in self.root.schema)
        return f"CompiledFormula(free=[{names}])"


#: Compiled-plan memo, keyed by formula identity (formulas hash by object
#: identity); weak keys keep per-grounding rewritings from accumulating once
#: the formula itself is dropped (e.g. evicted from the rewriting lru_cache).
#: Guarded by a lock: a WeakKeyDictionary is not safe under concurrent
#: mutation (GC callbacks and inserts can interleave mid-resize), and the
#: engine compiles formulas from several threads.
_PLAN_MEMO: "WeakKeyDictionary[Formula, CompiledFormula]" = WeakKeyDictionary()
_PLAN_MEMO_LOCK = threading.Lock()


def compile_formula(formula: Formula) -> CompiledFormula:
    """Compile *formula* into a relational plan (memoised per formula object).

    Thread-safe: the memo is read and written under a lock, while the pure
    compilation itself runs outside it.  Two threads racing on the same
    uncompiled formula may both compile it, but only the first result is
    kept, so callers always share one plan per formula object.
    """
    with _PLAN_MEMO_LOCK:
        plan = _PLAN_MEMO.get(formula)
    if plan is None:
        plan = CompiledFormula(_compile(formula))
        with _PLAN_MEMO_LOCK:
            plan = _PLAN_MEMO.setdefault(formula, plan)
    return plan
