"""Functional dependency reasoning over query variables."""

from .functional_deps import FDSet, FunctionalDependency, fd

__all__ = ["FDSet", "FunctionalDependency", "fd"]
