"""Functional dependencies over variables.

In the paper, the primary key of every atom ``F`` of a query ``q`` induces a
functional dependency ``key(F) → vars(F)`` over the *variables* of the query
(variables play the role of attributes).  The set of all these dependencies
is ``K(q)`` (Definition 1).  Attack graphs are defined through *attribute
closures* with respect to such FD sets (Definition 2 and 5).

This module provides a small, self-contained implementation of FD sets,
attribute closure, and implication testing, sufficient for the paper's
constructions and reusable as a generic database-theory utility.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, List, Set

from ..model.symbols import Variable


class FunctionalDependency:
    """A functional dependency ``X → Y`` over variables."""

    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs: Iterable[Variable], rhs: Iterable[Variable]) -> None:
        self.lhs: FrozenSet[Variable] = frozenset(lhs)
        self.rhs: FrozenSet[Variable] = frozenset(rhs)
        for var in self.lhs | self.rhs:
            if not isinstance(var, Variable):
                raise TypeError(f"functional dependencies range over variables, got {var!r}")

    def __repr__(self) -> str:
        return f"FD({self})"

    def __str__(self) -> str:
        lhs = "".join(sorted(v.name for v in self.lhs)) or "∅"
        rhs = "".join(sorted(v.name for v in self.rhs)) or "∅"
        return f"{lhs}→{rhs}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FunctionalDependency)
            and self.lhs == other.lhs
            and self.rhs == other.rhs
        )

    def __hash__(self) -> int:
        return hash((self.lhs, self.rhs))

    @property
    def is_trivial(self) -> bool:
        """``True`` iff the dependency is implied by reflexivity (Y ⊆ X)."""
        return self.rhs.issubset(self.lhs)


class FDSet:
    """A finite set of functional dependencies with closure operations."""

    def __init__(self, dependencies: Iterable[FunctionalDependency] = ()) -> None:
        self._fds: List[FunctionalDependency] = []
        seen: Set[FunctionalDependency] = set()
        for fd in dependencies:
            if not isinstance(fd, FunctionalDependency):
                raise TypeError(f"expected FunctionalDependency, got {fd!r}")
            if fd not in seen:
                seen.add(fd)
                self._fds.append(fd)

    # -- container protocol -------------------------------------------------------

    def __iter__(self) -> Iterator[FunctionalDependency]:
        return iter(self._fds)

    def __len__(self) -> int:
        return len(self._fds)

    def __contains__(self, fd: object) -> bool:
        return fd in self._fds

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FDSet) and set(self._fds) == set(other._fds)

    def __repr__(self) -> str:
        return "FDSet({" + ", ".join(str(fd) for fd in self._fds) + "})"

    def add(self, fd: FunctionalDependency) -> "FDSet":
        """Return a new FD set with *fd* added."""
        return FDSet(self._fds + [fd])

    def union(self, other: "FDSet") -> "FDSet":
        """Return the union of two FD sets."""
        return FDSet(list(self._fds) + list(other._fds))

    def attributes(self) -> FrozenSet[Variable]:
        """All variables mentioned by some dependency."""
        out: Set[Variable] = set()
        for fd in self._fds:
            out |= fd.lhs | fd.rhs
        return frozenset(out)

    # -- closure and implication -----------------------------------------------------

    def closure(self, attributes: Iterable[Variable]) -> FrozenSet[Variable]:
        """The attribute closure ``X⁺`` of *attributes* with respect to this set.

        Standard fixpoint algorithm (Ullman, *Principles of Database Systems*,
        p. 387): repeatedly add the right-hand side of any dependency whose
        left-hand side is already covered.
        """
        closure: Set[Variable] = set(attributes)
        changed = True
        remaining = list(self._fds)
        while changed:
            changed = False
            still_remaining = []
            for fd in remaining:
                if fd.lhs.issubset(closure):
                    if not fd.rhs.issubset(closure):
                        closure |= fd.rhs
                        changed = True
                else:
                    still_remaining.append(fd)
            remaining = still_remaining
        return frozenset(closure)

    def implies(self, lhs: Iterable[Variable], rhs: Iterable[Variable]) -> bool:
        """``True`` iff this FD set logically implies ``lhs → rhs``."""
        return frozenset(rhs).issubset(self.closure(lhs))

    def implies_fd(self, fd: FunctionalDependency) -> bool:
        """``True`` iff this FD set logically implies *fd*."""
        return self.implies(fd.lhs, fd.rhs)

    def equivalent(self, other: "FDSet") -> bool:
        """``True`` iff the two FD sets imply exactly the same dependencies."""
        return all(other.implies_fd(fd) for fd in self._fds) and all(
            self.implies_fd(fd) for fd in other._fds
        )

    def minimal_cover(self) -> "FDSet":
        """A minimal cover: singleton right-hand sides, no redundant FDs or LHS attributes."""
        # Split right-hand sides.
        split: List[FunctionalDependency] = []
        for fd in self._fds:
            for attr in fd.rhs:
                split.append(FunctionalDependency(fd.lhs, [attr]))
        # Remove extraneous left-hand-side attributes.
        reduced: List[FunctionalDependency] = []
        for fd in split:
            lhs = set(fd.lhs)
            for attr in sorted(fd.lhs, key=lambda v: v.name):
                trial = lhs - {attr}
                if FDSet(split).implies(trial, fd.rhs):
                    lhs = trial
            reduced.append(FunctionalDependency(lhs, fd.rhs))
        # Remove redundant dependencies.
        result: List[FunctionalDependency] = list(dict.fromkeys(reduced))
        changed = True
        while changed:
            changed = False
            for fd in list(result):
                rest = [g for g in result if g is not fd]
                if FDSet(rest).implies_fd(fd):
                    result = rest
                    changed = True
                    break
        return FDSet(result)

    def keys_of(self, attributes: Iterable[Variable]) -> List[FrozenSet[Variable]]:
        """All minimal keys of the attribute set *attributes* under this FD set.

        Exponential in the number of attributes; intended for small variable
        sets (queries), not for databases.
        """
        universe = frozenset(attributes)
        candidates: List[FrozenSet[Variable]] = []
        from itertools import combinations

        ordered = sorted(universe, key=lambda v: v.name)
        for size in range(len(ordered) + 1):
            for combo in combinations(ordered, size):
                subset = frozenset(combo)
                if universe.issubset(self.closure(subset)):
                    if not any(c.issubset(subset) for c in candidates):
                        candidates.append(subset)
        return candidates


def fd(lhs: Iterable[Variable], rhs: Iterable[Variable]) -> FunctionalDependency:
    """Convenience constructor for a functional dependency."""
    return FunctionalDependency(lhs, rhs)
