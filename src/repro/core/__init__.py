"""The paper's primary contribution: the tractability-frontier classifier."""

from .classify import (
    Classification,
    classify,
    classify_cached,
    classify_invocations,
    reset_classify_invocations,
)
from .complexity import ComplexityBand
from .frontier import band_counts, classify_corpus, frontier_table, summarize_frontier

__all__ = [
    "Classification",
    "ComplexityBand",
    "band_counts",
    "classify",
    "classify_cached",
    "classify_corpus",
    "classify_invocations",
    "frontier_table",
    "reset_classify_invocations",
    "summarize_frontier",
]
