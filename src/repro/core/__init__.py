"""The paper's primary contribution: the tractability-frontier classifier."""

from .classify import Classification, classify
from .complexity import ComplexityBand
from .frontier import band_counts, classify_corpus, frontier_table, summarize_frontier

__all__ = [
    "Classification",
    "ComplexityBand",
    "band_counts",
    "classify",
    "classify_corpus",
    "frontier_table",
    "summarize_frontier",
]
