"""High-level frontier reporting: classify collections of queries.

The paper's "tractability frontier" is a partition of queries into complexity
bands.  This module offers corpus-level helpers used by the census experiment
(E11) and by the examples: classify many queries, tabulate the bands, and
render a plain-text frontier table comparable to the summary in Section 8.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..query.conjunctive import ConjunctiveQuery
from .classify import Classification, classify
from .complexity import ComplexityBand


def classify_corpus(queries: Iterable[ConjunctiveQuery]) -> List[Classification]:
    """Classify every query in *queries* (order preserved)."""
    return [classify(q) for q in queries]


def band_counts(classifications: Iterable[Classification]) -> Dict[ComplexityBand, int]:
    """How many queries fall into each complexity band."""
    counter: Counter = Counter(c.band for c in classifications)
    return {band: counter.get(band, 0) for band in ComplexityBand}


def frontier_table(
    classifications: Sequence[Classification],
    labels: Optional[Sequence[str]] = None,
) -> str:
    """Render a plain-text table: one row per query, columns query / band / tractable / FO."""
    if labels is not None and len(labels) != len(classifications):
        raise ValueError("labels must match classifications one-to-one")
    rows: List[Tuple[str, str, str, str]] = []
    for i, classification in enumerate(classifications):
        label = labels[i] if labels is not None else str(classification.query)
        rows.append(
            (
                label,
                classification.band.name,
                "yes" if classification.is_tractable else ("?" if classification.band is ComplexityBand.OPEN_CONJECTURED_P else "no"),
                "yes" if classification.is_first_order else "no",
            )
        )
    headers = ("query", "band", "tractable", "FO-expressible")
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i]) for i in range(4)]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(4)),
    ]
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(4)))
    return "\n".join(lines)


def summarize_frontier(classifications: Sequence[Classification]) -> str:
    """Render the band histogram as a plain-text summary."""
    counts = band_counts(classifications)
    total = sum(counts.values())
    lines = [f"classified queries: {total}"]
    for band, count in counts.items():
        if count:
            lines.append(f"  {band.name:<26} {count}")
    return "\n".join(lines)
