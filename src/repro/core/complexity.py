"""Complexity bands of the tractability frontier.

The paper classifies ``CERTAINTY(q)`` for acyclic, self-join-free Boolean
conjunctive queries into the bands below, based purely on the attack graph
of ``q``:

* ``FO`` — the attack graph is acyclic; CERTAINTY(q) is first-order
  expressible (Theorem 1), hence in AC0 ⊆ P.
* ``PTIME_NOT_FO`` — the attack graph is cyclic, has no strong cycle, and
  every cycle is terminal; CERTAINTY(q) is in P (Theorem 3) and is not
  FO-expressible (Theorem 1).
* ``PTIME_CYCLE_QUERY`` — the attack graph has nonterminal weak cycles and
  no strong cycle, and the query has the special ``AC(k)``/``C(k)`` shape
  handled by Theorem 4 / Corollary 1; CERTAINTY(q) is in P.
* ``OPEN_CONJECTURED_P`` — nonterminal weak cycles, no strong cycle, and not
  of the ``AC(k)`` shape; the paper conjectures P (Conjecture 1) but leaves
  the case open.
* ``CONP_COMPLETE`` — the attack graph contains a strong cycle (Theorem 2).

Two extra labels cover inputs outside the paper's scope: queries with
self-joins and cyclic queries other than ``C(k)``.
"""

from __future__ import annotations

import enum


class ComplexityBand(enum.Enum):
    """The complexity of ``CERTAINTY(q)`` as determined by the classifier."""

    FO = "first-order expressible"
    PTIME_NOT_FO = "in P, not first-order expressible"
    PTIME_CYCLE_QUERY = "in P (AC(k)/C(k), Theorem 4)"
    OPEN_CONJECTURED_P = "open (conjectured in P)"
    CONP_COMPLETE = "coNP-complete"
    UNSUPPORTED_SELF_JOIN = "unsupported: query has a self-join"
    UNSUPPORTED_CYCLIC_QUERY = "unsupported: query is not acyclic (and not C(k))"

    @property
    def is_tractable(self) -> bool:
        """``True`` when the band guarantees a polynomial-time algorithm."""
        return self in (
            ComplexityBand.FO,
            ComplexityBand.PTIME_NOT_FO,
            ComplexityBand.PTIME_CYCLE_QUERY,
        )

    @property
    def is_first_order(self) -> bool:
        """``True`` when CERTAINTY(q) admits a certain first-order rewriting."""
        return self is ComplexityBand.FO

    @property
    def is_intractable(self) -> bool:
        """``True`` when CERTAINTY(q) is coNP-complete."""
        return self is ComplexityBand.CONP_COMPLETE

    @property
    def is_supported(self) -> bool:
        """``True`` when the query falls within the paper's scope."""
        return self not in (
            ComplexityBand.UNSUPPORTED_SELF_JOIN,
            ComplexityBand.UNSUPPORTED_CYCLIC_QUERY,
        )

    def __str__(self) -> str:
        return self.value
