"""The tractability classifier: the paper's effective decision procedure.

Given a Boolean conjunctive query, the classifier produces a
:class:`Classification` that records which complexity band ``CERTAINTY(q)``
falls into and the structural evidence (attack graph, witnessing strong
2-cycle, topological peeling order, ...).  This is the "effective method
that takes as input a query q and decides whether CERTAINTY(q) is in P or
coNP-complete" that the paper sets out to find, restricted — exactly as the
paper is — to acyclic queries without self-joins, with the additional
``C(k)`` escape hatch of Corollary 1 for the cyclic cycle queries.
"""

from __future__ import annotations

import threading
from functools import lru_cache
from typing import List, Optional, Tuple

from ..attacks.cycles import (
    all_cycles_terminal,
    has_strong_cycle,
    strong_two_cycle,
    strongly_connected_components,
)
from ..attacks.graph import AttackGraph
from ..model.atoms import Atom
from ..query.conjunctive import ConjunctiveQuery
from ..query.families import cycle_query_shape
from ..query.hypergraph import is_acyclic
from .complexity import ComplexityBand


class Classification:
    """The outcome of classifying one query."""

    def __init__(
        self,
        query: ConjunctiveQuery,
        band: ComplexityBand,
        attack_graph: Optional[AttackGraph] = None,
        reasons: Optional[List[str]] = None,
        strong_cycle_witness: Optional[Tuple[Atom, Atom]] = None,
        cycle_parameter: Optional[int] = None,
    ) -> None:
        self.query = query
        self.band = band
        self.attack_graph = attack_graph
        self.reasons = list(reasons or [])
        self.strong_cycle_witness = strong_cycle_witness
        self.cycle_parameter = cycle_parameter

    @property
    def is_tractable(self) -> bool:
        """``True`` when the query is guaranteed to have a P-time CERTAINTY algorithm."""
        return self.band.is_tractable

    @property
    def is_first_order(self) -> bool:
        """``True`` when CERTAINTY(q) is first-order expressible."""
        return self.band.is_first_order

    @property
    def cache_key(self) -> Tuple[ConjunctiveQuery, "ComplexityBand", Optional[int]]:
        """The value identity of the classification (query, band, parameter)."""
        return (self.query, self.band, self.cycle_parameter)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Classification) and self.cache_key == other.cache_key

    def __hash__(self) -> int:
        return hash(self.cache_key)

    def __repr__(self) -> str:
        return f"Classification({self.query} → {self.band.name})"

    def explain(self) -> str:
        """A multi-line explanation of the classification."""
        lines = [f"query: {self.query}", f"band:  {self.band.name} ({self.band})"]
        lines.extend(f"  - {reason}" for reason in self.reasons)
        if self.strong_cycle_witness is not None:
            f, g = self.strong_cycle_witness
            lines.append(f"  - witnessing strong 2-cycle: {f} ⤳ {g} ⤳ {f}")
        return "\n".join(lines)


def _cycle_shape(query: ConjunctiveQuery) -> Optional[Tuple[int, bool]]:
    """Detect the ``C(k)``/``AC(k)`` shape (delegates to the query-family helper)."""
    shape = cycle_query_shape(query)
    if shape is None:
        return None
    return (shape.k, shape.has_sk_atom)


#: Number of times :func:`classify` has run the full decision procedure.
#: Exposed so benchmarks and tests can assert that compiled plans / cached
#: classifications actually avoid re-classification.  Updated under a lock:
#: the engine may classify from several threads concurrently.
_classify_calls = 0
_classify_calls_lock = threading.Lock()


def classify_invocations() -> int:
    """How many times :func:`classify` has executed (cache hits excluded)."""
    return _classify_calls


def reset_classify_invocations() -> int:
    """Reset the invocation counter; returns the previous value."""
    global _classify_calls
    with _classify_calls_lock:
        previous = _classify_calls
        _classify_calls = 0
    return previous


@lru_cache(maxsize=1024)
def classify_cached(query: ConjunctiveQuery) -> Classification:
    """Memoised :func:`classify`; safe because classification is pure.

    ``lru_cache`` keeps its own state consistent under concurrent callers
    (CPython serialises the bookkeeping); at worst two threads racing on
    the same uncached query classify it twice, which is harmless because
    classification is pure — the invocation counter stays exact either way.
    """
    return classify(query)


def classify(query: ConjunctiveQuery) -> Classification:
    """Classify ``CERTAINTY(q)`` for a Boolean conjunctive query.

    The decision procedure follows the paper:

    1. reject self-joins (out of scope);
    2. cyclic queries: handle ``C(k)`` via Corollary 1, reject the rest;
    3. acyclic queries: build the attack graph and apply
       Theorem 1 (acyclic graph → FO), Theorem 2 (strong cycle →
       coNP-complete), Theorem 3 (weak terminal cycles → P), Theorem 4
       (``AC(k)`` → P), and otherwise report the open case of Conjecture 1.
    """
    global _classify_calls
    with _classify_calls_lock:
        _classify_calls += 1
    boolean = query.as_boolean() if not query.is_boolean else query
    if boolean.has_self_join:
        return Classification(
            boolean,
            ComplexityBand.UNSUPPORTED_SELF_JOIN,
            reasons=["the query repeats a relation name; attack graphs are undefined"],
        )
    shape = _cycle_shape(boolean)
    if not is_acyclic(boolean):
        if shape is not None and not shape[1]:
            return Classification(
                boolean,
                ComplexityBand.PTIME_CYCLE_QUERY,
                reasons=[
                    f"query is C({shape[0]}): cyclic, but Corollary 1 places CERTAINTY in P "
                    "via the Lemma 9 reduction to AC(k) and Theorem 4"
                ],
                cycle_parameter=shape[0],
            )
        return Classification(
            boolean,
            ComplexityBand.UNSUPPORTED_CYCLIC_QUERY,
            reasons=["the query has no join tree and is not of the C(k) shape"],
        )

    graph = AttackGraph(boolean)
    if graph.is_acyclic():
        order = graph.topological_order() or []
        return Classification(
            boolean,
            ComplexityBand.FO,
            attack_graph=graph,
            reasons=[
                "the attack graph is acyclic, so CERTAINTY(q) is first-order expressible (Theorem 1)",
                "peeling order of unattacked atoms: " + " , ".join(str(a) for a in order),
            ],
        )
    if has_strong_cycle(graph):
        witness = strong_two_cycle(graph)
        return Classification(
            boolean,
            ComplexityBand.CONP_COMPLETE,
            attack_graph=graph,
            reasons=["the attack graph contains a strong cycle, so CERTAINTY(q) is coNP-complete (Theorem 2)"],
            strong_cycle_witness=witness,
        )
    if all_cycles_terminal(graph):
        cyclic_components = [
            c for c in strongly_connected_components(graph) if len(c) >= 2
        ]
        return Classification(
            boolean,
            ComplexityBand.PTIME_NOT_FO,
            attack_graph=graph,
            reasons=[
                "all attack cycles are weak and terminal, so CERTAINTY(q) is in P (Theorem 3)",
                f"the attack graph has {len(cyclic_components)} terminal weak 2-cycle(s)",
                "CERTAINTY(q) is not first-order expressible (Theorem 1, cyclic attack graph)",
            ],
        )
    if shape is not None and shape[1]:
        return Classification(
            boolean,
            ComplexityBand.PTIME_CYCLE_QUERY,
            attack_graph=graph,
            reasons=[
                f"query is AC({shape[0]}): nonterminal weak cycles, handled by Theorem 4 (in P)"
            ],
            cycle_parameter=shape[0],
        )
    return Classification(
        boolean,
        ComplexityBand.OPEN_CONJECTURED_P,
        attack_graph=graph,
        reasons=[
            "the attack graph has a nonterminal cycle but no strong cycle; "
            "the paper conjectures CERTAINTY(q) is in P (Conjecture 1) but the case is open",
            "CERTAINTY(q) is not first-order expressible (Theorem 1, cyclic attack graph)",
        ],
    )
