"""Certainty sessions: a database wrapper with shared, incremental indexes.

A :class:`CertaintySession` is the per-database execution half of the
engine.  It wraps an :class:`~repro.model.database.UncertainDatabase`,
builds a :class:`~repro.query.evaluation.FactIndex` over it **once**, and
registers the index as a database observer so every ``add``/``discard``/
``remove_block`` on the database updates the index incrementally instead of
forcing a rebuild.  Queries are compiled into cached
:class:`~repro.engine.plan.QueryPlan` objects, and a shared
:class:`~repro.certainty.context.SolverContext` carries the index and
memoised attack graphs into the solvers.

The batched :meth:`certain_answers` classifies the query *shape* once and
reuses the plan for every candidate grounding — unlike the historical
one-shot loop, which re-classified (and re-indexed) per candidate tuple.

FO-band queries execute through their compiled certain rewriting: the plan
carries a :class:`~repro.fo.compile.CompiledFormula` (a guarded
set-at-a-time relational plan over the rewriting of Theorem 1) which is
evaluated directly against the session's incrementally maintained index —
see :meth:`evaluate_formula` for evaluating arbitrary formulas the same
way.

By default sessions run on the **interned columnar backend**
(:mod:`repro.store`): the index mirrors every fact into integer columns,
compiled plans join and anti-join tuples of dense term ids, candidate
enumeration runs through a compiled set-at-a-time plan, and open FO-band
plans decide a whole ``certain_answers`` batch with a single plan
execution.  ``backend="object"`` selects the original fact-dictionary
path, kept as the differentially-tested reference implementation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..certainty.context import SolverContext
from ..certainty.solver import CertaintyOutcome
from ..fo.compile import EvalContext, ReadSet, ReadSetRecorder, Relation, compile_formula
from ..fo.formulas import Formula
from ..model.database import UncertainDatabase
from ..model.symbols import Constant
from ..query.conjunctive import ConjunctiveQuery
from ..query.evaluation import FactIndex, answer_tuples
from ..query.substitution import ground_free_variables
from ..store import ColumnarFactIndex, ColumnarFactStore, InternTable
from .cache import PlanCache, default_plan_cache
from .plan import QueryPlan


class CertaintySession:
    """Batched CERTAINTY answering over one (possibly mutating) database.

    Parameters
    ----------
    db:
        The uncertain database to serve queries against.  The session
        registers an observer on it; call :meth:`close` (or use the session
        as a context manager) to detach.
    plan_cache:
        The plan cache to compile queries through.  Defaults to the
        process-wide cache shared with the one-shot APIs, so plans compiled
        by either layer benefit both.
    allow_exponential:
        Session-wide default for the brute-force escape hatch.
    backend:
        ``"columnar"`` (default) maintains a
        :class:`~repro.store.index.ColumnarFactIndex`: compiled rewritings,
        candidate enumeration and batched deciding run on interned integer
        rows, and read sets are captured as dense block ids.  ``"object"``
        keeps the pure fact-dictionary :class:`FactIndex` — the reference
        implementation the columnar kernels are differentially tested
        against.
    intern_table:
        The :class:`~repro.store.intern.InternTable` the columnar index
        encodes constants through.  Defaults to the process-wide table
        (:func:`~repro.store.intern.global_intern_table`), which keeps term
        ids comparable across sessions in one process.  A private table
        scopes the id space to this session — the isolation the
        multi-tenant service layer builds on: two sessions with private
        tables never share (or grow) each other's id space.  Ignored by the
        object backend, which never interns.

    Example
    -------
    >>> with CertaintySession(db) as session:          # doctest: +SKIP
    ...     session.is_certain(q)
    ...     db.add(new_fact)          # index updated incrementally
    ...     session.certain_answers(open_q)
    """

    def __init__(
        self,
        db: UncertainDatabase,
        plan_cache: Optional[PlanCache] = None,
        allow_exponential: bool = False,
        backend: str = "columnar",
        intern_table: Optional[InternTable] = None,
    ) -> None:
        if backend not in ("columnar", "object"):
            raise ValueError(f"unknown backend {backend!r}: use 'columnar' or 'object'")
        self._db = db
        self._backend = backend
        self._index = (
            ColumnarFactIndex(db.facts, table=intern_table)
            if backend == "columnar"
            else FactIndex(db.facts)
        )
        db.register_observer(self._index)
        self._cache = plan_cache if plan_cache is not None else default_plan_cache()
        self._allow_exponential = allow_exponential
        self._context = SolverContext(db=db, index=self._index)
        #: query -> (db.mutation_version at compute time, sorted candidates).
        self._candidate_memo: Dict[
            ConjunctiveQuery, Tuple[int, List[Tuple[Constant, ...]]]
        ] = {}
        self._closed = False

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Detach the session's index from the database (idempotent)."""
        if not self._closed:
            self._db.unregister_observer(self._index)
            self._closed = True

    def __enter__(self) -> "CertaintySession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- views -------------------------------------------------------------------

    @property
    def db(self) -> UncertainDatabase:
        """The wrapped database."""
        return self._db

    @property
    def index(self) -> FactIndex:
        """The incrementally maintained fact index over the database."""
        return self._index

    @property
    def backend(self) -> str:
        """The execution backend: ``"columnar"`` or ``"object"``."""
        return self._backend

    @property
    def store(self) -> Optional[ColumnarFactStore]:
        """The columnar store of the index (``None`` for the object backend)."""
        return getattr(self._index, "store", None)

    @property
    def intern_table(self) -> Optional[InternTable]:
        """The intern table the columnar store encodes through (``None`` for
        the object backend)."""
        store = self.store
        return store.table if store is not None else None

    @property
    def plan_cache(self) -> PlanCache:
        """The plan cache queries are compiled through."""
        return self._cache

    @property
    def allow_exponential(self) -> bool:
        """The session-wide brute-force default (per-call overrides win)."""
        return self._allow_exponential

    @property
    def closed(self) -> bool:
        """``True`` once :meth:`close` has run (the index no longer tracks)."""
        return self._closed

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"CertaintySession({self._db!r}, {state})"

    # -- query answering ---------------------------------------------------------

    def plan_for(self, query: ConjunctiveQuery) -> QueryPlan:
        """The compiled plan for *query* (compiling on a cache miss)."""
        return self._cache.get_or_compile(query)

    def solve(
        self,
        query: ConjunctiveQuery,
        allow_exponential: Optional[bool] = None,
    ) -> CertaintyOutcome:
        """Decide ``db ∈ CERTAINTY(q)`` with full provenance."""
        self._check_open()
        allow = self._allow_exponential if allow_exponential is None else allow_exponential
        plan = self.plan_for(query.as_boolean() if not query.is_boolean else query)
        return plan.execute(self._db, allow_exponential=allow, context=self._context)

    def is_certain(
        self,
        query: ConjunctiveQuery,
        allow_exponential: Optional[bool] = None,
    ) -> bool:
        """``True`` iff every repair of the database satisfies *query*."""
        return self.solve(query, allow_exponential=allow_exponential).certain

    def certain_answers(
        self,
        query: ConjunctiveQuery,
        allow_exponential: Optional[bool] = None,
    ) -> Set[Tuple[Constant, ...]]:
        """The certain answers of a non-Boolean query, batched.

        The query shape is compiled (classified) once; every candidate
        grounding is then executed through the same plan, and candidate
        enumeration runs on the session's shared index.
        """
        self._check_open()
        if query.is_boolean:
            raise ValueError("certain_answers expects a query with free variables")
        candidates = self.candidate_answers(query)
        return set(
            self.decide_candidates(query, candidates, allow_exponential=allow_exponential)
        )

    def candidate_answers(
        self, query: ConjunctiveQuery
    ) -> List[Tuple[Constant, ...]]:
        """The candidate tuples of *query* over the whole database, sorted.

        Candidates are the answers of the (inconsistent) database itself;
        certain answers are always among them.  On the columnar backend the
        enumeration runs through the compiled set-at-a-time candidate plan
        (integer hash joins over the store); the object backend keeps the
        reference backtracking join.

        Results are memoised per query, keyed on
        :attr:`~repro.model.database.UncertainDatabase.mutation_version`: a
        repeated enumeration against an unchanged database (the common case
        for incremental views re-deciding a few dirty candidates) is one
        integer comparison plus a list copy.  Any effective ``add`` /
        ``discard`` / ``remove_block`` — or any non-empty :meth:`batch` at
        its exit — advances the version and invalidates the memo.  Inside a
        batch the version (like the session index itself) is intentionally
        stale; queries should run outside the batch.
        """
        self._check_open()
        version = self._db.mutation_version
        cached = self._candidate_memo.get(query)
        if cached is not None and cached[0] == version:
            return list(cached[1])
        if self._backend == "columnar":
            plan = self.plan_for(query)
            sat = plan.candidate_plan().satisfying_assignments(index=self._index)
            free = query.free_variables
            positions = [sat.schema.index(v) for v in free]
            candidates = {tuple(row[p] for p in positions) for row in sat.rows}
        else:
            candidates = answer_tuples(query, self._index)
        result = sorted(candidates, key=lambda t: tuple(str(c) for c in t))
        if len(self._candidate_memo) >= 64:
            self._candidate_memo.clear()  # bound stale-version entries
        self._candidate_memo[query] = (version, result)
        return list(result)

    def decide_candidates(
        self,
        query: ConjunctiveQuery,
        candidates: Sequence[Tuple[Constant, ...]],
        allow_exponential: Optional[bool] = None,
        support: Optional[Dict[Tuple[Constant, ...], ReadSet]] = None,
    ) -> List[Tuple[Constant, ...]]:
        """The candidates whose grounding is certain, in input order.

        This is the per-candidate half of :meth:`certain_answers`, split out
        so the parallel session can shard one enumeration across workers:
        each worker calls ``decide_candidates`` on its own chunk and the
        shards union back into the same set the sequential loop produces.

        When *support* is supplied, every decided candidate is mapped to the
        :class:`~repro.fo.compile.ReadSet` of its decision — the dependency
        capture the incremental view subsystem builds its support index
        from.  Decisions that leave the instrumented compiled-rewriting path
        yield opaque read sets (a sound "depends on everything").

        On the columnar backend, plans carrying an *open* compiled
        rewriting decide the whole batch with **one** set-at-a-time plan
        execution (seed every candidate row, keep the satisfying subset)
        when no per-candidate read sets were requested; per-candidate
        evaluation remains for support capture, per-grounding plans, and
        the object reference backend, and provably returns the same list
        (each seeded row filters independently through the same plan).
        """
        self._check_open()
        allow = self._allow_exponential if allow_exponential is None else allow_exponential
        plan = self.plan_for(query)
        # A Boolean query has exactly one candidate, the empty tuple; it
        # executes the plan's own (compiled) query rather than a grounding.
        boolean = query.is_boolean
        batched = plan.batched_fo and not boolean
        if (
            batched
            and support is None
            and self._backend == "columnar"
            and len(candidates) > 1
        ):
            return self._decide_batched(plan, candidates)
        certain: List[Tuple[Constant, ...]] = []
        for candidate in candidates:
            # Open-FO plans never read the grounding (the candidate binds a
            # valuation instead) — skip building one query per candidate.
            grounded = (
                None
                if boolean or batched
                else ground_free_variables(query, [c.value for c in candidate])
            )
            recorder = ReadSetRecorder() if support is not None else None
            outcome = plan.execute(
                self._db,
                grounding=grounded,
                allow_exponential=allow,
                context=self._context,
                candidate=None if boolean else candidate,
                recorder=recorder,
            )
            if support is not None:
                support[candidate] = recorder.freeze()
            if outcome.certain:
                certain.append(candidate)
        return certain

    def _decide_batched(
        self,
        plan: QueryPlan,
        candidates: Sequence[Tuple[Constant, ...]],
    ) -> List[Tuple[Constant, ...]]:
        """Decide every candidate with one set-at-a-time rewriting execution.

        Equivalent to evaluating the open rewriting once per candidate: the
        plan's ``filter`` is row-local (each seeded assignment survives iff
        its own evaluation would return true), so seeding all candidate
        rows at once only amortises the joins, never mixes verdicts.
        """
        rewriting = plan.fo_rewriting
        assert rewriting is not None and plan.fo_candidate_vars is not None
        ctx = EvalContext(self._index)
        root = rewriting.root
        if not root.free:
            # The rewriting ignores the candidate constants entirely: one
            # Boolean evaluation decides every candidate the same way.
            verdict = bool(root.produce(ctx, None).rows)
            return list(candidates) if verdict else []
        # The rewriting's free variables are a subset of the candidate
        # variables (aligned with the query's free variables, in order).
        positions = [plan.fo_candidate_vars.index(v) for v in root.schema]
        encode = ctx.encode_constant
        rows = [
            tuple(encode(candidate[p]) for p in positions) for candidate in candidates
        ]
        seed = Relation(root.schema, set(rows))
        satisfied = root.filter(ctx, seed).rows
        return [c for c, row in zip(candidates, rows) if row in satisfied]

    def evaluate_formula(self, formula: "Formula") -> bool:
        """Evaluate a first-order sentence against the session's database.

        The formula is compiled (memoised per formula object) into a
        set-at-a-time plan and run on the session's shared index, so
        repeated evaluations against the mutating database skip both
        re-compilation and re-indexing.
        """
        self._check_open()
        return compile_formula(formula).evaluate(self._db, index=self._index)

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                "this CertaintySession is closed; its index no longer tracks the database"
            )
