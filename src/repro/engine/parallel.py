"""Parallel sharded ``certain_answers``: fan the candidate loop out to workers.

The batched :meth:`~repro.engine.session.CertaintySession.certain_answers`
loop decides one ``CERTAINTY(q[free ↦ t])`` instance per candidate tuple
``t``.  The instances are *independent* — Wijsen's Theorem 1/3/4 solvers
share nothing across groundings but the (immutable) database and the
(compile-once) plan — so the loop is embarrassingly parallel.  This module
shards it:

* a :class:`ParallelCertaintySession` snapshots the database once, ships the
  snapshot to every worker process through the pool *initializer* (facts are
  immutable and hashable, so a frozenset of facts plus the relation schemas
  reconstruct the database exactly), and scatters chunks of candidate tuples
  to the pool;
* each worker rebuilds the database once per process, opens its own
  sequential ``CertaintySession`` (own plan cache, own solver context, own
  fact index), and decides its chunk — so per-candidate work in a worker is
  byte-for-byte the sequential algorithm;
* results are unioned; because certain answers form a *set* and every
  candidate is decided by the same deterministic procedure, the parallel
  result is identical to the sequential one regardless of scheduling.

Small inputs skip the pool entirely (process startup would dominate), and a
thread-pool mode exists for environments where subprocesses are unavailable
(it shares one snapshot session across threads; the engine's caches and
memos are thread-safe).  Database mutations between calls are detected
through the observer hooks and trigger a pool rebuild with a fresh
snapshot, so answers always reflect the current database.

:func:`certain_answers_parallel` is the one-shot convenience wrapper.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import sys
from concurrent.futures import BrokenExecutor, Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..certainty.solver import CertaintyOutcome
from ..faults import fire as _fire_fault
from ..fo.compile import ReadSet
from ..model.atoms import Fact, RelationSchema
from ..model.database import DatabaseObserver, UncertainDatabase
from ..model.schema import DatabaseSchema
from ..model.symbols import Constant
from ..query.conjunctive import ConjunctiveQuery
from ..store import ColumnarSnapshot, InternTable
from .cache import PlanCache
from .session import CertaintySession

#: Candidate tuples below this count run serially: forking + pickling costs
#: more than deciding a handful of groundings in-process.
MIN_PARALLEL_CANDIDATES = 16

#: Chunks handed out per worker (over-partitioning smooths out skew between
#: cheap and expensive candidates without drowning in dispatch overhead).
_CHUNKS_PER_WORKER = 4


def _pool_mp_context() -> Optional[multiprocessing.context.BaseContext]:
    """The start-method context for worker pools.

    ``fork`` (the Linux default) duplicates the parent mid-flight, including
    any *held* lock — and this engine holds locks (plan cache, formula memo,
    classify counter) precisely when other threads are busy, so a fork racing
    a compile could hand workers a lock nobody will ever release.
    ``forkserver`` forks workers from a clean, single-threaded server
    process instead (and is still far cheaper than ``spawn``); platforms
    without it (Windows) fall back to their default, which is the equally
    safe ``spawn``.

    One carve-out: forkserver (like spawn) re-imports the parent's
    ``__main__`` in each worker, which is impossible when the parent runs
    from stdin or an embedded interpreter (``__main__.__file__`` names no
    real file) — workers would crash at startup.  Those parents fall back
    to the platform default (``fork``), which needs no re-import.
    """
    main_file = getattr(sys.modules.get("__main__"), "__file__", None)
    if main_file is not None and not os.path.exists(main_file):
        return None
    try:
        return multiprocessing.get_context("forkserver")
    except ValueError:  # pragma: no cover - Windows
        return None


class _MutationCounter(DatabaseObserver):
    """Counts database mutations so stale worker snapshots can be detected.

    Notifications are *coalesced*: a batch of M mutations bumps the version
    once (via :meth:`batch_applied`, which suppresses the default per-fact
    replay), so M writes between two dispatches cost at most one snapshot
    rebuild — the version is a staleness bit, not a mutation count.
    """

    __slots__ = ("version",)

    def __init__(self) -> None:
        self.version = 0

    def fact_added(self, fact: Fact) -> None:
        self.version += 1

    def fact_discarded(self, fact: Fact) -> None:
        self.version += 1

    def batch_applied(self, changes) -> None:
        if changes:
            self.version += 1


class ParallelSessionStats:
    """Counters describing one :class:`ParallelCertaintySession`'s traffic.

    ``rebuilds``
        pool (re)builds — one per fresh pool and one per stale snapshot
        detected at dispatch, never one per mutation;
    ``dispatches`` / ``serial_decides``
        decide rounds fanned out to the pool / candidates decided inline
        (serial mode or below ``min_parallel_candidates``);
    ``snapshot_bytes_shipped``
        total pickled snapshot payload shipped to process pools (the full
        O(database) wire cost the sharded runtime's deltas avoid); only
        tracked when the session was built with ``track_bytes=True``.
    """

    __slots__ = ("rebuilds", "dispatches", "serial_decides", "snapshot_bytes_shipped")

    def __init__(self) -> None:
        self.rebuilds = 0
        self.dispatches = 0
        self.serial_decides = 0
        self.snapshot_bytes_shipped = 0

    def __repr__(self) -> str:
        return (
            f"ParallelSessionStats(rebuilds={self.rebuilds}, "
            f"dispatches={self.dispatches}, serial={self.serial_decides}, "
            f"snapshot_bytes={self.snapshot_bytes_shipped})"
        )


# -- worker-process state ---------------------------------------------------------
#
# One snapshot database + sequential session per worker process, installed
# by the pool initializer.  Module-level state is the standard idiom for
# ProcessPoolExecutor initializers: with the ``fork`` start method the
# snapshot is shared copy-on-write, with ``spawn`` it is shipped (pickled)
# exactly once per worker instead of once per task.

_WORKER_SESSION: Optional[CertaintySession] = None


def _init_worker(
    facts: FrozenSet[Fact], relations: Tuple[RelationSchema, ...]
) -> None:
    """Rebuild the immutable database snapshot inside a worker process."""
    global _WORKER_SESSION
    db = UncertainDatabase(facts, schema=DatabaseSchema(relations))
    # A worker-local plan cache: plans cannot cross process boundaries, and
    # the worker only ever sees one query shape per certain_answers call.
    # The intern table is explicitly private too: worker ids never cross
    # back undecoded, so sharing the worker-global table would only let
    # snapshots of different parent sessions grow each other's id space.
    _WORKER_SESSION = CertaintySession(
        db, plan_cache=PlanCache(maxsize=64), intern_table=InternTable()
    )


def _init_worker_columnar(
    snapshot: ColumnarSnapshot, relations: Tuple[RelationSchema, ...]
) -> None:
    """Rebuild the snapshot from shipped integer columns + intern values.

    The columnar wire format pickles as flat ``array('q')`` columns plus
    the raw constant values in use — no per-fact object graphs — and
    decodes locally, so worker hash salts never matter.  The worker session
    re-interns against an explicitly private table; block/term ids are
    process-local and portable data is decoded before it crosses back.
    """
    global _WORKER_SESSION
    db = UncertainDatabase(snapshot.iter_facts(), schema=DatabaseSchema(relations))
    _WORKER_SESSION = CertaintySession(
        db, plan_cache=PlanCache(maxsize=64), intern_table=InternTable()
    )


def _decide_chunk(
    session: CertaintySession,
    query: ConjunctiveQuery,
    candidates: Sequence[Tuple[Constant, ...]],
    allow_exponential: bool,
    with_support: bool,
) -> Tuple[List[Tuple[Constant, ...]], Optional[Dict[Tuple[Constant, ...], ReadSet]]]:
    """Decide a chunk on *session*, optionally capturing per-candidate read sets."""
    support: Optional[Dict[Tuple[Constant, ...], ReadSet]] = {} if with_support else None
    certain = session.decide_candidates(
        query, candidates, allow_exponential=allow_exponential, support=support
    )
    return certain, support


def _solve_chunk(
    query: ConjunctiveQuery,
    candidates: Sequence[Tuple[Constant, ...]],
    allow_exponential: bool,
    with_support: bool = False,
) -> Tuple[List[Tuple[Constant, ...]], Optional[Dict[Tuple[Constant, ...], ReadSet]]]:
    """Decide a chunk of candidate groundings in this worker process."""
    session = _WORKER_SESSION
    if session is None:  # pragma: no cover - initializer always runs first
        raise RuntimeError("worker process was not initialised with a snapshot")
    certain, support = _decide_chunk(
        session, query, candidates, allow_exponential, with_support
    )
    if support is not None and session.store is not None:
        # Worker block ids are local to this process's store; decode them
        # into portable (name, key) block keys before they ship back.
        store = session.store
        support = {
            candidate: read_set.to_portable(store)
            for candidate, read_set in support.items()
        }
    return certain, support


def _chunk(
    items: Sequence[Tuple[Constant, ...]], chunk_size: int
) -> List[Sequence[Tuple[Constant, ...]]]:
    return [items[i : i + chunk_size] for i in range(0, len(items), chunk_size)]


class ParallelCertaintySession:
    """Certain answers over one database, sharded across worker processes.

    Parameters
    ----------
    db:
        The uncertain database to serve queries against.
    max_workers:
        Worker count for the pool (default: ``os.cpu_count()``, capped at 8
        to keep fork storms bounded on large hosts).
    mode:
        ``"auto"`` (default) uses a process pool when more than one worker
        is configured and runs inline otherwise.  ``"process"`` and
        ``"thread"`` force that pool kind even for a single worker (useful
        for measuring dispatch overhead); thread mode shares one snapshot
        session across a thread pool — useful where subprocesses are
        unavailable, though with CPython's GIL it provides concurrency but
        little speedup.  ``"serial"`` never fans out.
    chunk_size:
        Candidates per dispatched task (default: candidates split into
        ``max_workers * 4`` chunks).
    min_parallel_candidates:
        Below this candidate count the sequential path runs inline.
    allow_exponential:
        Session-wide default for the brute-force escape hatch.
    plan_cache:
        The plan cache of the *inline* session (candidate enumeration,
        serial fallbacks, ``solve``/``is_certain``) and of thread-mode
        snapshot sessions.  Process workers always compile through a
        worker-local cache — plans cannot cross process boundaries.
    track_bytes:
        When set, :attr:`stats` additionally records the pickled snapshot
        bytes shipped at every process-pool rebuild (pickling the payload
        twice costs time, so byte accounting is opt-in for benchmarks).
    intern_table:
        Scoped intern table of the inline session (and of thread-mode
        snapshot sessions, which share the parent's process).  Defaults to
        the process-wide table; process workers always intern against
        explicitly private worker-local tables regardless.

    Guarantees
    ----------
    ``certain_answers`` returns exactly the set the sequential
    :class:`CertaintySession` returns — same candidates, same per-candidate
    decision procedure, order-independent set union.  Mutating the database
    between calls is supported: snapshots are versioned via the observer
    hooks (coalesced — one version bump per batch, however many facts it
    touches) and stale pools are rebuilt before the next parallel call; at
    most one rebuild happens per dispatch, counted in ``stats.rebuilds``.

    Example
    -------
    >>> with ParallelCertaintySession(db, max_workers=4) as psession:  # doctest: +SKIP
    ...     psession.certain_answers(open_query)
    """

    def __init__(
        self,
        db: UncertainDatabase,
        max_workers: Optional[int] = None,
        mode: str = "auto",
        chunk_size: Optional[int] = None,
        min_parallel_candidates: int = MIN_PARALLEL_CANDIDATES,
        allow_exponential: bool = False,
        plan_cache: Optional[PlanCache] = None,
        track_bytes: bool = False,
        intern_table: Optional[InternTable] = None,
    ) -> None:
        if mode not in ("auto", "process", "thread", "serial"):
            raise ValueError(
                f"unknown mode {mode!r}: use 'auto', 'process', 'thread' or 'serial'"
            )
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self._db = db
        self._max_workers = max_workers if max_workers is not None else min(
            os.cpu_count() or 1, 8
        )
        if mode == "auto":
            mode = "process" if self._max_workers > 1 else "serial"
        self._mode = mode
        self._chunk_size = chunk_size
        self._min_parallel = min_parallel_candidates
        self._allow_exponential = allow_exponential
        self._plan_cache = plan_cache
        self._intern_table = intern_table
        self._inner = CertaintySession(
            db,
            plan_cache=plan_cache,
            allow_exponential=allow_exponential,
            intern_table=intern_table,
        )
        self._version = _MutationCounter()
        db.register_observer(self._version)
        self._executor: Optional[Executor] = None
        self._snapshot_session: Optional[CertaintySession] = None  # thread mode
        self._snapshot_version = -1
        self._track_bytes = track_bytes
        self.stats = ParallelSessionStats()
        self._closed = False

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool down and detach from the database (idempotent)."""
        if self._closed:
            return
        self._teardown_pool()
        self._db.unregister_observer(self._version)
        self._inner.close()
        self._closed = True

    def __enter__(self) -> "ParallelCertaintySession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _teardown_pool(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._snapshot_session is not None:
            self._snapshot_session.close()
            self._snapshot_session = None
        self._snapshot_version = -1

    # -- views -------------------------------------------------------------------

    @property
    def db(self) -> UncertainDatabase:
        """The wrapped database."""
        return self._db

    @property
    def mode(self) -> str:
        """The configured execution mode."""
        return self._mode

    @property
    def max_workers(self) -> int:
        """The configured worker count."""
        return self._max_workers

    @property
    def closed(self) -> bool:
        """``True`` once :meth:`close` has run."""
        return self._closed

    @property
    def pool_started(self) -> bool:
        """``True`` while a worker pool is alive (small inputs never start one)."""
        return self._executor is not None

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"ParallelCertaintySession({self._db!r}, mode={self._mode!r}, "
            f"workers={self._max_workers}, {state})"
        )

    # -- sequential delegates ----------------------------------------------------

    def solve(
        self, query: ConjunctiveQuery, allow_exponential: Optional[bool] = None
    ) -> CertaintyOutcome:
        """Decide ``db ∈ CERTAINTY(q)`` (single instance — runs inline)."""
        self._check_open()
        return self._inner.solve(query, allow_exponential=allow_exponential)

    def is_certain(
        self, query: ConjunctiveQuery, allow_exponential: Optional[bool] = None
    ) -> bool:
        """``True`` iff every repair of the database satisfies *query*."""
        return self.solve(query, allow_exponential=allow_exponential).certain

    # -- the sharded loop --------------------------------------------------------

    def certain_answers(
        self,
        query: ConjunctiveQuery,
        allow_exponential: Optional[bool] = None,
    ) -> Set[Tuple[Constant, ...]]:
        """The certain answers of a non-Boolean query, sharded over workers.

        Identical to the sequential session's answer set: candidates are
        enumerated once on the live database, then partitioned into chunks
        that workers decide independently against the shared snapshot.
        """
        self._check_open()
        if query.is_boolean:
            raise ValueError("certain_answers expects a query with free variables")
        allow = (
            self._allow_exponential if allow_exponential is None else allow_exponential
        )
        candidates = self._inner.candidate_answers(query)
        return set(self.decide_candidates(query, candidates, allow_exponential=allow))

    def decide_candidates(
        self,
        query: ConjunctiveQuery,
        candidates: Sequence[Tuple[Constant, ...]],
        allow_exponential: Optional[bool] = None,
        support: Optional[Dict[Tuple[Constant, ...], ReadSet]] = None,
    ) -> List[Tuple[Constant, ...]]:
        """The certain candidates, in input order, sharded over workers.

        The parallel counterpart of
        :meth:`CertaintySession.decide_candidates` — same contract, same
        order, with chunks decided concurrently.  When *support* is given,
        per-candidate :class:`~repro.fo.compile.ReadSet`\\ s captured inside
        the workers are shipped back and merged into it (read sets are
        plain picklable values), so the incremental view subsystem can fan
        large dirty-set re-decisions out without losing its support index.
        Small inputs (below ``min_parallel_candidates``) run inline.

        Returned read sets are always *portable* (object-space block keys):
        the sessions that decide here — worker snapshots, the thread-mode
        snapshot, the inline fallback — each own a columnar store whose
        block-id space differs from any caller-side store, so ids are
        decoded before they leave this method.
        """
        self._check_open()
        allow = (
            self._allow_exponential if allow_exponential is None else allow_exponential
        )
        if self._mode == "serial" or len(candidates) < self._min_parallel:
            certain = self._inner.decide_candidates(
                query, candidates, allow_exponential=allow, support=support
            )
            self._portabilize(support, self._inner.store)
            self.stats.serial_decides += len(candidates)
            return certain
        chunks = _chunk(candidates, self._effective_chunk_size(len(candidates)))
        try:
            return self._scatter(query, chunks, allow, support)
        except BrokenExecutor:
            # A worker died (OOM kill, interpreter crash).  Tear the broken
            # pool down so this call — and every later one — gets a fresh
            # pool instead of resubmitting to a permanently dead executor.
            self._teardown_pool()
            return self._scatter(query, chunks, allow, support)

    @staticmethod
    def _portabilize(
        support: Optional[Dict[Tuple[Constant, ...], ReadSet]], store
    ) -> None:
        """Decode store-local block ids in *support* into portable keys."""
        if support is None or store is None:
            return
        for candidate, read_set in support.items():
            support[candidate] = read_set.to_portable(store)

    def _scatter(
        self,
        query: ConjunctiveQuery,
        chunks: Sequence[Sequence[Tuple[Constant, ...]]],
        allow: bool,
        support: Optional[Dict[Tuple[Constant, ...], ReadSet]] = None,
    ) -> List[Tuple[Constant, ...]]:
        """Dispatch chunks to the pool and concatenate the shard results."""
        self._ensure_pool()
        assert self._executor is not None
        fault = _fire_fault("parallel.dispatch")
        if fault is not None and fault.kind == "error":
            # Simulate the pool breaking at dispatch time; the caller's
            # BrokenExecutor handler tears the pool down and retries.
            raise BrokenExecutor("injected parallel dispatch failure")
        self.stats.dispatches += 1
        with_support = support is not None
        if self._mode == "thread":
            session = self._snapshot_session
            assert session is not None
            futures = [
                self._executor.submit(
                    _decide_chunk, session, query, chunk, allow, with_support
                )
                for chunk in chunks
            ]
        else:
            futures = [
                self._executor.submit(_solve_chunk, query, chunk, allow, with_support)
                for chunk in chunks
            ]
        certain: List[Tuple[Constant, ...]] = []
        for future in futures:
            chunk_certain, chunk_support = future.result()
            certain.extend(chunk_certain)
            if support is not None and chunk_support is not None:
                support.update(chunk_support)
        if self._mode == "thread" and support is not None:
            # Thread-mode decisions ran on the snapshot session's store.
            session = self._snapshot_session
            self._portabilize(support, session.store if session is not None else None)
        return certain

    def _effective_chunk_size(self, n_candidates: int) -> int:
        if self._chunk_size is not None:
            return max(1, self._chunk_size)
        return max(1, -(-n_candidates // (self._max_workers * _CHUNKS_PER_WORKER)))

    def _ensure_pool(self) -> None:
        """(Re)build the worker pool when absent or holding a stale snapshot."""
        if self._executor is not None and self._snapshot_version == self._version.version:
            return
        self._teardown_pool()
        self.stats.rebuilds += 1
        version = self._version.version
        if self._mode == "thread":
            snapshot = self._db.copy()
            self._snapshot_session = CertaintySession(
                snapshot,
                plan_cache=self._plan_cache,
                allow_exponential=self._allow_exponential,
                intern_table=self._intern_table,
            )
            self._executor = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="repro-certainty",
            )
        else:
            relations = tuple(self._db.schema)
            store = self._inner.store
            if store is not None:
                # Columnar backend: ship integer columns + intern values
                # instead of pickling the fact object graph.
                initializer, payload = _init_worker_columnar, store.snapshot()
            else:
                initializer, payload = _init_worker, self._db.facts
            if self._track_bytes:
                # Every worker receives the full snapshot through the pool
                # initializer: the per-rebuild wire cost is payload × workers.
                self.stats.snapshot_bytes_shipped += (
                    len(pickle.dumps((payload, relations), pickle.HIGHEST_PROTOCOL))
                    * self._max_workers
                )
            self._executor = ProcessPoolExecutor(
                max_workers=self._max_workers,
                mp_context=_pool_mp_context(),
                initializer=initializer,
                initargs=(payload, relations),
            )
        self._snapshot_version = version

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("this ParallelCertaintySession is closed")


def certain_answers_parallel(
    db: UncertainDatabase,
    query: ConjunctiveQuery,
    allow_exponential: bool = False,
    max_workers: Optional[int] = None,
    mode: str = "auto",
    chunk_size: Optional[int] = None,
) -> Set[Tuple[Constant, ...]]:
    """One-shot parallel certain answers (see :class:`ParallelCertaintySession`).

    Spins a session up, shards the candidate loop, and tears the pool down
    again; returns exactly the set the sequential ``certain_answers``
    returns.  For repeated queries against the same database prefer a
    long-lived :class:`ParallelCertaintySession` so workers and snapshots
    are reused across calls.
    """
    with ParallelCertaintySession(
        db,
        max_workers=max_workers,
        mode=mode,
        chunk_size=chunk_size,
        allow_exponential=allow_exponential,
    ) as session:
        return session.certain_answers(query)
