"""A bounded LRU cache of compiled query plans.

Heavy query traffic tends to repeat a small working set of query shapes; a
:class:`PlanCache` keeps the most recently used compiled plans so repeated
``solve``/``is_certain``/``certain_answers`` calls skip classification
entirely.  The cache is keyed by the query itself (queries hash as sets of
atoms plus the free-variable tuple, so semantically equal queries share one
plan).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Optional

from ..query.conjunctive import ConjunctiveQuery
from .plan import QueryPlan, compile_plan


class CacheStats:
    """Hit/miss/eviction counters of a :class:`PlanCache`."""

    __slots__ = ("hits", "misses", "evictions", "size", "maxsize")

    def __init__(self, hits: int, misses: int, evictions: int, size: int, maxsize: int) -> None:
        self.hits = hits
        self.misses = misses
        self.evictions = evictions
        self.size = size
        self.maxsize = maxsize

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, size={self.size}/{self.maxsize})"
        )


class PlanCache:
    """Bounded LRU mapping queries to compiled :class:`QueryPlan` objects."""

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError("PlanCache maxsize must be at least 1")
        self._maxsize = maxsize
        self._plans: "OrderedDict[ConjunctiveQuery, QueryPlan]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def maxsize(self) -> int:
        return self._maxsize

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, query: object) -> bool:
        return query in self._plans

    def get(self, query: ConjunctiveQuery) -> Optional[QueryPlan]:
        """The cached plan for *query*, or ``None`` (counts as hit/miss)."""
        plan = self._plans.get(query)
        if plan is None:
            self._misses += 1
            return None
        self._plans.move_to_end(query)
        self._hits += 1
        return plan

    def put(self, query: ConjunctiveQuery, plan: QueryPlan) -> None:
        """Insert (or refresh) a plan, evicting the least recently used one."""
        if query in self._plans:
            self._plans.move_to_end(query)
        self._plans[query] = plan
        while len(self._plans) > self._maxsize:
            self._plans.popitem(last=False)
            self._evictions += 1

    def get_or_compile(
        self,
        query: ConjunctiveQuery,
        compiler: Callable[[ConjunctiveQuery], QueryPlan] = compile_plan,
    ) -> QueryPlan:
        """The cached plan for *query*, compiling and inserting on a miss."""
        plan = self.get(query)
        if plan is None:
            plan = compiler(query)
            self.put(query, plan)
        return plan

    def clear(self) -> None:
        """Drop all plans and reset the counters."""
        self._plans.clear()
        self._hits = self._misses = self._evictions = 0

    @property
    def stats(self) -> CacheStats:
        """A snapshot of the cache counters."""
        return CacheStats(
            self._hits, self._misses, self._evictions, len(self._plans), self._maxsize
        )


#: The process-wide cache behind the one-shot ``solve``/``certain_answers``.
_default_cache = PlanCache(maxsize=256)


def default_plan_cache() -> PlanCache:
    """The shared plan cache used by the module-level one-shot APIs."""
    return _default_cache
