"""A bounded, thread-safe LRU cache of compiled query plans.

Heavy query traffic tends to repeat a small working set of query shapes; a
:class:`PlanCache` keeps the most recently used compiled plans so repeated
``solve``/``is_certain``/``certain_answers`` calls skip classification
entirely.  The cache is keyed by the query itself (queries hash as sets of
atoms plus the free-variable tuple, so semantically equal queries share one
plan).

All cache operations — lookup, insertion, LRU eviction, counter updates,
stats snapshots — are atomic under one internal lock, so a single cache can
serve many threads.  :meth:`PlanCache.get_or_compile` additionally
*single-flights* compilation: when several threads miss on the same query
concurrently, exactly one compiles while the others wait for the result, so
a query is never compiled twice for one cache.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Optional

from ..query.conjunctive import ConjunctiveQuery
from .plan import QueryPlan, compile_plan


class CacheStats:
    """Hit/miss/eviction counters of a :class:`PlanCache`."""

    __slots__ = ("hits", "misses", "evictions", "size", "maxsize", "compiles")

    def __init__(
        self,
        hits: int,
        misses: int,
        evictions: int,
        size: int,
        maxsize: int,
        compiles: int = 0,
    ) -> None:
        self.hits = hits
        self.misses = misses
        self.evictions = evictions
        self.size = size
        self.maxsize = maxsize
        self.compiles = compiles

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, compiles={self.compiles}, "
            f"size={self.size}/{self.maxsize})"
        )


class PlanCache:
    """Bounded LRU mapping queries to compiled :class:`QueryPlan` objects.

    Thread-safe: every public operation is atomic, and concurrent
    :meth:`get_or_compile` calls for the same missing query compile it
    exactly once (the losers of the race block until the winner's plan is
    cached).  Compilation itself runs *outside* the cache lock, so a slow
    compile of one query never stalls hits on other queries.
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError("PlanCache maxsize must be at least 1")
        self._maxsize = maxsize
        self._plans: "OrderedDict[ConjunctiveQuery, QueryPlan]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._compiles = 0
        self._lock = threading.RLock()
        #: Queries currently being compiled by some thread, mapped to the
        #: event their waiters block on.
        self._inflight: Dict[ConjunctiveQuery, threading.Event] = {}

    @property
    def maxsize(self) -> int:
        return self._maxsize

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, query: object) -> bool:
        with self._lock:
            return query in self._plans

    def get(self, query: ConjunctiveQuery) -> Optional[QueryPlan]:
        """The cached plan for *query*, or ``None`` (counts as hit/miss)."""
        with self._lock:
            plan = self._plans.get(query)
            if plan is None:
                self._misses += 1
                return None
            self._plans.move_to_end(query)
            self._hits += 1
            return plan

    def put(self, query: ConjunctiveQuery, plan: QueryPlan) -> None:
        """Insert (or refresh) a plan, evicting the least recently used one."""
        with self._lock:
            self._put_locked(query, plan)

    def _put_locked(self, query: ConjunctiveQuery, plan: QueryPlan) -> None:
        if query in self._plans:
            self._plans.move_to_end(query)
        self._plans[query] = plan
        while len(self._plans) > self._maxsize:
            self._plans.popitem(last=False)
            self._evictions += 1

    def get_or_compile(
        self,
        query: ConjunctiveQuery,
        compiler: Callable[[ConjunctiveQuery], QueryPlan] = compile_plan,
    ) -> QueryPlan:
        """The cached plan for *query*, compiling and inserting on a miss.

        Concurrent misses on the same query are single-flighted: one caller
        runs *compiler* (outside the lock) while the rest wait and then read
        the freshly cached plan.  Counter semantics under contention: every
        call contributes exactly one hit or one miss, and the number of
        misses equals the number of actual compiler invocations.
        """
        while True:
            with self._lock:
                plan = self._plans.get(query)
                if plan is not None:
                    self._plans.move_to_end(query)
                    self._hits += 1
                    return plan
                event = self._inflight.get(query)
                if event is None:
                    event = threading.Event()
                    self._inflight[query] = event
                    self._misses += 1
                    owner = True
                else:
                    owner = False
            if not owner:
                # Another thread is compiling this query; wait for it and
                # serve its freshly cached plan (counted as this call's one
                # hit — so hits + misses always equals the number of calls,
                # and misses equals the number of compiler invocations).
                event.wait()
                with self._lock:
                    plan = self._plans.get(query)
                    if plan is not None:
                        self._plans.move_to_end(query)
                        self._hits += 1
                        return plan
                # The owner failed (compiler raised) — race to take over.
                continue
            try:
                plan = compiler(query)
            except BaseException:
                with self._lock:
                    self._inflight.pop(query, None)
                event.set()
                raise
            with self._lock:
                self._put_locked(query, plan)
                self._compiles += 1
                self._inflight.pop(query, None)
            event.set()
            return plan

    def clear(self) -> None:
        """Drop all plans and reset the counters."""
        with self._lock:
            self._plans.clear()
            self._hits = self._misses = self._evictions = self._compiles = 0

    @property
    def stats(self) -> CacheStats:
        """A consistent snapshot of the cache counters."""
        with self._lock:
            return CacheStats(
                self._hits,
                self._misses,
                self._evictions,
                len(self._plans),
                self._maxsize,
                self._compiles,
            )


#: The process-wide cache behind the one-shot ``solve``/``certain_answers``.
_default_cache = PlanCache(maxsize=256)


def default_plan_cache() -> PlanCache:
    """The shared plan cache used by the module-level one-shot APIs."""
    return _default_cache
