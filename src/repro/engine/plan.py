"""Compiled query plans: classify once, execute many times.

A :class:`QueryPlan` separates the *query-compilation* work of the
CERTAINTY solver — classification on the tractability frontier, attack-graph
construction, solver dispatch, greedy atom ordering — from the per-database
*execution* work.  Compilation depends only on the query, so a plan compiled
once can be executed against many databases (or against one mutating
database through a ``CertaintySession``) without re-classifying.

Non-Boolean queries are compiled from a *representative grounding*: the free
variables are replaced by fresh placeholder constants.  For self-join-free
queries the complexity band of ``CERTAINTY(q[free ↦ t])`` does not depend on
the constants in ``t`` — attacks, functional-dependency closures, hypergraph
acyclicity and the ``C(k)``/``AC(k)`` shape are all functions of the
variable pattern alone, which is identical for every candidate tuple — so
one classification covers every grounding of the batched
``certain_answers`` loop.  Queries *with* self-joins are the one exception:
a candidate tuple with repeated constants can collapse two same-relation
atoms into one and change the band, so their plans are marked
``per_grounding`` and re-classify each grounding (matching the historical
per-candidate behaviour).
"""

from __future__ import annotations

from typing import Optional

from ..core.classify import Classification, classify_cached
from ..core.complexity import ComplexityBand
from ..model.database import UncertainDatabase
from ..model.symbols import Constant
from ..query.conjunctive import ConjunctiveQuery
from ..query.evaluation import order_atoms
from ..query.substitution import ground_free_variables
from ..certainty.brute_force import certain_brute_force
from ..certainty.context import SolverContext
from ..certainty.cycle_query import certain_cycle_query
from ..certainty.exceptions import IntractableQueryError, UnsupportedQueryError
from ..certainty.rewriting import certain_fo
from ..certainty.solver import CertaintyOutcome
from ..certainty.terminal_cycles import certain_terminal_cycles

#: Prefix of the fresh constants used to ground free variables when
#: compiling the plan of a non-Boolean query.
_PLACEHOLDER_PREFIX = "__plan_placeholder_"

_BAND_METHODS = {
    ComplexityBand.FO: "fo-rewriting",
    ComplexityBand.PTIME_NOT_FO: "theorem3-terminal-cycles",
    ComplexityBand.PTIME_CYCLE_QUERY: "theorem4-cycle-query",
}


def _representative_grounding(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Ground the free variables with distinct fresh placeholder constants."""
    placeholders = [
        f"{_PLACEHOLDER_PREFIX}{i}__" for i in range(len(query.free_variables))
    ]
    return ground_free_variables(query, placeholders)


class QueryPlan:
    """The compiled form of one CERTAINTY(q) problem.

    Attributes
    ----------
    source_query:
        The query the plan was compiled from (possibly non-Boolean).
    query:
        The Boolean query the classification refers to: ``source_query``
        itself when Boolean, otherwise its representative grounding.
    classification:
        The frontier classification, computed once at compile time.
    method:
        The dispatched algorithm name (same strings as ``solve``):
        ``"fo-rewriting"``, ``"theorem3-terminal-cycles"``,
        ``"theorem4-cycle-query"``, or ``"brute-force"``.
    atom_order:
        The greedy join order of the Boolean query's atoms (shared with the
        evaluation layer's memoised :func:`order_atoms`).
    per_grounding:
        ``True`` when the compiled dispatch cannot be trusted for arbitrary
        groundings (non-Boolean queries with self-joins, where repeated
        candidate constants can collapse atoms): :meth:`execute` then
        re-classifies each supplied grounding.
    """

    __slots__ = (
        "source_query",
        "query",
        "classification",
        "method",
        "atom_order",
        "per_grounding",
    )

    def __init__(
        self,
        source_query: ConjunctiveQuery,
        query: ConjunctiveQuery,
        classification: Classification,
        method: str,
        per_grounding: bool = False,
    ) -> None:
        self.source_query = source_query
        self.query = query
        self.classification = classification
        self.method = method
        self.atom_order = order_atoms(query)
        self.per_grounding = per_grounding

    @property
    def band(self) -> ComplexityBand:
        """The complexity band of the classification."""
        return self.classification.band

    @property
    def requires_exponential(self) -> bool:
        """``True`` when execution needs ``allow_exponential=True``."""
        return self.method == "brute-force"

    def __repr__(self) -> str:
        return f"QueryPlan({self.source_query} → {self.band.name} via {self.method})"

    def execute(
        self,
        db: UncertainDatabase,
        grounding: Optional[ConjunctiveQuery] = None,
        allow_exponential: bool = False,
        context: Optional[SolverContext] = None,
    ) -> CertaintyOutcome:
        """Run the compiled plan against *db*.

        *grounding*, used by the batched ``certain_answers`` path, is a
        Boolean grounding of ``source_query``'s shape to execute instead of
        the plan's own query; it shares the variable pattern the plan was
        compiled from, so for self-join-free queries the band (and hence
        the compiled dispatch) is constant-independent and remains valid.
        ``per_grounding`` plans instead re-classify each grounding, because
        repeated constants can collapse same-relation atoms and change the
        band (classification stays memoised through ``classify_cached``).
        """
        if grounding is not None and self.per_grounding:
            return compile_plan(grounding).execute(
                db, allow_exponential=allow_exponential, context=context
            )
        target = grounding if grounding is not None else self.query
        if self.method == "fo-rewriting":
            return CertaintyOutcome(
                certain_fo(db, target, context=context), self.method, self.classification
            )
        if self.method == "theorem3-terminal-cycles":
            return CertaintyOutcome(
                certain_terminal_cycles(db, target, context=context),
                self.method,
                self.classification,
            )
        if self.method == "theorem4-cycle-query":
            return CertaintyOutcome(
                certain_cycle_query(db, target, context=context),
                self.method,
                self.classification,
            )
        if not allow_exponential:
            if self.band is ComplexityBand.CONP_COMPLETE:
                raise IntractableQueryError(
                    f"CERTAINTY({target}) is coNP-complete; "
                    "pass allow_exponential=True to use brute force"
                )
            raise UnsupportedQueryError(
                f"no polynomial algorithm is known for {target} ({self.band.name}); "
                "pass allow_exponential=True to use brute force"
            )
        return CertaintyOutcome(
            certain_brute_force(db, target, context=context), self.method, self.classification
        )


def compile_plan(
    query: ConjunctiveQuery,
    classification: Optional[Classification] = None,
) -> QueryPlan:
    """Compile *query* into a :class:`QueryPlan`.

    Classification (the expensive, database-independent part of ``solve``)
    happens here, at most once per compiled plan — through the process-wide
    ``classify_cached`` memo, so even separate :class:`PlanCache` instances
    share classification work.  An explicit *classification* can be injected
    to bypass it (used by the one-shot ``solve`` wrapper's
    ``classification=`` parameter).
    """
    boolean = query if query.is_boolean else _representative_grounding(query)
    if classification is None:
        classification = classify_cached(boolean)
    method = _BAND_METHODS.get(classification.band, "brute-force")
    per_grounding = not query.is_boolean and query.has_self_join
    return QueryPlan(query, boolean, classification, method, per_grounding=per_grounding)
