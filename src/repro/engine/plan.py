"""Compiled query plans: classify once, execute many times.

A :class:`QueryPlan` separates the *query-compilation* work of the
CERTAINTY solver — classification on the tractability frontier, attack-graph
construction, solver dispatch, greedy atom ordering — from the per-database
*execution* work.  Compilation depends only on the query, so a plan compiled
once can be executed against many databases (or against one mutating
database through a ``CertaintySession``) without re-classifying.

Non-Boolean queries are compiled from a *representative grounding*: the free
variables are replaced by fresh placeholder constants.  For self-join-free
queries the complexity band of ``CERTAINTY(q[free ↦ t])`` does not depend on
the constants in ``t`` — attacks, functional-dependency closures, hypergraph
acyclicity and the ``C(k)``/``AC(k)`` shape are all functions of the
variable pattern alone, which is identical for every candidate tuple — so
one classification covers every grounding of the batched
``certain_answers`` loop.  Queries *with* self-joins are the one exception:
a candidate tuple with repeated constants can collapse two same-relation
atoms into one and change the band, so their plans are marked
``per_grounding`` and re-classify each grounding (matching the historical
per-candidate behaviour).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.classify import Classification, classify_cached
from ..core.complexity import ComplexityBand
from ..model.database import UncertainDatabase
from ..model.symbols import Constant, Variable, is_constant
from ..query.conjunctive import ConjunctiveQuery
from ..query.evaluation import order_atoms
from ..query.substitution import ground_free_variables
from ..certainty.brute_force import certain_brute_force
from ..certainty.context import SolverContext
from ..certainty.cycle_query import certain_cycle_query
from ..certainty.exceptions import IntractableQueryError, UnsupportedQueryError
from ..certainty.rewriting import certain_fo
from ..certainty.solver import CertaintyOutcome
from ..certainty.terminal_cycles import certain_terminal_cycles
from ..fo.compile import CompiledFormula, ReadSetRecorder, compile_formula
from ..fo.formulas import And, AtomFormula, Exists, replace_constants
from ..fo.rewrite import certain_rewriting_cached
from ..model.valuation import Valuation

#: Prefix of the fresh constants used to ground free variables when
#: compiling the plan of a non-Boolean query.
_PLACEHOLDER_PREFIX = "__plan_placeholder_"

_BAND_METHODS = {
    ComplexityBand.FO: "fo-rewriting",
    ComplexityBand.PTIME_NOT_FO: "theorem3-terminal-cycles",
    ComplexityBand.PTIME_CYCLE_QUERY: "theorem4-cycle-query",
}


def _record_query_support(
    recorder: ReadSetRecorder,
    target: ConjunctiveQuery,
    db: UncertainDatabase,
    context: Optional[SolverContext],
) -> None:
    """Record the *static* support of a non-rewriting decision on *target*.

    The Theorem 3/4 solvers, the peeling fallback and brute force read the
    database through their own algorithms rather than the instrumented
    compiled-formula evaluator, but their verdict is still a function of a
    statically known sub-database: per atom of the (grounded, Boolean)
    query, the blocks whose key constants agree with the atom's key terms.
    A block matching no atom's key pattern contains no fact any witness can
    use — the key pattern constrains *key* positions only, so the whole
    block matches or misses — and purification (Lemma 1) removes it without
    changing certainty; hence mutations confined to such blocks can never
    flip the verdict.

    Per atom this records: a single block when every key term is a constant
    (as a dense block id on the columnar backend — interning the id even
    when the block is currently absent, so later insertions still match); a
    key mask when only some key terms are constants; the whole relation
    when none are.
    """
    index = context.index_for(db) if context is not None else None
    store = getattr(index, "store", None)
    for atom in target.atoms:
        name = atom.relation.name
        key_terms = atom.key_terms
        if all(is_constant(term) for term in key_terms):
            if store is not None:
                intern = store.table.intern
                block_id = store.block_id(
                    name, tuple(intern(term) for term in key_terms)
                )
                recorder.record_block_id(name, block_id)
            else:
                recorder.record_block(name, tuple(key_terms))
        elif any(is_constant(term) for term in key_terms):
            recorder.record_key_mask(
                name,
                tuple(term if is_constant(term) else None for term in key_terms),
            )
        else:
            recorder.record_relation(name)


def _representative_grounding(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Ground the free variables with distinct fresh placeholder constants."""
    placeholders = [
        f"{_PLACEHOLDER_PREFIX}{i}__" for i in range(len(query.free_variables))
    ]
    return ground_free_variables(query, placeholders)


def _fo_rewriting_plan(query: ConjunctiveQuery) -> Optional[CompiledFormula]:
    """The compiled certain FO rewriting of *query*, or ``None``.

    ``None`` means the Theorem 1 construction is unavailable for this query
    (a residual with no unattacked atom); execution then falls back to the
    peeling solver, which implements the same induction operationally.
    """
    try:
        return compile_formula(certain_rewriting_cached(query))
    except UnsupportedQueryError:
        return None


def _open_fo_rewriting_plan(
    source_query: ConjunctiveQuery, grounded: ConjunctiveQuery
) -> Optional[Tuple[CompiledFormula, Tuple[Variable, ...]]]:
    """One compiled rewriting serving *every* grounding of an open FO query.

    The rewriting of the representative grounding is constructed once, then
    its placeholder constants are substituted back by placeholder
    *variables* (one per free variable of *source_query*, in order) that a
    per-candidate valuation binds at evaluation time.  This is sound for
    self-join-free queries because constants never enter the attack graph
    (closures and join-tree labels are built from variables alone), so the
    rewriting *structure* is identical for every candidate tuple — only
    the constants differ.  Returns ``(compiled plan, valuation variables)``
    or ``None`` when the construction is unavailable (fallback: compile per
    grounding).
    """
    if any(v.name.startswith(_PLACEHOLDER_PREFIX) for v in grounded.variables):
        return None  # a user variable shadows the placeholder namespace
    # A user *constant* in the placeholder namespace is indistinguishable
    # from a grounding placeholder once the representative grounding is
    # built, so the back-substitution would capture it too — bail out.
    for atom in source_query.atoms:
        for constant in atom.constants:
            if isinstance(constant.value, str) and constant.value.startswith(
                _PLACEHOLDER_PREFIX
            ):
                return None
    try:
        formula = certain_rewriting_cached(grounded)
    except UnsupportedQueryError:
        return None
    candidate_vars = tuple(
        Variable(f"{_PLACEHOLDER_PREFIX}{i}__")
        for i in range(len(source_query.free_variables))
    )
    mapping = {
        Constant(f"{_PLACEHOLDER_PREFIX}{i}__"): variable
        for i, variable in enumerate(candidate_vars)
    }
    return compile_formula(replace_constants(formula, mapping)), candidate_vars


class QueryPlan:
    """The compiled form of one CERTAINTY(q) problem.

    Attributes
    ----------
    source_query:
        The query the plan was compiled from (possibly non-Boolean).
    query:
        The Boolean query the classification refers to: ``source_query``
        itself when Boolean, otherwise its representative grounding.
    classification:
        The frontier classification, computed once at compile time.
    method:
        The dispatched algorithm name (same strings as ``solve``):
        ``"fo-rewriting"``, ``"theorem3-terminal-cycles"``,
        ``"theorem4-cycle-query"``, or ``"brute-force"``.
    atom_order:
        The greedy join order of the Boolean query's atoms (shared with the
        evaluation layer's memoised :func:`order_atoms`).
    fo_rewriting:
        For FO-band plans, the certain first-order rewriting of ``query``
        compiled into a guarded set-at-a-time plan
        (:class:`~repro.fo.compile.CompiledFormula`); ``None`` for other
        bands.  Because plans are cached in the :class:`PlanCache`, the
        rewriting is constructed and compiled once per query shape and
        executed by ordinary relational evaluation — the operational
        content of Theorem 1.  For non-Boolean plans the compiled formula
        is *open*: its free variables are the ``fo_candidate_vars`` that a
        per-candidate valuation binds, so one plan serves every grounding
        of a batched ``certain_answers`` call.
    fo_candidate_vars:
        The valuation variables of an open ``fo_rewriting`` (aligned with
        ``source_query.free_variables``); ``None`` for Boolean plans.
    per_grounding:
        ``True`` when the compiled dispatch cannot be trusted for arbitrary
        groundings (non-Boolean queries with self-joins, where repeated
        candidate constants can collapse atoms): :meth:`execute` then
        re-classifies each supplied grounding.
    """

    __slots__ = (
        "source_query",
        "query",
        "classification",
        "method",
        "atom_order",
        "fo_rewriting",
        "fo_candidate_vars",
        "per_grounding",
        "_candidate_plan",
    )

    def __init__(
        self,
        source_query: ConjunctiveQuery,
        query: ConjunctiveQuery,
        classification: Classification,
        method: str,
        per_grounding: bool = False,
    ) -> None:
        self.source_query = source_query
        self.query = query
        self.classification = classification
        self.method = method
        self.atom_order = order_atoms(query)
        self.fo_rewriting: Optional[CompiledFormula] = None
        self.fo_candidate_vars: Optional[Tuple[Variable, ...]] = None
        if method == "fo-rewriting" and not per_grounding:
            if source_query.is_boolean:
                self.fo_rewriting = _fo_rewriting_plan(query)
            else:
                open_plan = _open_fo_rewriting_plan(source_query, query)
                if open_plan is not None:
                    self.fo_rewriting, self.fo_candidate_vars = open_plan
        self.per_grounding = per_grounding
        self._candidate_plan: Optional[CompiledFormula] = None

    @property
    def band(self) -> ComplexityBand:
        """The complexity band of the classification."""
        return self.classification.band

    @property
    def batched_fo(self) -> bool:
        """``True`` when one open compiled rewriting serves every grounding.

        Such plans can decide a whole batch of candidate tuples with a
        single set-at-a-time plan execution (seed every candidate row at
        once and keep the satisfying subset) instead of evaluating the
        rewriting once per candidate — the batched kernel of
        ``CertaintySession.decide_candidates``.
        """
        return (
            self.fo_rewriting is not None
            and self.fo_candidate_vars is not None
            and not self.per_grounding
        )

    def candidate_plan(self) -> CompiledFormula:
        """The compiled *candidate enumeration* plan of the source query.

        Candidates of ``certain_answers`` are the answers of the query over
        the whole (inconsistent) database; this compiles the query itself —
        ``∃ bound-vars. ∧ atoms`` — into the same set-at-a-time relational
        machinery the rewritings run on, so enumeration shares the
        integer-encoded kernels (and their per-block probes) instead of the
        object-level backtracking join.  Built lazily, cached on the plan.
        """
        plan = self._candidate_plan
        if plan is None:
            query = self.source_query
            body = And([AtomFormula(atom) for atom in query.atoms])
            bound = sorted(
                query.variables - set(query.free_variables), key=lambda v: v.name
            )
            formula = Exists(bound, body) if bound else body
            plan = compile_formula(formula)
            self._candidate_plan = plan  # idempotent under races
        return plan

    @property
    def requires_exponential(self) -> bool:
        """``True`` when execution needs ``allow_exponential=True``."""
        return self.method == "brute-force"

    def __repr__(self) -> str:
        return f"QueryPlan({self.source_query} → {self.band.name} via {self.method})"

    def execute(
        self,
        db: UncertainDatabase,
        grounding: Optional[ConjunctiveQuery] = None,
        allow_exponential: bool = False,
        context: Optional[SolverContext] = None,
        candidate: Optional[Tuple[Constant, ...]] = None,
        recorder: Optional[ReadSetRecorder] = None,
    ) -> CertaintyOutcome:
        """Run the compiled plan against *db*.

        *grounding*, used by the batched ``certain_answers`` path, is a
        Boolean grounding of ``source_query``'s shape to execute instead of
        the plan's own query; it shares the variable pattern the plan was
        compiled from, so for self-join-free queries the band (and hence
        the compiled dispatch) is constant-independent and remains valid.
        ``per_grounding`` plans instead re-classify each grounding, because
        repeated constants can collapse same-relation atoms and change the
        band (classification stays memoised through ``classify_cached``).

        *candidate* is the tuple of constants the grounding substituted for
        ``source_query.free_variables``; when the plan carries an open
        compiled rewriting, FO execution binds the candidate through a
        valuation instead of constructing a rewriting per grounding.

        *recorder*, when supplied, collects the read set of the decision
        (see :class:`~repro.fo.compile.ReadSet`).  Compiled-rewriting
        execution is instrumented probe-by-probe; every other path — the
        peeling fallback, the Theorem 3/4 solvers, brute force — records
        the *static* per-atom support of the grounded query instead (blocks
        named by constant keys, key masks for partially constant keys, and
        full relations otherwise; see :func:`_record_query_support`), so
        callers always receive a sound over-approximation without any path
        falling back to an opaque, dirty-on-every-mutation read set.
        """
        if grounding is not None and self.per_grounding:
            return compile_plan(grounding).execute(
                db,
                allow_exponential=allow_exponential,
                context=context,
                recorder=recorder,
            )
        target = grounding if grounding is not None else self.query
        if self.method == "fo-rewriting":
            certain = self._execute_fo(db, grounding, candidate, context, recorder)
            return CertaintyOutcome(certain, self.method, self.classification)
        if recorder is not None:
            # The solvers below are not probe-instrumented; record their
            # static per-atom support instead.
            _record_query_support(recorder, target, db, context)
        if self.method == "theorem3-terminal-cycles":
            return CertaintyOutcome(
                certain_terminal_cycles(db, target, context=context),
                self.method,
                self.classification,
            )
        if self.method == "theorem4-cycle-query":
            return CertaintyOutcome(
                certain_cycle_query(db, target, context=context),
                self.method,
                self.classification,
            )
        if not allow_exponential:
            if self.band is ComplexityBand.CONP_COMPLETE:
                raise IntractableQueryError(
                    f"CERTAINTY({target}) is coNP-complete; "
                    "pass allow_exponential=True to use brute force"
                )
            raise UnsupportedQueryError(
                f"no polynomial algorithm is known for {target} ({self.band.name}); "
                "pass allow_exponential=True to use brute force"
            )
        return CertaintyOutcome(
            certain_brute_force(db, target, context=context), self.method, self.classification
        )

    def _execute_fo(
        self,
        db: UncertainDatabase,
        grounding: Optional[ConjunctiveQuery],
        candidate: Optional[Tuple[Constant, ...]],
        context: Optional[SolverContext],
        recorder: Optional[ReadSetRecorder] = None,
    ) -> bool:
        """FO dispatch: evaluate the compiled rewriting, peel as fallback."""
        index = context.index_for(db) if context is not None else None
        if self.fo_candidate_vars is not None and self.fo_rewriting is not None:
            if candidate is None and grounding is None:
                # Representative execution of a non-Boolean plan: bind the
                # placeholder constants themselves (the historical target).
                candidate = tuple(
                    Constant(v.name) for v in self.fo_candidate_vars
                )
            if candidate is not None:
                valuation = Valuation(dict(zip(self.fo_candidate_vars, candidate)))
                return self.fo_rewriting.evaluate(
                    db, index=index, valuation=valuation, recorder=recorder
                )
        elif self.fo_rewriting is not None and grounding is None:
            return self.fo_rewriting.evaluate(db, index=index, recorder=recorder)
        rewriting = _fo_rewriting_plan(grounding) if grounding is not None else None
        if rewriting is not None:
            return rewriting.evaluate(db, index=index, recorder=recorder)
        target = grounding if grounding is not None else self.query
        if recorder is not None:
            # The peeling fallback is not probe-instrumented; record its
            # static per-atom support instead.
            _record_query_support(recorder, target, db, context)
        return certain_fo(db, target, context=context)


def compile_plan(
    query: ConjunctiveQuery,
    classification: Optional[Classification] = None,
) -> QueryPlan:
    """Compile *query* into a :class:`QueryPlan`.

    Classification (the expensive, database-independent part of ``solve``)
    happens here, at most once per compiled plan — through the process-wide
    ``classify_cached`` memo, so even separate :class:`PlanCache` instances
    share classification work.  An explicit *classification* can be injected
    to bypass it (used by the one-shot ``solve`` wrapper's
    ``classification=`` parameter).
    """
    boolean = query if query.is_boolean else _representative_grounding(query)
    if classification is None:
        classification = classify_cached(boolean)
    method = _BAND_METHODS.get(classification.band, "brute-force")
    per_grounding = not query.is_boolean and query.has_self_join
    return QueryPlan(query, boolean, classification, method, per_grounding=per_grounding)
