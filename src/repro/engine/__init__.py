"""The compiled-plan certainty engine.

This subsystem separates the two halves of answering ``CERTAINTY(q)`` under
heavy query traffic, following the standard query-compilation architecture
of database engines:

* **compile once per query** — :func:`compile_plan` classifies the query on
  the tractability frontier, fixes the solver dispatch and the greedy atom
  order, and packages the result as a :class:`QueryPlan`; plans are cached
  by query signature in a bounded LRU :class:`PlanCache`;
* **execute many times per database** — a :class:`CertaintySession` wraps
  one ``UncertainDatabase``, maintains incrementally updated fact indexes
  (wired into the database's observer hooks, so ``add``/``discard`` update
  the index instead of rebuilding it), and runs plans through a shared
  :class:`~repro.certainty.SolverContext`.

The module-level one-shot APIs (``repro.solve``, ``repro.is_certain``,
``repro.certain_answers``) keep their signatures and delegate here.

For many-candidate open queries, :class:`ParallelCertaintySession` (and the
one-shot :func:`certain_answers_parallel`) shard the candidate-grounding
loop across a process pool — each worker receives one immutable database
snapshot and decides its chunk with the ordinary sequential machinery, so
the answer set is identical to the sequential session's.

Under write-bearing traffic, :class:`ShardedCertaintySession` (and the
one-shot :func:`certain_answers_sharded`) replaces snapshot-per-rebuild
with *long-lived* workers: the database partitions by a stable hash of
block key (:func:`shard_of_key`), mutations ship as O(delta) integer rows
plus newly-interned constant values, and candidates scatter to the shards
owning their supporting blocks — cross-shard decisions fall back to the
parent, keeping the answer set identical.

Execution runs on the interned columnar backend by default
(:mod:`repro.store`): integer-row kernels, compiled candidate enumeration,
batched set-at-a-time deciding, block-id read sets, and compact columnar
worker snapshots.  ``backend="object"`` keeps the fact-dictionary
reference path.
"""

from .cache import CacheStats, PlanCache, default_plan_cache
from .parallel import ParallelCertaintySession, certain_answers_parallel
from .plan import QueryPlan, compile_plan
from .session import CertaintySession
from .shards import (
    DEGRADATION_LADDER,
    DeadlineExceeded,
    ShardedCertaintySession,
    certain_answers_sharded,
    shard_of_key,
)

__all__ = [
    "CacheStats",
    "CertaintySession",
    "DEGRADATION_LADDER",
    "DeadlineExceeded",
    "ParallelCertaintySession",
    "PlanCache",
    "QueryPlan",
    "ShardedCertaintySession",
    "certain_answers_parallel",
    "certain_answers_sharded",
    "compile_plan",
    "default_plan_cache",
    "shard_of_key",
]
