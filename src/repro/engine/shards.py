"""Delta-shipped shard runtime: long-lived block-hash-sharded workers.

:class:`~repro.engine.parallel.ParallelCertaintySession` treats every
mutation as fatal: a stale snapshot tears the whole pool down and re-ships
the full columnar snapshot, so write-bearing workloads pay O(database)
re-serialization per dispatch.  This module replaces the
snapshot-per-rebuild model with a *partitioned, continuously maintained*
one:

* the database is partitioned by a **stable hash of the block key** into N
  shards (:func:`shard_of_key`) — relation-name-agnostic, so same-key
  blocks of *different* relations co-locate on one shard and same-key
  joins stay shard-local;
* each shard is one **long-lived worker process** holding a persistent
  shard database, a shard-local :class:`~repro.engine.session.CertaintySession`
  (own plan cache, own columnar store), and a mirror intern table for the
  wire format;
* parent-side observer hooks route every mutation to the owning shard's
  pending delta; deltas are **flushed on the next dispatch** as integer
  rows plus an intern-table suffix of only the newly-interned constant
  values (:meth:`~repro.store.intern.InternTable.values_since`) — steady
  state ships O(delta) bytes, never O(database);
* candidates scatter to the shards that own their supporting blocks.
  Workers decide **optimistically** and validate ownership afterwards: the
  per-candidate read set captured during the decision is checked against
  the shard's key space, and any candidate whose decision read a foreign
  block, a wildcard key mask, a whole relation, or the active domain is
  handed back undecided and re-decided parent-side (counted as a
  ``cross_shard_fallback``).

Soundness of the optimistic decide
----------------------------------
Plan execution is deterministic and every probe key is derived from facts
found by earlier reads (the :class:`~repro.fo.compile.ReadSet` argument).
If every block the shard-local execution read is *owned* by the shard,
then each of those blocks has identical content in the shard database and
the full database — so the full-database execution replays identically,
read for read, and reaches the same verdict.  If the full-database
execution would ever read a foreign block, the shard execution (identical
up to that point) issues the same read, records it (probed-but-absent
blocks are recorded too), and validation rejects the candidate.  The
non-FO solvers record *static* per-atom support — fully pinned key masks
are validated like blocks (mask ⇒ whole block, Lemma 1 granularity);
wildcard masks, relation scans and domain reads always fall back.  A
single-shard session is a full replica, so validation is vacuous there.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
import traceback
import zlib
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..certainty.solver import CertaintyOutcome
from ..faults import FaultPlan, FaultSpec, fire as _fire_fault, install as _install_faults
from ..faults import worker_fault_specs as _worker_fault_specs
from ..fo.compile import ReadSet
from ..model.atoms import Fact, RelationSchema
from ..model.database import DatabaseObserver, UncertainDatabase
from ..model.symbols import Constant, is_constant
from ..query.conjunctive import ConjunctiveQuery
from ..store import InternTable
from .cache import PlanCache
from .parallel import _pool_mp_context
from .session import CertaintySession

#: Candidate tuples below this count decide inline: one pipe round-trip
#: costs more than a handful of sequential decisions.
MIN_SHARD_CANDIDATES = 4

#: Routing-table sentinel: the candidate's last decision was not
#: shard-local, so route it straight to the parent next time.
_PARENT = -1

#: Timeout sentinel for ``_recv_from``: "use the session's configured
#: dispatch deadline" (``None`` already means "wait forever").
_DEFAULT_TIMEOUT: Any = object()

#: A relation signature on the wire: enough to rebuild the schema.
_RelationSig = Tuple[str, int, int]  # (name, arity, key_size)

#: One wire delta group: a relation signature plus its integer rows.
_RowGroup = Tuple[str, int, int, Tuple[Tuple[int, ...], ...]]

#: Graceful-degradation ladder: a session whose workers keep failing steps
#: down one level at a time; a probe every few degraded dispatches tries
#: to climb back to sharded serving.
DEGRADATION_LADDER = ("sharded", "parallel", "serial")


class DeadlineExceeded(TimeoutError):
    """An end-to-end request deadline expired before the work completed.

    Raised by the shard runtime when a dispatch's absolute deadline (a
    ``time.monotonic`` instant propagated from a service ticket) passes,
    and by the admission controller when a queued request's deadline
    expires before it even starts.  Deliberately **not** served by a
    fallback: blowing a deadline by silently re-deciding inline would be
    slower than the caller's budget, so the budget violation surfaces.
    """


def shard_of_key(key_constants: Sequence[Constant], n_shards: int) -> int:
    """The shard owning a block key — stable across processes and hash seeds.

    Hashes the *values* of the key constants (CRC32 over their reprs), not
    Python object hashes, which are salted per process.  The relation name
    is deliberately **not** hashed: blocks of different relations sharing a
    key land on the same shard (co-partitioning), so a join on the key —
    the common shape of certain rewritings — reads only shard-local blocks.
    """
    if n_shards <= 1:
        return 0
    payload = "\x1f".join(repr(c.value) for c in key_constants)
    return zlib.crc32(payload.encode("utf-8")) % n_shards


def _read_set_is_local(read_set: ReadSet, shard_id: int, n_shards: int) -> bool:
    """Was this (portable) read set satisfied entirely by shard-owned blocks?

    The validation half of the optimistic decide: see the module docstring
    for the soundness argument.  ``read_set`` must already be portable —
    object-space block keys, no store-local ids.
    """
    if n_shards <= 1:
        return True  # a single shard is a full replica
    if read_set.opaque or read_set.domain_read or read_set.relations:
        return False
    for _name, key in read_set.blocks:
        if shard_of_key(key, n_shards) != shard_id:
            return False
    for _name, mask in read_set.key_masks:
        if any(m is None for m in mask):
            return False  # wildcard: may match blocks on any shard
        if shard_of_key(mask, n_shards) != shard_id:
            return False
    return True


class ShardStats:
    """Counters describing one :class:`ShardedCertaintySession`'s traffic.

    ``dispatches``
        decide rounds that consulted the worker pool;
    ``shard_decides`` / ``parent_decides``
        candidates whose verdict came from a worker (ownership-validated) /
        from the parent's inline session;
    ``cross_shard_fallbacks``
        candidates a worker decided but whose read set crossed shard
        boundaries, forcing a parent-side re-decision;
    ``delta_flushes`` / ``delta_bytes_shipped`` / ``delta_facts_shipped``
        incremental delta traffic to the pool (bytes are exact wire
        payload sizes); ``max_flush_bytes`` is the largest single flush —
        the number the bench compares against a full snapshot;
    ``bootstraps`` / ``bootstrap_bytes_shipped``
        full partitioned loads (pool start and post-crash restarts);
    ``worker_restarts``
        individual supervised worker restarts (spawn + shard re-bootstrap)
        after a detected failure;
    ``worker_failures``
        detected worker failures: dead pipes, error replies, and missed
        dispatch deadlines (each also schedules a backoff-gated restart);
    ``deadline_timeouts``
        dispatches where a worker missed its reply deadline and was
        declared dead (a slow or stalled worker, contained per shard);
    ``stale_replies_dropped``
        replies discarded because their sequence id belonged to a request
        aborted earlier (a caller deadline expired mid-gather) — fencing
        that keeps an old verdict from pairing with a new candidate bucket;
    ``degradations``
        steps taken down the sharded→parallel→serial ladder after a shard
        exhausted its restart budget;
    ``degraded_decides``
        candidates served while degraded (threaded-parallel or serial);
    ``heartbeats``
        explicit :meth:`ShardedCertaintySession.heartbeat` sweeps.
    """

    __slots__ = (
        "dispatches",
        "shard_decides",
        "parent_decides",
        "cross_shard_fallbacks",
        "delta_flushes",
        "delta_bytes_shipped",
        "delta_facts_shipped",
        "max_flush_bytes",
        "bootstraps",
        "bootstrap_bytes_shipped",
        "worker_restarts",
        "worker_failures",
        "deadline_timeouts",
        "stale_replies_dropped",
        "degradations",
        "degraded_decides",
        "heartbeats",
    )

    def __init__(self) -> None:
        self.dispatches = 0
        self.shard_decides = 0
        self.parent_decides = 0
        self.cross_shard_fallbacks = 0
        self.delta_flushes = 0
        self.delta_bytes_shipped = 0
        self.delta_facts_shipped = 0
        self.max_flush_bytes = 0
        self.bootstraps = 0
        self.bootstrap_bytes_shipped = 0
        self.worker_restarts = 0
        self.worker_failures = 0
        self.deadline_timeouts = 0
        self.stale_replies_dropped = 0
        self.degradations = 0
        self.degraded_decides = 0
        self.heartbeats = 0

    def __repr__(self) -> str:
        return (
            f"ShardStats(dispatches={self.dispatches}, "
            f"shard={self.shard_decides}, parent={self.parent_decides}, "
            f"fallbacks={self.cross_shard_fallbacks}, "
            f"delta_bytes={self.delta_bytes_shipped}, "
            f"restarts={self.worker_restarts})"
        )


class _PendingDelta:
    """Net per-shard accumulation of routed mutations between flushes.

    Rows keep :class:`~repro.model.database.ChangeSet` net semantics at the
    wire level: a fact added and discarded between two flushes cancels out
    and ships nothing, so pending state is bounded by the net touched rows,
    never by the mutation churn.
    """

    __slots__ = ("added", "discarded")

    def __init__(self) -> None:
        # signature -> insertion-ordered row set (dict keys).
        self.added: Dict[_RelationSig, Dict[Tuple[int, ...], None]] = {}
        self.discarded: Dict[_RelationSig, Dict[Tuple[int, ...], None]] = {}

    def record(self, sig: _RelationSig, row: Tuple[int, ...], added: bool) -> None:
        cancel = self.discarded if added else self.added
        rows = cancel.get(sig)
        if rows is not None and row in rows:
            del rows[row]
            if not rows:
                del cancel[sig]
            return
        target = self.added if added else self.discarded
        target.setdefault(sig, {})[row] = None

    def __bool__(self) -> bool:
        return bool(self.added) or bool(self.discarded)

    def take(self) -> Tuple[Tuple[_RowGroup, ...], Tuple[_RowGroup, ...]]:
        """Drain into wire row groups (clears the pending state)."""
        added = tuple(
            (name, arity, key_size, tuple(rows))
            for (name, arity, key_size), rows in self.added.items()
        )
        discarded = tuple(
            (name, arity, key_size, tuple(rows))
            for (name, arity, key_size), rows in self.discarded.items()
        )
        self.added = {}
        self.discarded = {}
        return added, discarded


class _DeltaRouter(DatabaseObserver):
    """Observer hook routing each mutated fact to its owning shard's delta."""

    __slots__ = ("_owner",)

    def __init__(self, owner: "ShardedCertaintySession") -> None:
        self._owner = owner

    def fact_added(self, fact: Fact) -> None:
        self._owner._record_mutation(fact, added=True)

    def fact_discarded(self, fact: Fact) -> None:
        self._owner._record_mutation(fact, added=False)

    # batch_applied: the default replay delivers the *net* ChangeSet through
    # the per-fact hooks, which is exactly the delta the shards need.


class _WorkerHandle:
    """Parent-side handle on one long-lived shard worker process."""

    __slots__ = ("process", "conn", "watermark", "next_seq")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        #: Length of the wire intern table prefix already shipped.
        self.watermark = 0
        #: Sequence id of the next command sent on this pipe.  The worker
        #: echoes it in the reply, so the parent can discard replies that
        #: belong to a request it already gave up on (see ``_recv_from``).
        self.next_seq = 0


class _WorkerFailure(RuntimeError):
    """A worker replied with an error or died mid-conversation."""


# -- the worker process -----------------------------------------------------------


def _worker_relation(
    cache: Dict[_RelationSig, RelationSchema], sig: _RelationSig
) -> RelationSchema:
    relation = cache.get(sig)
    if relation is None:
        relation = RelationSchema(*sig)
        cache[sig] = relation
    return relation


def _worker_apply_delta(
    db: UncertainDatabase,
    mirror: InternTable,
    relations: Dict[_RelationSig, RelationSchema],
    base: int,
    values: Tuple[Any, ...],
    added: Tuple[_RowGroup, ...],
    discarded: Tuple[_RowGroup, ...],
) -> int:
    """Apply one shipped delta to the shard database; return its fact count."""
    mirror.extend_values(base, values)
    # The watermark-consistency crash window: the intern suffix is now in
    # the mirror but no row has been applied.  A worker dying here must
    # not leave the parent believing the suffix was absorbed — the
    # supervisor restarts the shard from watermark 0 with a full
    # re-bootstrap, so a half-applied delta can never skew the id space.
    fault = _fire_fault("shard.worker.delta")
    if fault is not None and fault.kind == "kill":
        os._exit(17)
    with db.batch():
        for name, arity, key_size, rows in discarded:
            relation = _worker_relation(relations, (name, arity, key_size))
            for row in rows:
                db.discard(Fact(relation, mirror.decode(row)))
        for name, arity, key_size, rows in added:
            relation = _worker_relation(relations, (name, arity, key_size))
            for row in rows:
                db.add(Fact(relation, mirror.decode(row)))
    return len(db)


def _worker_decide(
    session: CertaintySession,
    shard_id: int,
    n_shards: int,
    query: ConjunctiveQuery,
    candidates: Tuple[Tuple[Constant, ...], ...],
    allow_exponential: bool,
    want_support: bool,
) -> List[Tuple[bool, bool, Optional[ReadSet]]]:
    """Optimistically decide *candidates* on the shard; validate ownership.

    Returns one ``(certain, valid, read_set)`` triple per candidate, in
    input order.  ``valid`` is the ownership verdict of the captured read
    set; invalid candidates' verdicts are meaningless and the parent
    re-decides them.  Read sets are portable (decoded against the shard
    store) and only shipped when *want_support* is set and the candidate
    validated.
    """
    support: Dict[Tuple[Constant, ...], ReadSet] = {}
    certain = set(
        session.decide_candidates(
            query, list(candidates), allow_exponential=allow_exponential, support=support
        )
    )
    store = session.store
    results: List[Tuple[bool, bool, Optional[ReadSet]]] = []
    for candidate in candidates:
        read_set = support[candidate]
        if store is not None:
            read_set = read_set.to_portable(store)
        valid = _read_set_is_local(read_set, shard_id, n_shards)
        results.append(
            (candidate in certain, valid, read_set if want_support and valid else None)
        )
    return results


def _shard_worker_main(
    conn, shard_id: int, n_shards: int, fault_specs: Tuple[FaultSpec, ...] = ()
) -> None:
    """Command loop of one shard worker: apply deltas, decide candidates.

    The worker owns a persistent shard database and session for its whole
    lifetime — mutations arrive as integer-row deltas against the mirror
    intern table, never as fresh snapshots.  Every command carries a
    parent-assigned sequence id and every reply echoes it
    (``(seq, "ok"|"decided"|"error", ...)``), so the parent pairs requests
    with replies even after it abandoned an earlier request mid-gather;
    unexpected exceptions ship the traceback back instead of killing the
    process, and the parent treats them as a worker failure.

    *fault_specs* are the parent's active worker-process fault specs
    (shipped at spawn time because the parent's injector does not cross
    the process boundary); the worker installs a local injector over the
    specs addressed to its shard.
    """
    if fault_specs:
        # Keep only the specs addressed to this shard, then strip the pin:
        # in-process hook points (like the delta crash window) fire without
        # a shard argument, and everything left is already ours.
        _install_faults(
            FaultPlan(
                [
                    s._replace(shard=None)
                    for s in fault_specs
                    if s.shard is None or s.shard == shard_id
                ]
            )
        )
    mirror = InternTable()
    relations: Dict[_RelationSig, RelationSchema] = {}
    db = UncertainDatabase()
    # A worker-local plan cache (plans cannot cross process boundaries) and
    # an explicitly private intern table: the shard's id space belongs to
    # this worker alone, never to whatever else runs in the process.
    session = CertaintySession(
        db, plan_cache=PlanCache(maxsize=64), intern_table=InternTable()
    )
    while True:
        try:
            payload = conn.recv_bytes()
        except (EOFError, OSError):  # parent went away
            break
        seq = -1
        try:
            command = pickle.loads(payload)
            seq, kind = command[0], command[1]
            fault = _fire_fault("shard.worker.command", shard=shard_id)
            if fault is not None:
                if fault.kind == "kill":
                    os._exit(17)
                if fault.kind == "stall":
                    time.sleep(fault.delay or 0.2)
            if kind == "stop":
                conn.send((seq, "bye"))
                break
            if kind == "ping":
                conn.send((seq, "ok", "pong"))
            elif kind == "delta":
                _, _, base, values, added, discarded = command
                facts = _worker_apply_delta(
                    db, mirror, relations, base, values, added, discarded
                )
                conn.send((seq, "ok", facts))
            elif kind == "decide":
                _, _, query, candidates, allow_exponential, want_support = command
                conn.send(
                    (
                        seq,
                        "decided",
                        _worker_decide(
                            session,
                            shard_id,
                            n_shards,
                            query,
                            candidates,
                            allow_exponential,
                            want_support,
                        ),
                    )
                )
            elif kind == "stats":
                conn.send((seq, "ok", {"facts": len(db), "constants": len(mirror)}))
            else:
                conn.send((seq, "error", f"unknown shard command {kind!r}"))
        except Exception:
            try:
                conn.send((seq, "error", traceback.format_exc()))
            except (BrokenPipeError, OSError):
                break
    conn.close()


# -- the parent session -----------------------------------------------------------


class ShardedCertaintySession:
    """Certain answers over one mutating database, sharded by block-key hash.

    Parameters
    ----------
    db:
        The uncertain database to serve queries against.
    n_shards:
        Long-lived worker count (default ``min(os.cpu_count(), 4)``); the
        database partitions into exactly this many shard databases.
    min_shard_candidates:
        Below this candidate count decisions run inline on the parent.
    allow_exponential:
        Session-wide default for the brute-force escape hatch.
    plan_cache:
        Plan cache of the parent's inline session (workers always compile
        through worker-local caches).
    intern_table:
        Scoped intern table of the parent's inline session.  Defaults to
        the process-wide table; shard workers always intern against
        explicitly private worker-local tables, and the wire format uses
        its own private table regardless.
    dispatch_deadline:
        Seconds a worker gets to answer one command before the supervisor
        declares it dead (``None`` disables — waits forever).  Contains a
        stalled or wedged worker to one shard: its bucket re-decides on
        the parent, the process is killed, and a backoff-gated restart is
        scheduled.
    restart_backoff / max_backoff:
        Base and cap of the exponential restart backoff: after ``k``
        consecutive failures of one shard, the next restart attempt waits
        ``min(restart_backoff * 2**(k-1), max_backoff)`` seconds.  During
        backoff the shard's candidates serve from the parent inline.
    degrade_after_failures:
        Consecutive failures of any single shard after which the session
        **degrades** one step down the sharded→parallel→serial ladder
        (counted in ``stats.degradations``).  Failure counts reset on any
        successful reply from the shard, so only persistent inability to
        serve escalates.
    degraded_probe_interval:
        Degraded dispatches between probes that try to climb back to
        sharded serving.
    clock:
        Injectable monotonic time source (default ``time.monotonic``) used
        for **every** deadline and backoff comparison in this session, so
        deadlines computed by an admission controller or service with the
        same injected clock live on the same timeline.

    Guarantees
    ----------
    ``certain_answers`` / ``decide_candidates`` return exactly what the
    sequential :class:`CertaintySession` returns — shard-local verdicts are
    accepted only when the decision's captured read set was satisfied
    entirely by shard-owned blocks, and everything else re-decides on the
    parent (see the module docstring for the soundness argument).
    Mutations between calls ship as O(delta) integer rows plus newly
    interned constant values; the worker pool is **never** rebuilt for a
    mutation.

    Example
    -------
    >>> with ShardedCertaintySession(db, n_shards=4) as shards:  # doctest: +SKIP
    ...     shards.certain_answers(open_query)
    ...     db.add(fact)                  # routed; ships as a delta
    ...     shards.certain_answers(open_query)
    """

    def __init__(
        self,
        db: UncertainDatabase,
        n_shards: Optional[int] = None,
        min_shard_candidates: int = MIN_SHARD_CANDIDATES,
        allow_exponential: bool = False,
        plan_cache: Optional[PlanCache] = None,
        intern_table: Optional[InternTable] = None,
        dispatch_deadline: Optional[float] = 30.0,
        restart_backoff: float = 0.05,
        max_backoff: float = 2.0,
        degrade_after_failures: int = 3,
        degraded_probe_interval: int = 8,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if n_shards is not None and n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        self._db = db
        self._n_shards = n_shards if n_shards is not None else min(os.cpu_count() or 1, 4)
        self._min_shard = min_shard_candidates
        self._allow_exponential = allow_exponential
        # Inline session first: its index observer registers before the
        # router, so routing always sees an up-to-date parent index.
        self._inner = CertaintySession(
            db,
            plan_cache=plan_cache,
            allow_exponential=allow_exponential,
            intern_table=intern_table,
        )
        #: Private wire intern table: ids on the wire are dense over the
        #: constants this session actually ships, independent of the
        #: process-global table, so delta byte counts reflect the workload.
        self._wire_table = InternTable()
        self._router = _DeltaRouter(self)
        db.register_observer(self._router)
        self._workers: Optional[List[Optional[_WorkerHandle]]] = None
        self._pending: List[_PendingDelta] = [
            _PendingDelta() for _ in range(self._n_shards)
        ]
        # -- supervision state ----------------------------------------------
        self._clock = clock or time.monotonic
        self._dispatch_deadline = dispatch_deadline
        self._restart_backoff = restart_backoff
        self._max_backoff = max_backoff
        self._degrade_after = max(1, degrade_after_failures)
        self._probe_interval = max(1, degraded_probe_interval)
        self._failures = [0] * self._n_shards
        self._backoff_until = [0.0] * self._n_shards
        self._degraded: Optional[str] = None  # None | "parallel" | "serial"
        self._degraded_since_probe = 0
        self._parallel_fallback = None
        #: query -> candidate -> owning shard (or _PARENT), learned from
        #: validated decisions; a cheap guess seeds unknown candidates.
        self._routing: Dict[ConjunctiveQuery, Dict[Tuple[Constant, ...], int]] = {}
        self.stats = ShardStats()
        self._closed = False

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Stop the workers and detach from the database (idempotent)."""
        if self._closed:
            return
        self._teardown_workers()
        self._close_parallel_fallback()
        self._db.unregister_observer(self._router)
        self._inner.close()
        self._closed = True

    def __enter__(self) -> "ShardedCertaintySession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _teardown_workers(self) -> None:
        if self._workers is None:
            return
        live = [w for w in self._workers if w is not None]
        for worker in live:
            try:
                worker.conn.send_bytes(pickle.dumps((worker.next_seq, "stop")))
            except (BrokenPipeError, OSError):
                pass
        for worker in live:
            worker.process.join(timeout=5)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=5)
            worker.conn.close()
        self._workers = None
        self._pending = [_PendingDelta() for _ in range(self._n_shards)]

    def _close_parallel_fallback(self) -> None:
        if self._parallel_fallback is not None:
            try:
                self._parallel_fallback.close()
            except Exception:  # pragma: no cover - best-effort teardown
                pass
            self._parallel_fallback = None

    # -- views -------------------------------------------------------------------

    @property
    def db(self) -> UncertainDatabase:
        """The wrapped database."""
        return self._db

    @property
    def n_shards(self) -> int:
        """The configured shard / worker count."""
        return self._n_shards

    @property
    def closed(self) -> bool:
        """``True`` once :meth:`close` has run."""
        return self._closed

    @property
    def pool_started(self) -> bool:
        """``True`` while the long-lived workers are alive."""
        return self._workers is not None

    @property
    def store(self):
        """The parent inline session's columnar store (portability helper)."""
        return self._inner.store

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"ShardedCertaintySession({self._db!r}, shards={self._n_shards}, {state})"
        )

    def owner_of(self, key_constants: Sequence[Constant]) -> int:
        """The shard owning blocks keyed by *key_constants*."""
        return shard_of_key(key_constants, self._n_shards)

    def shard_fact_counts(self) -> List[int]:
        """Current fact count per shard (flushes pending deltas first)."""
        self._check_open()
        self._ensure_workers(force=True)
        self._flush_deltas()
        assert self._workers is not None
        counts: List[int] = []
        for shard, worker in enumerate(self._workers):
            sent = None if worker is None else self._send_to(shard, ("stats",))
            if sent is None:
                raise _WorkerFailure(f"shard {shard} is down")
            reply = self._recv_from(shard, sent[0], None)
            if reply is None or reply[0] != "ok":
                raise _WorkerFailure(f"shard {shard} failed to report stats")
            counts.append(reply[1]["facts"])
        return counts

    def heartbeat(self, timeout: Optional[float] = None) -> List[bool]:
        """Ping every worker; returns per-shard liveness (dead shards noted).

        A shard that misses the heartbeat window is declared failed —
        terminated, backoff-scheduled for restart — exactly as if a
        dispatch had caught it, so periodic heartbeats surface silent
        hangs before a query does.
        """
        self._check_open()
        if self._workers is None:
            return [False] * self._n_shards
        wait = self._dispatch_deadline if timeout is None else timeout
        self.stats.heartbeats += 1
        alive: List[bool] = []
        for shard, worker in enumerate(self._workers):
            if worker is None:
                alive.append(False)
                continue
            sent = self._send_to(shard, ("ping",))
            if sent is None:
                alive.append(False)
                continue
            reply = self._recv_from(shard, sent[0], None, dispatch_timeout=wait)
            alive.append(reply is not None and reply[0] == "ok")
        return alive

    @property
    def degraded_mode(self) -> Optional[str]:
        """``None`` while sharded; ``"parallel"``/``"serial"`` once degraded."""
        return self._degraded

    # -- sequential delegates ----------------------------------------------------

    def solve(
        self,
        query: ConjunctiveQuery,
        allow_exponential: Optional[bool] = None,
        deadline: Optional[float] = None,
    ) -> CertaintyOutcome:
        """Decide ``db ∈ CERTAINTY(q)`` (single instance — runs inline)."""
        self._check_open()
        if deadline is not None and self._clock() >= deadline:
            raise DeadlineExceeded("request deadline expired before solve")
        return self._inner.solve(query, allow_exponential=allow_exponential)

    def is_certain(
        self, query: ConjunctiveQuery, allow_exponential: Optional[bool] = None
    ) -> bool:
        """``True`` iff every repair of the database satisfies *query*."""
        return self.solve(query, allow_exponential=allow_exponential).certain

    # -- mutation routing (observer callback target) -----------------------------

    def _record_mutation(self, fact: Fact, added: bool) -> None:
        if self._workers is None:
            return  # bootstrap reads the live database directly
        shard = shard_of_key(fact.key_terms, self._n_shards)
        relation = fact.relation
        sig = (relation.name, relation.arity, relation.key_size)
        row = self._wire_table.intern_many(fact.terms)
        self._pending[shard].record(sig, row, added)

    # -- worker pool -------------------------------------------------------------

    def _spawn_worker(self, shard_id: int) -> _WorkerHandle:
        ctx = _pool_mp_context() or multiprocessing.get_context()
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, shard_id, self._n_shards, _worker_fault_specs()),
            daemon=True,
            name=f"repro-shard-{shard_id}",
        )
        process.start()
        child_conn.close()
        return _WorkerHandle(process, parent_conn)

    def _ensure_workers(self, force: bool = False) -> None:
        """Start (or supervise back to life) the long-lived worker pool.

        First call: full bootstrap — every shard spawns and receives its
        partition as a delta-from-empty.  Later calls: each dead shard is
        restarted individually once its backoff window has passed
        (*force* overrides the backoff), re-bootstrapping **only that
        shard's** facts from the live database.  A restarted worker
        starts at intern watermark 0 and receives the complete wire-table
        prefix, so a crash mid-delta (intern suffix shipped, rows lost)
        can never leave a skewed replica id space behind.
        """
        if self._workers is None:
            self._workers = [None] * self._n_shards
            self._pending = [_PendingDelta() for _ in range(self._n_shards)]
            self.stats.bootstraps += 1
            for shard in range(self._n_shards):
                self._maybe_restart(shard, force=True, initial=True)
        else:
            for shard in range(self._n_shards):
                if self._workers[shard] is None:
                    self._maybe_restart(shard, force=force)

    def _maybe_restart(
        self, shard: int, force: bool = False, initial: bool = False
    ) -> None:
        """One supervised restart attempt for a dead shard (backoff-gated)."""
        if self._workers is None or self._workers[shard] is not None:
            return
        if not force and self._clock() < self._backoff_until[shard]:
            return
        try:
            self._start_shard(shard)
        except DeadlineExceeded:
            raise
        except Exception:
            self._note_failure(shard)
            return
        if not initial:
            self.stats.worker_restarts += 1
        # A successful spawn + bootstrap flush is real service: the worker
        # received and acknowledged its partition, so its failure streak ends.
        self._failures[shard] = 0
        self._backoff_until[shard] = 0.0

    def _start_shard(self, shard: int) -> None:
        """Spawn one worker and bootstrap it with its shard's partition."""
        assert self._workers is not None
        handle = self._spawn_worker(shard)
        self._workers[shard] = handle
        self._pending[shard] = _PendingDelta()
        pending = self._pending[shard]
        n = self._n_shards
        for fact in self._db.facts:
            if shard_of_key(fact.key_terms, n) != shard:
                continue
            relation = fact.relation
            sig = (relation.name, relation.arity, relation.key_size)
            pending.record(sig, self._wire_table.intern_many(fact.terms), True)
        self._flush_shard(shard, bootstrap=True)

    def _flush_shard(self, shard: int, bootstrap: bool = False) -> None:
        """Ship one shard's pending delta; raise on any worker problem."""
        assert self._workers is not None
        worker = self._workers[shard]
        assert worker is not None
        pending = self._pending[shard]
        values = self._wire_table.values_since(worker.watermark)
        if not pending and not values:
            return
        added, discarded = pending.take()
        seq = worker.next_seq
        worker.next_seq = seq + 1
        payload = pickle.dumps(
            (seq, "delta", worker.watermark, values, added, discarded),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        worker.conn.send_bytes(payload)
        worker.watermark += len(values)
        facts = sum(len(group[3]) for group in added + discarded)
        if bootstrap:
            self.stats.bootstrap_bytes_shipped += len(payload)
        else:
            self.stats.delta_flushes += 1
            self.stats.delta_bytes_shipped += len(payload)
            self.stats.delta_facts_shipped += facts
            self.stats.max_flush_bytes = max(self.stats.max_flush_bytes, len(payload))
        timeout = self._dispatch_deadline
        if timeout is not None and not worker.conn.poll(timeout):
            raise _WorkerFailure(f"shard {shard} delta flush timed out")
        reply = worker.conn.recv()
        if reply[0] != seq or reply[1] != "ok":
            raise _WorkerFailure(reply[2] if len(reply) > 2 else reply)

    def _flush_deltas(
        self, bootstrap: bool = False, deadline: Optional[float] = None
    ) -> None:
        """Ship pending deltas (and new intern values) to every live stale shard.

        Failure-contained: a shard whose pipe drops, whose worker dies
        mid-apply, or whose reply misses the dispatch deadline is marked
        dead (supervised restart later re-bootstraps it from the live
        database) and the flush continues for every other shard.
        """
        assert self._workers is not None
        flushed: List[Tuple[int, int]] = []  # (shard, command seq)
        for shard, worker in enumerate(self._workers):
            if worker is None:
                continue
            pending = self._pending[shard]
            values = self._wire_table.values_since(worker.watermark)
            if not pending and not values:
                continue
            added, discarded = pending.take()
            sent = self._send_to(
                shard, ("delta", worker.watermark, values, added, discarded)
            )
            if sent is None:
                continue
            seq, nbytes = sent
            worker.watermark += len(values)
            flushed.append((shard, seq))
            facts = sum(len(group[3]) for group in added + discarded)
            if bootstrap:
                self.stats.bootstrap_bytes_shipped += nbytes
            else:
                self.stats.delta_flushes += 1
                self.stats.delta_bytes_shipped += nbytes
                self.stats.delta_facts_shipped += facts
                self.stats.max_flush_bytes = max(self.stats.max_flush_bytes, nbytes)
        for shard, seq in flushed:
            reply = self._recv_from(shard, seq, deadline)
            if reply is None:
                continue  # failure noted; the restart re-bootstraps the shard
            if reply[0] != "ok":
                self._note_failure(shard)
            else:
                self._failures[shard] = 0

    # -- supervision -------------------------------------------------------------

    def _send_to(
        self, shard: int, command: Tuple[Any, ...]
    ) -> Optional[Tuple[int, int]]:
        """Envelope and send one command to a live shard.

        Allocates the worker's next sequence id, prepends it to *command*,
        and returns ``(seq, payload_bytes)`` — or ``None`` (after noting
        the failure) on a dead pipe.  The worker echoes the sequence id in
        its reply, which is what lets :meth:`_recv_from` fence replies
        belonging to requests this session already abandoned.
        """
        assert self._workers is not None
        worker = self._workers[shard]
        if worker is None:
            return None
        seq = worker.next_seq
        worker.next_seq = seq + 1
        payload = pickle.dumps((seq,) + command, protocol=pickle.HIGHEST_PROTOCOL)
        fault = _fire_fault("shard.pipe", shard=shard)
        if fault is not None and fault.kind == "drop":
            try:
                worker.conn.close()
            except OSError:
                pass
        try:
            worker.conn.send_bytes(payload)
            return seq, len(payload)
        except (BrokenPipeError, OSError):
            self._note_failure(shard)
            return None

    def _recv_from(
        self,
        shard: int,
        seq: int,
        deadline: Optional[float],
        dispatch_timeout: Optional[float] = _DEFAULT_TIMEOUT,
    ) -> Optional[tuple]:
        """The reply to command *seq* from a shard, bounded by two deadlines.

        Returns the reply with its sequence id stripped, ``None`` (after
        noting the failure) when the worker is dead, errored, or missed
        its **dispatch** deadline, and raises :class:`DeadlineExceeded`
        when the *caller's* end-to-end deadline expires first.  The two
        timeouts are deliberately distinct: only a blown dispatch window
        kills and penalises the worker — a healthy worker polled with a
        tiny remaining request budget stays alive, its in-flight reply
        fenced by the sequence id (stale replies, including those left
        behind by a previous gather the caller abandoned, are discarded
        here, never paired with a later request).
        """
        assert self._workers is not None
        worker = self._workers[shard]
        if worker is None:
            return None
        if dispatch_timeout is _DEFAULT_TIMEOUT:
            dispatch_timeout = self._dispatch_deadline
        now = self._clock()
        dispatch_by = None if dispatch_timeout is None else now + dispatch_timeout
        if deadline is not None and now >= deadline:
            raise DeadlineExceeded("request deadline expired at shard dispatch")
        while True:
            now = self._clock()
            wait = None if dispatch_by is None else dispatch_by - now
            if deadline is not None:
                remaining = deadline - now
                wait = remaining if wait is None else min(wait, remaining)
            # DeadlineExceeded is a TimeoutError, hence an OSError: the
            # try blocks below must cover ONLY the pipe operations, or the
            # leave-the-worker-alive raises would be swallowed by the
            # dead-pipe handler and kill a healthy worker.
            try:
                ready = wait is None or worker.conn.poll(max(wait, 0.0))
            except (EOFError, OSError):
                self._note_failure(shard)
                return None
            if not ready:
                now = self._clock()
                if deadline is not None and now >= deadline and (
                    dispatch_by is None or now < dispatch_by
                ):
                    # The request budget ran out while the worker was
                    # still inside its dispatch window: the worker is
                    # not at fault, so leave it alive.
                    raise DeadlineExceeded(
                        "request deadline expired waiting on a shard reply"
                    )
                self.stats.deadline_timeouts += 1
                self._note_failure(shard)
                if deadline is not None and now >= deadline:
                    raise DeadlineExceeded(
                        "request deadline expired waiting on a shard reply"
                    )
                return None
            try:
                reply = worker.conn.recv()
            except (EOFError, OSError):
                self._note_failure(shard)
                return None
            if reply[0] != seq:
                self.stats.stale_replies_dropped += 1
                continue
            return tuple(reply[1:])

    def _note_failure(self, shard: int) -> None:
        """Declare one shard dead: kill it, schedule a backoff-gated restart.

        The shard's pending delta is dropped (the restart re-bootstraps
        from the live database, which already contains every mutation)
        and its failure streak grows — exceeding the restart budget steps
        the whole session down the degradation ladder.
        """
        self.stats.worker_failures += 1
        if self._workers is not None:
            worker = self._workers[shard]
            if worker is not None:
                try:
                    if worker.process.is_alive():
                        worker.process.terminate()
                    worker.process.join(timeout=5)
                except Exception:  # pragma: no cover - teardown best effort
                    pass
                try:
                    worker.conn.close()
                except OSError:
                    pass
                self._workers[shard] = None
        self._pending[shard] = _PendingDelta()
        self._failures[shard] += 1
        delay = min(
            self._restart_backoff * (2 ** (self._failures[shard] - 1)),
            self._max_backoff,
        )
        self._backoff_until[shard] = self._clock() + delay
        if self._failures[shard] >= self._degrade_after:
            self._degrade()

    def _degrade(self) -> None:
        """Step down the sharded→parallel→serial ladder (teardown deferred).

        One rung per failure episode: the failure ledger resets on entry,
        so N shards dying together cost one step, not N — each tier gets
        its own full budget before the next step down.
        """
        if self._degraded is None:
            self._degraded = "parallel"
        elif self._degraded == "parallel":
            self._degraded = "serial"
            self._close_parallel_fallback()
        else:
            return
        self.stats.degradations += 1
        self._degraded_since_probe = 0
        self._failures = [0] * self._n_shards
        self._backoff_until = [0.0] * self._n_shards

    def _restart_workers(self) -> None:
        """Tear the pool down after a failure; the next dispatch re-bootstraps."""
        self.stats.worker_restarts += 1
        if self._workers is not None:
            for worker in self._workers:
                if worker is not None and worker.process.is_alive():
                    worker.process.terminate()
            for worker in self._workers:
                if worker is not None:
                    worker.process.join(timeout=5)
                    worker.conn.close()
            self._workers = None
        self._pending = [_PendingDelta() for _ in range(self._n_shards)]

    # -- the sharded loop --------------------------------------------------------

    def certain_answers(
        self,
        query: ConjunctiveQuery,
        allow_exponential: Optional[bool] = None,
        deadline: Optional[float] = None,
    ) -> Set[Tuple[Constant, ...]]:
        """The certain answers of a non-Boolean query, sharded over workers.

        Identical to the sequential session's answer set: candidates are
        enumerated once on the live (parent) database, scattered to the
        shards that own their supporting blocks, and every non-shard-local
        decision re-runs on the parent.  *deadline* is an absolute instant
        on the session clock (``time.monotonic`` unless injected); blowing
        it raises :class:`DeadlineExceeded` instead of degrading silently.
        """
        self._check_open()
        if query.is_boolean:
            raise ValueError("certain_answers expects a query with free variables")
        if deadline is not None and self._clock() >= deadline:
            raise DeadlineExceeded("request deadline expired before dispatch")
        candidates = self._inner.candidate_answers(query)
        return set(
            self.decide_candidates(
                query,
                candidates,
                allow_exponential=allow_exponential,
                deadline=deadline,
            )
        )

    def decide_candidates(
        self,
        query: ConjunctiveQuery,
        candidates: Sequence[Tuple[Constant, ...]],
        allow_exponential: Optional[bool] = None,
        support: Optional[Dict[Tuple[Constant, ...], ReadSet]] = None,
        support_index=None,
        deadline: Optional[float] = None,
    ) -> List[Tuple[Constant, ...]]:
        """The certain candidates, in input order, scattered across shards.

        The sharded counterpart of
        :meth:`CertaintySession.decide_candidates` — same contract, same
        order.  When *support* is given it is filled with **portable**
        per-candidate read sets (shard-captured for shard-local decisions,
        parent-captured otherwise), so the incremental view subsystem can
        maintain its support index under sharded fan-out.  *support_index*
        (a :class:`~repro.incremental.support.SupportIndex`, duck-typed)
        provides routing hints: candidates route to the shard owning the
        blocks of their *previous* decision, which post-mutation is almost
        always still the owner — and ownership validation catches the rest.

        Failure containment: individual worker deaths are absorbed by the
        supervisor (dead shards' buckets re-decide on the parent inline),
        repeated failures step the session down the
        sharded→parallel→serial :data:`DEGRADATION_LADDER`, and only an
        exhausted *deadline* escapes as :class:`DeadlineExceeded`.
        """
        self._check_open()
        if deadline is not None and self._clock() >= deadline:
            raise DeadlineExceeded("request deadline expired before dispatch")
        allow = (
            self._allow_exponential if allow_exponential is None else allow_exponential
        )
        if len(candidates) < self._min_shard:
            certain = self._inner.decide_candidates(
                query, candidates, allow_exponential=allow, support=support
            )
            self._portabilize(support)
            self.stats.parent_decides += len(candidates)
            return certain
        if self._degraded is not None:
            if self._workers is not None:
                self._teardown_workers()
            return self._decide_degraded(query, candidates, allow, support, deadline)
        self._ensure_workers()
        try:
            self._flush_deltas(deadline=deadline)
            return self._scatter(
                query, candidates, allow, support, support_index, deadline
            )
        except DeadlineExceeded:
            raise
        except (_WorkerFailure, BrokenPipeError, EOFError, OSError):
            # Something escaped per-shard containment: tear the pool down
            # and serve this call from the always-correct parent session.
            self._restart_workers()
            certain = self._inner.decide_candidates(
                query, candidates, allow_exponential=allow, support=support
            )
            self._portabilize(support)
            self.stats.parent_decides += len(candidates)
            return certain

    def _decide_degraded(
        self,
        query: ConjunctiveQuery,
        candidates: Sequence[Tuple[Constant, ...]],
        allow: bool,
        support: Optional[Dict[Tuple[Constant, ...], ReadSet]],
        deadline: Optional[float],
    ) -> List[Tuple[Constant, ...]]:
        """Serve one dispatch below the sharded tier, probing back up.

        Every ``degraded_probe_interval`` dispatches the session clears
        its failure ledger and retries the sharded path once; a clean run
        promotes back, another failure drops straight back down.
        """
        if deadline is not None and self._clock() >= deadline:
            raise DeadlineExceeded("request deadline expired in degraded mode")
        self._degraded_since_probe += 1
        if self._degraded_since_probe > self._probe_interval:
            mode = self._degraded
            self._degraded = None
            self._degraded_since_probe = 0
            self._failures = [0] * self._n_shards
            self._backoff_until = [0.0] * self._n_shards
            self._close_parallel_fallback()
            try:
                result = self.decide_candidates(
                    query,
                    candidates,
                    allow_exponential=allow,
                    support=support,
                    deadline=deadline,
                )
            except DeadlineExceeded:
                self._degraded = mode
                raise
            except (_WorkerFailure, BrokenPipeError, EOFError, OSError):
                self._degraded = mode
            else:
                if self._degraded is None and (
                    self._workers is None
                    or all(w is None for w in self._workers)
                ):
                    # Every answer came from the parent fallback: the pool
                    # never actually recovered, so the probe failed.
                    self._degraded = mode
                return result
        self.stats.degraded_decides += len(candidates)
        if self._degraded == "parallel":
            try:
                session = self._parallel_session()
                certain = session.decide_candidates(
                    query, candidates, allow_exponential=allow, support=support
                )
                self._portabilize(support)
                return certain
            except DeadlineExceeded:
                raise
            except Exception:
                self._degrade()  # thread tier failed too: drop to serial
        certain = self._inner.decide_candidates(
            query, candidates, allow_exponential=allow, support=support
        )
        self._portabilize(support)
        self.stats.parent_decides += len(candidates)
        return certain

    def _parallel_session(self):
        """The lazily-built thread-mode fallback session (degraded tier 2)."""
        if self._parallel_fallback is None:
            from ..store.intern import InternTable
            from .parallel import ParallelCertaintySession

            self._parallel_fallback = ParallelCertaintySession(
                self._db,
                mode="thread",
                allow_exponential=self._allow_exponential,
                intern_table=InternTable(),
            )
        return self._parallel_fallback

    def _scatter(
        self,
        query: ConjunctiveQuery,
        candidates: Sequence[Tuple[Constant, ...]],
        allow: bool,
        support: Optional[Dict[Tuple[Constant, ...], ReadSet]],
        support_index,
        deadline: Optional[float] = None,
    ) -> List[Tuple[Constant, ...]]:
        assert self._workers is not None
        routing = self._routing_for(query)
        shard_key = self._shard_key_fn()
        buckets: Dict[int, List[Tuple[Constant, ...]]] = {}
        parent_side: List[Tuple[Constant, ...]] = []
        for candidate in candidates:
            shard = routing.get(candidate)
            if shard is None and support_index is not None:
                shard = support_index.route(candidate, shard_key)
            if shard is None:
                shard = self._guess_shard(query, candidate)
            if shard is not None and shard != _PARENT and self._workers[shard] is None:
                shard = None  # the owner is down: decide on the parent inline
            if shard is None or shard == _PARENT:
                parent_side.append(candidate)
            else:
                buckets.setdefault(shard, []).append(candidate)
        want_support = support is not None
        replies = self._scatter_decide(buckets, query, allow, want_support, deadline)
        verdicts: Dict[Tuple[Constant, ...], bool] = {}
        for shard, bucket in buckets.items():
            shard_replies = replies.get(shard)
            if shard_replies is None:
                # The worker died mid-decide: its whole bucket re-decides on
                # the parent without poisoning the routing table (the
                # restarted shard stays the natural owner).
                parent_side.extend(bucket)
                continue
            for candidate, (certain, valid, read_set) in zip(bucket, shard_replies):
                if valid:
                    verdicts[candidate] = certain
                    routing[candidate] = shard
                    self.stats.shard_decides += 1
                    if want_support and read_set is not None:
                        support[candidate] = read_set
                else:
                    parent_side.append(candidate)
                    routing[candidate] = _PARENT
                    self.stats.cross_shard_fallbacks += 1
        if parent_side:
            parent_support: Optional[Dict[Tuple[Constant, ...], ReadSet]] = (
                {} if want_support else None
            )
            parent_certain = set(
                self._inner.decide_candidates(
                    query, parent_side, allow_exponential=allow, support=parent_support
                )
            )
            if parent_support is not None:
                self._portabilize(parent_support)
                support.update(parent_support)
            for candidate in parent_side:
                verdicts[candidate] = candidate in parent_certain
            self.stats.parent_decides += len(parent_side)
        self.stats.dispatches += 1
        return [c for c in candidates if verdicts[c]]

    def _scatter_decide(
        self,
        buckets: Dict[int, List[Tuple[Constant, ...]]],
        query: ConjunctiveQuery,
        allow: bool,
        want_support: bool,
        deadline: Optional[float] = None,
    ) -> Dict[int, List[Tuple[bool, bool, Optional[ReadSet]]]]:
        """Send one decide command per non-empty shard; gather all replies.

        Sends complete before any receive, so the workers decide their
        buckets concurrently.  A shard that dies, errors, or misses the
        dispatch deadline is simply absent from the result — the caller
        re-decides its bucket on the parent.
        """
        assert self._workers is not None
        sent: List[Tuple[int, int]] = []  # (shard, command seq)
        for shard in sorted(buckets):
            dispatched = self._send_to(
                shard, ("decide", query, tuple(buckets[shard]), allow, want_support)
            )
            if dispatched is not None:
                sent.append((shard, dispatched[0]))
        replies: Dict[int, List[Tuple[bool, bool, Optional[ReadSet]]]] = {}
        for shard, seq in sent:
            reply = self._recv_from(shard, seq, deadline)
            if reply is None:
                continue
            if reply[0] != "decided":
                self._note_failure(shard)
                continue
            replies[shard] = reply[1]
            self._failures[shard] = 0
        return replies

    # -- routing -----------------------------------------------------------------

    def _shard_key_fn(self) -> Callable[[Tuple[Constant, ...]], int]:
        n = self._n_shards
        return lambda key: shard_of_key(key, n)

    def _routing_for(
        self, query: ConjunctiveQuery
    ) -> Dict[Tuple[Constant, ...], int]:
        if len(self._routing) > 32:
            self._routing.clear()  # bound stale-query entries
        table = self._routing.get(query)
        if table is None:
            table = {}
            self._routing[query] = table
        elif len(table) > 100_000:
            table.clear()
        return table

    def _guess_shard(
        self, query: ConjunctiveQuery, candidate: Tuple[Constant, ...]
    ) -> Optional[int]:
        """First-fix routing guess: the owner of the first fully-pinned atom key.

        Candidate constants bind the query's free variables; any atom whose
        key positions are thereby all pinned names a concrete block key,
        and its owner is the shard most likely to hold the candidate's
        whole support (co-partitioning makes same-key atoms land together).
        A wrong guess costs one fallback, never correctness.
        """
        binding = dict(zip(query.free_variables, candidate))
        for atom in query.atoms:
            key: List[Constant] = []
            for term in atom.key_terms:
                if is_constant(term):
                    key.append(term)
                else:
                    value = binding.get(term)
                    if value is None:
                        key = []
                        break
                    key.append(value)
            else:
                if key or not atom.key_terms:
                    return shard_of_key(tuple(key), self._n_shards)
        return None

    def _portabilize(
        self, support: Optional[Dict[Tuple[Constant, ...], ReadSet]]
    ) -> None:
        """Decode parent-store block ids in *support* into portable keys."""
        store = self._inner.store
        if support is None or store is None:
            return
        for candidate, read_set in support.items():
            support[candidate] = read_set.to_portable(store)

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("this ShardedCertaintySession is closed")


def certain_answers_sharded(
    db: UncertainDatabase,
    query: ConjunctiveQuery,
    n_shards: Optional[int] = None,
    allow_exponential: bool = False,
) -> Set[Tuple[Constant, ...]]:
    """One-shot sharded certain answers (see :class:`ShardedCertaintySession`).

    For repeated queries against a mutating database prefer a long-lived
    session — the whole point of the shard runtime is that workers and
    their shard databases persist across calls and mutations.
    """
    with ShardedCertaintySession(
        db, n_shards=n_shards, allow_exponential=allow_exponential
    ) as session:
        return session.certain_answers(query)
