"""Query corpora: random self-join-free queries for census-style experiments.

The classifier of :mod:`repro.core` partitions queries into complexity
bands; the census experiment (E11) and the lemma property experiment (E9)
need a large, diverse supply of queries.  Random acyclic queries are
generated *by construction*: each new atom reuses variables from a single
previously generated atom (its join-tree parent), which guarantees the
existence of a join tree.
"""

from __future__ import annotations

import random
from typing import List

from ..model.atoms import Atom, RelationSchema
from ..model.symbols import Constant, Variable
from ..query.conjunctive import ConjunctiveQuery
from ..query.families import (
    all_named_queries,
    cycle_query_ac,
    cycle_query_c,
    figure4_query,
    path_query,
    star_query,
)


def random_acyclic_query(
    seed: int = 0,
    atoms: int = 4,
    max_arity: int = 4,
    constant_probability: float = 0.1,
    relation_prefix: str = "Q",
) -> ConjunctiveQuery:
    """A random acyclic self-join-free Boolean conjunctive query.

    Atom ``i`` picks a parent among the previous atoms, reuses a random
    subset of the parent's variables, and pads with fresh variables (and an
    occasional constant), so the attachment tree is a join tree.
    """
    rng = random.Random(seed)
    generated: List[Atom] = []
    fresh_counter = [0]

    def fresh_variable() -> Variable:
        fresh_counter[0] += 1
        return Variable(f"v{fresh_counter[0]}")

    for index in range(atoms):
        arity = rng.randint(1, max_arity)
        key_size = rng.randint(1, arity)
        relation = RelationSchema(f"{relation_prefix}{index}", arity, key_size)
        reusable: List[Variable] = []
        if generated:
            parent = rng.choice(generated)
            reusable = sorted(parent.variables, key=lambda v: v.name)
        terms = []
        for _ in range(arity):
            roll = rng.random()
            if roll < constant_probability:
                terms.append(Constant(f"k{rng.randint(0, 2)}"))
            elif reusable and roll < 0.55:
                terms.append(rng.choice(reusable))
            else:
                terms.append(fresh_variable())
        generated.append(Atom(relation, terms))
    return ConjunctiveQuery(generated)


def random_corpus(
    size: int,
    seed: int = 0,
    min_atoms: int = 2,
    max_atoms: int = 5,
    max_arity: int = 4,
) -> List[ConjunctiveQuery]:
    """A list of *size* random acyclic queries with varying shapes."""
    rng = random.Random(seed)
    corpus = []
    for index in range(size):
        corpus.append(
            random_acyclic_query(
                seed=rng.randrange(10**9),
                atoms=rng.randint(min_atoms, max_atoms),
                max_arity=max_arity,
            )
        )
    return corpus


def named_corpus() -> List[ConjunctiveQuery]:
    """The paper's named queries plus a few parametric relatives."""
    corpus = list(all_named_queries())
    corpus.extend(
        [
            path_query(3),
            path_query(5),
            star_query(3),
            cycle_query_c(4),
            cycle_query_ac(5),
            figure4_query(include_r0=False),
        ]
    )
    return corpus


def mixed_corpus(size: int = 40, seed: int = 7) -> List[ConjunctiveQuery]:
    """Named queries plus random ones — the default census corpus."""
    return named_corpus() + random_corpus(size, seed=seed)
