"""Multi-tenant service workloads: concurrent tenants, mixed read/write traffic.

The service benchmark needs traffic with three properties the other
generators don't provide together:

* **per-tenant isolation by construction** — every constant a tenant ever
  touches carries its tenant prefix (``t3~c17``), so the active domains of
  any two tenants are disjoint and the service's intern-table isolation is
  *checkable*: a tenant's private table must never contain another
  tenant's prefix, and the id→value maps must be pairwise disjoint;
* **deterministic, replayable traces** — each tenant's trace is a plain
  list of steps generated up front (no live contract), so the same trace
  can be driven concurrently through the service *and* replayed
  sequentially on a throwaway engine session, and the answers compared
  step-by-step for the in-run identity assertion;
* **band-mixed reads** — reads split between an FO-band open query (the
  inline hot path) and a PTIME-band Boolean query (the queued path), both
  over the same two relations, so one fact population serves both.

Writes draw block keys from a Zipf distribution (weight ``1/rank^skew``),
concentrating conflicts on a few hot blocks per tenant, and track a shadow
fact set so discards always name a fact actually present at that point in
the trace.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..engine.cache import PlanCache
from ..engine.session import CertaintySession
from ..model.database import UncertainDatabase
from ..query.parser import parse_query
from ..store import InternTable
from .generators import _zipf_weights
from .streaming import MutationOp, apply_mutation

#: One trace step: ``("read", query)`` or ``("write", [MutationOp, ...])``.
TraceStep = Tuple[str, object]

#: The FO-band read: an open path query, answered inline by the service.
FO_QUERY_TEXT = "R(x | y), S(y | z)"

#: The queued-band read: the Boolean 2-cycle query, PTIME but not FO.
QUEUED_QUERY_TEXT = "R(x | y), S(y | x)"


class TenantTrace:
    """One tenant's deterministic workload: initial facts plus a step list."""

    __slots__ = ("tenant_id", "prefix", "facts", "steps")

    def __init__(self, tenant_id, prefix, facts, steps) -> None:
        self.tenant_id = tenant_id
        self.prefix = prefix
        self.facts = facts
        self.steps = steps

    @property
    def reads(self) -> int:
        """Number of read steps in the trace."""
        return sum(1 for kind, _ in self.steps if kind == "read")

    @property
    def writes(self) -> int:
        """Number of write steps in the trace."""
        return sum(1 for kind, _ in self.steps if kind == "write")

    def __repr__(self) -> str:
        return (
            f"TenantTrace({self.tenant_id!r}, {len(self.facts)} facts, "
            f"{self.reads} reads / {self.writes} writes)"
        )


class MultiTenantWorkload:
    """A bundle of per-tenant traces sharing the two query shapes."""

    __slots__ = ("fo_query", "queued_query", "traces", "seed")

    def __init__(self, fo_query, queued_query, traces, seed) -> None:
        self.fo_query = fo_query
        self.queued_query = queued_query
        self.traces = traces
        self.seed = seed

    def __repr__(self) -> str:
        return f"MultiTenantWorkload({len(self.traces)} tenants, seed={self.seed})"


def multi_tenant_workload(
    num_tenants: int = 8,
    steps: int = 40,
    seed: int = 0,
    domain_size: int = 24,
    initial_facts: int = 48,
    read_fraction: float = 0.7,
    queued_read_fraction: float = 0.2,
    skew: float = 1.1,
    conflict_rate: float = 0.4,
    batch_range: Tuple[int, int] = (1, 4),
) -> MultiTenantWorkload:
    """Generate *num_tenants* deterministic mixed read/write traces.

    Each tenant gets a private Zipf-skewed active domain (prefixed with its
    tenant id), *initial_facts* starting facts over relations ``R``/``S``,
    and *steps* steps: a read with probability *read_fraction* (of which a
    *queued_read_fraction* share targets the PTIME-band query), otherwise a
    write batch of Zipf-keyed insertions, key-conflicting insertions, and
    discards of currently-present facts.
    """
    if num_tenants < 1:
        raise ValueError("num_tenants must be at least 1")
    fo_query = parse_query(FO_QUERY_TEXT, free=["x"])
    queued_query = parse_query(QUEUED_QUERY_TEXT)
    relations = [atom.relation for atom in fo_query.atoms]

    traces = []
    for idx in range(num_tenants):
        rng = random.Random(seed * 10007 + idx)
        prefix = f"t{idx}~"
        domain = [f"{prefix}c{j}" for j in range(domain_size)]
        weights = _zipf_weights(domain_size, skew)

        def zipf_fact(relation):
            key = rng.choices(domain, weights, k=relation.key_size)
            rest = [
                rng.choice(domain)
                for _ in range(relation.arity - relation.key_size)
            ]
            return relation.fact(*(key + rest))

        def conflicting_fact(fact):
            relation = fact.relation
            key = [c.value for c in fact.key_terms]
            rest = [
                rng.choice(domain)
                for _ in range(relation.arity - relation.key_size)
            ]
            return relation.fact(*(key + rest))

        shadow = set()
        facts = []
        for relation in relations:
            for _ in range(max(1, initial_facts // len(relations))):
                fact = zipf_fact(relation)
                facts.append(fact)
                shadow.add(fact)
                if rng.random() < conflict_rate:
                    extra = conflicting_fact(fact)
                    facts.append(extra)
                    shadow.add(extra)

        trace_steps: List[TraceStep] = []
        for _ in range(steps):
            if rng.random() < read_fraction:
                if rng.random() < queued_read_fraction:
                    trace_steps.append(("read", queued_query))
                else:
                    trace_steps.append(("read", fo_query))
                continue
            batch: List[MutationOp] = []
            for _ in range(rng.randint(*batch_range)):
                roll = rng.random()
                if roll < 0.25 and shadow:
                    victim = rng.choice(sorted(shadow, key=str))
                    shadow.discard(victim)
                    batch.append(("discard", victim))
                else:
                    fact = zipf_fact(rng.choice(relations))
                    shadow.add(fact)
                    batch.append(("add", fact))
                    if rng.random() < conflict_rate:
                        extra = conflicting_fact(fact)
                        shadow.add(extra)
                        batch.append(("add", extra))
            trace_steps.append(("write", batch))
        traces.append(TenantTrace(f"tenant-{idx}", prefix, facts, trace_steps))
    return MultiTenantWorkload(fo_query, queued_query, traces, seed)


def replay_trace(trace: TenantTrace) -> List[Tuple[int, frozenset]]:
    """Replay one trace sequentially on a throwaway engine session.

    Runs outside the service entirely — a fresh database, a fresh private
    :class:`~repro.store.intern.InternTable`, and a plain
    :class:`~repro.engine.session.CertaintySession` — and returns
    ``(step_index, answers)`` for every read step, Boolean verdicts encoded
    as ``{()}``/``set()``.  This is the ground truth the service run is
    compared against: same trace, independent code path.
    """
    db = UncertainDatabase(trace.facts)
    session = CertaintySession(
        db,
        plan_cache=PlanCache(maxsize=64),
        allow_exponential=True,
        intern_table=InternTable(),
    )
    answers: List[Tuple[int, frozenset]] = []
    try:
        for index, (kind, payload) in enumerate(trace.steps):
            if kind == "write":
                with db.batch():
                    for op in payload:
                        apply_mutation(db, op)
                continue
            query = payload
            if query.is_boolean:
                certain = session.is_certain(query)
                answers.append((index, frozenset({()}) if certain else frozenset()))
            else:
                answers.append((index, frozenset(session.certain_answers(query))))
    finally:
        session.close()
    return answers


__all__ = [
    "FO_QUERY_TEXT",
    "QUEUED_QUERY_TEXT",
    "MultiTenantWorkload",
    "TenantTrace",
    "TraceStep",
    "multi_tenant_workload",
    "replay_trace",
]
