"""Streaming mutation workloads for the incremental view subsystem.

A *mutation stream* is a deterministic sequence of batches of database
operations tailored to a query: insertions (fresh facts, witness-completing
facts, and key-conflicting facts that grow blocks), discards of existing
facts, and whole-block removals.  It is the workload shape the
:mod:`repro.incremental` subsystem is built for — sustained mutation-heavy
traffic against a database serving certain-answer views — and drives both
the differential tests and the ``incremental_views`` benchmark suite.

The generator is *live*: each step inspects the database as it currently
is, so the caller applies each yielded batch before requesting the next
(discards always name facts that exist, block removals name blocks that
exist).  All randomness flows from the explicit seed.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Tuple, Union

from ..model.atoms import Fact
from ..model.database import BlockKey, UncertainDatabase
from ..query.conjunctive import ConjunctiveQuery

#: One mutation: ``("add", fact)``, ``("discard", fact)``, or
#: ``("remove_block", block_key)``.
MutationOp = Tuple[str, Union[Fact, BlockKey]]


def apply_mutation(db: UncertainDatabase, op: MutationOp) -> None:
    """Apply one mutation op to *db*."""
    kind, payload = op
    if kind == "add":
        db.add(payload)  # type: ignore[arg-type]
    elif kind == "discard":
        db.discard(payload)  # type: ignore[arg-type]
    elif kind == "remove_block":
        db.remove_block(payload)  # type: ignore[arg-type]
    else:
        raise ValueError(f"unknown mutation op {kind!r}")


def apply_batch(db: UncertainDatabase, batch: List[MutationOp]) -> None:
    """Apply a batch of ops inside one ``db.batch()`` block.

    Observers receive a single consolidated notification, so an incremental
    view refreshes once for the whole batch.
    """
    with db.batch():
        for op in batch:
            apply_mutation(db, op)


def mutation_stream(
    query: ConjunctiveQuery,
    db: UncertainDatabase,
    steps: int,
    seed: int = 0,
    domain_size: Optional[int] = None,
    p_add: float = 0.55,
    p_discard: float = 0.30,
    p_conflict: float = 0.5,
    batch_range: Tuple[int, int] = (1, 1),
) -> Iterator[List[MutationOp]]:
    """Yield *steps* batches of mutations tailored to *query* over *db*.

    Parameters
    ----------
    query:
        Insertions target this query's relations (other relations would
        never change an answer).
    db:
        The database the stream runs against.  **Live contract**: apply
        each yielded batch (e.g. via :func:`apply_batch`) before pulling
        the next — later steps pick discard victims and block targets from
        the then-current contents.
    steps:
        Number of batches to yield.
    seed:
        Seed of the private RNG; streams are fully deterministic.
    domain_size:
        Constant pool for fresh facts (default: scales with ``len(db)``).
    p_add / p_discard:
        Probabilities of an insertion / a discard per op; the remainder is
        a whole-block removal.  Empty databases force insertions.
    p_conflict:
        Fraction of insertions that reuse an existing block's key (growing
        a block — the actual source of uncertainty) rather than drawing a
        fresh random fact.
    batch_range:
        Inclusive ``(lo, hi)`` bounds on ops per batch.
    """
    rng = random.Random(seed)
    relations = [atom.relation for atom in query.atoms]
    size = domain_size if domain_size is not None else max(8, len(db) // 4)
    domain = [f"c{i}" for i in range(size)]

    def random_fact() -> Fact:
        relation = rng.choice(relations)
        return relation.fact(*[rng.choice(domain) for _ in range(relation.arity)])

    def conflicting_fact() -> Optional[Fact]:
        """A fact reusing an existing block's key with fresh non-key values."""
        blocks = [
            key
            for relation in relations
            for key in sorted(
                (k for k in db.block_keys() if k[0] == relation.name),
                key=lambda k: tuple(str(c) for c in k[1]),
            )
        ]
        if not blocks:
            return None
        name, key_values = rng.choice(blocks)
        relation = next(r for r in relations if r.name == name)
        rest = [rng.choice(domain) for _ in range(relation.arity - relation.key_size)]
        return relation.fact(*([c.value for c in key_values] + rest))

    def existing_fact() -> Optional[Fact]:
        facts = sorted(db.facts, key=str)
        return rng.choice(facts) if facts else None

    for _ in range(steps):
        batch: List[MutationOp] = []
        for _ in range(rng.randint(*batch_range)):
            roll = rng.random()
            if roll < p_add or not db:
                fact = conflicting_fact() if rng.random() < p_conflict else None
                batch.append(("add", fact if fact is not None else random_fact()))
            elif roll < p_add + p_discard:
                victim = existing_fact()
                if victim is not None:
                    batch.append(("discard", victim))
            else:
                keys = sorted(
                    db.block_keys(), key=lambda k: (k[0],) + tuple(str(c) for c in k[1])
                )
                if keys:
                    batch.append(("remove_block", rng.choice(keys)))
        yield batch
