"""Hand-crafted instances from the paper and structured ring instances.

* :func:`figure1_database` and :func:`figure1_query` — the conference
  planning example of Figure 1 (four repairs, the query holds in three).
* :func:`figure6_database` — the purified ``AC(3)`` instance of Figure 6,
  which is *not* in ``CERTAINTY(AC(3))`` (Figure 7 exhibits two falsifying
  repairs).
* :func:`ring_instance` — parametric ``C(k)``/``AC(k)`` instances: a
  ``k``-partite ring graph with a configurable number of parallel cycles,
  cross edges, and encoded witness cycles, generalising Figure 6.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..model.atoms import RelationSchema
from ..model.database import UncertainDatabase
from ..model.symbols import Constant, Variable
from ..query.conjunctive import ConjunctiveQuery
from ..query.families import cycle_query_ac, cycle_query_c


def figure1_query() -> ConjunctiveQuery:
    """``∃x∃y (C(x, y, 'Rome') ∧ R(x, 'A'))`` — "Will Rome host some A conference?"."""
    conference = RelationSchema("C", 3, 2)
    ranking = RelationSchema("R", 2, 1)
    x, y = Variable("x"), Variable("y")
    return ConjunctiveQuery(
        [
            conference.atom(x, y, Constant("Rome")),
            ranking.atom(x, Constant("A")),
        ]
    )


def figure1_database() -> UncertainDatabase:
    """The conference planning database of Figure 1 (two conflicting blocks)."""
    conference = RelationSchema("C", 3, 2)
    ranking = RelationSchema("R", 2, 1)
    return UncertainDatabase(
        [
            conference.fact("PODS", 2016, "Rome"),
            conference.fact("PODS", 2016, "Paris"),
            conference.fact("KDD", 2017, "Rome"),
            ranking.fact("PODS", "A"),
            ranking.fact("KDD", "A"),
            ranking.fact("KDD", "B"),
        ]
    )


def figure6_database() -> UncertainDatabase:
    """The Figure 6 instance for ``AC(3)`` (purified; not certain).

    The ring relations encode the 6-vertex graph on ``{a, b, c, a', b', c'}``
    and ``S3`` encodes the three *clockwise* triangles; the two repairs of
    Figure 7 falsify the query.
    """
    query = cycle_query_ac(3)
    r1, r2, r3, s3 = (query.schema()[name] for name in ("R1", "R2", "R3", "S3"))
    return UncertainDatabase(
        [
            r1.fact("a", "b"),
            r1.fact("a", "b'"),
            r1.fact("a'", "b"),
            r2.fact("b", "c"),
            r2.fact("b", "c'"),
            r2.fact("b'", "c"),
            r3.fact("c", "a"),
            r3.fact("c", "a'"),
            r3.fact("c'", "a"),
            s3.fact("a", "b", "c'"),
            s3.fact("a", "b'", "c"),
            s3.fact("a'", "b", "c"),
        ]
    )


def figure7_falsifying_repairs() -> List[frozenset]:
    """Two falsifying repairs of the Figure 6 database, as in Figure 7.

    The first repair selects the triangle ``a → b → c → a``, which is the only
    3-cycle of the graph *not* encoded in ``S3`` ("Case 1" in the proof of
    Theorem 4); the second selects the long 6-cycle
    ``a → b' → c → a' → b → c' → a`` ("Case 2").  Both contain every ``S3``
    fact (``S3`` is all-key, so its facts belong to every repair) and neither
    contains all three edges of an encoded triangle, so both falsify
    ``AC(3)``.
    """
    query = cycle_query_ac(3)
    r1, r2, r3, s3 = (query.schema()[name] for name in ("R1", "R2", "R3", "S3"))
    s3_facts = [s3.fact("a", "b", "c'"), s3.fact("a", "b'", "c"), s3.fact("a'", "b", "c")]
    unencoded_triangle = frozenset(
        [
            r1.fact("a", "b"),
            r1.fact("a'", "b"),
            r2.fact("b", "c"),
            r2.fact("b'", "c"),
            r3.fact("c", "a"),
            r3.fact("c'", "a"),
        ]
        + s3_facts
    )
    long_cycle = frozenset(
        [
            r1.fact("a", "b'"),
            r1.fact("a'", "b"),
            r2.fact("b", "c'"),
            r2.fact("b'", "c"),
            r3.fact("c", "a'"),
            r3.fact("c'", "a"),
        ]
        + s3_facts
    )
    return [unencoded_triangle, long_cycle]


def ring_instance(
    k: int,
    copies: int = 2,
    chords: int = 2,
    encoded_fraction: float = 0.5,
    seed: int = 0,
    with_sk: bool = True,
) -> Tuple[ConjunctiveQuery, UncertainDatabase]:
    """A parametric ``AC(k)``/``C(k)`` instance generalising Figure 6.

    ``copies`` parallel ``k``-cycles are laid out on a ``k``-partite vertex
    set; ``chords`` extra edges connect different copies (creating longer
    cycles and key conflicts); a fraction of the ``k``-cycles present in the
    graph is encoded in ``Sk`` (when ``with_sk`` is true).
    """
    rng = random.Random(seed)
    query = cycle_query_ac(k) if with_sk else cycle_query_c(k)
    schema = query.schema()
    rings = [schema[f"R{i}"] for i in range(1, k + 1)]
    sk = schema[f"S{k}"] if with_sk else None

    def node(position: int, copy: int) -> str:
        return f"v{position}_{copy}"

    db = UncertainDatabase()
    cycles: List[Tuple[str, ...]] = []
    for copy in range(copies):
        vertices = tuple(node(i, copy) for i in range(k))
        cycles.append(vertices)
        for i in range(k):
            db.add(rings[i].fact(vertices[i], vertices[(i + 1) % k]))
    for _ in range(chords):
        position = rng.randrange(k)
        source_copy = rng.randrange(copies)
        target_copy = rng.randrange(copies)
        db.add(
            rings[position].fact(
                node(position, source_copy), node((position + 1) % k, target_copy)
            )
        )
    if sk is not None:
        for vertices in cycles:
            if rng.random() < encoded_fraction:
                db.add(sk.fact(*vertices))
    return query, db
