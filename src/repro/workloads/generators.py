"""Synthetic uncertain-database generators.

The paper has no data sets of its own (it is a theory paper), so the
experiments run on synthetic databases.  The generators below are
parameterised by the quantities that drive the behaviour of CERTAINTY
solvers:

* the *active domain size*, which controls join selectivity;
* the number of *witness valuations* planted (random valuations of the
  query variables whose atom images are inserted), which controls how much
  evidence for the query exists;
* the number of *noise facts* per relation, which controls how much
  irrelevant data the purification step has to strip;
* the *conflict rate*, which controls block sizes — the actual source of
  uncertainty.

All generators take an explicit seed and are fully deterministic.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from ..model.database import UncertainDatabase
from ..model.symbols import Constant
from ..model.valuation import Valuation
from ..query.conjunctive import ConjunctiveQuery


def _domain(size: int, prefix: str = "c") -> List[str]:
    return [f"{prefix}{i}" for i in range(size)]


def random_valuation(
    query: ConjunctiveQuery, domain: Sequence[str], rng: random.Random
) -> Valuation:
    """A uniformly random valuation of the query variables over *domain*."""
    return Valuation({v: Constant(rng.choice(domain)) for v in query.variables})


def synthetic_instance(
    query: ConjunctiveQuery,
    seed: int = 0,
    domain_size: int = 6,
    witnesses: int = 4,
    noise_per_relation: int = 4,
    conflict_rate: float = 0.4,
) -> UncertainDatabase:
    """A random uncertain database tailored to *query*.

    The database mixes planted witnesses (full images of random valuations),
    uniform noise facts, and extra key-conflicting facts controlled by
    *conflict_rate*.
    """
    rng = random.Random(seed)
    domain = _domain(domain_size)
    db = UncertainDatabase()

    for _ in range(witnesses):
        valuation = random_valuation(query, domain, rng)
        for atom in query.atoms:
            db.add(valuation.ground(atom))

    for atom in query.atoms:
        relation = atom.relation
        for _ in range(noise_per_relation):
            db.add(relation.fact(*[rng.choice(domain) for _ in range(relation.arity)]))

    # Add conflicting facts: same key, fresh non-key values.
    for fact in list(db.facts):
        relation = fact.relation
        if relation.is_all_key or rng.random() >= conflict_rate:
            continue
        key_values = [c.value for c in fact.key_terms]
        rest = [rng.choice(domain) for _ in range(relation.arity - relation.key_size)]
        db.add(relation.fact(*(key_values + rest)))
    return db


def uniform_random_instance(
    query: ConjunctiveQuery,
    seed: int = 0,
    domain_size: int = 4,
    facts_per_relation: int = 6,
) -> UncertainDatabase:
    """Fully random facts per relation, with no planted structure."""
    rng = random.Random(seed)
    domain = _domain(domain_size)
    db = UncertainDatabase()
    for atom in query.atoms:
        relation = atom.relation
        for _ in range(facts_per_relation):
            db.add(relation.fact(*[rng.choice(domain) for _ in range(relation.arity)]))
    return db


def planted_certain_instance(
    query: ConjunctiveQuery,
    seed: int = 0,
    domain_size: int = 6,
    noise_per_relation: int = 5,
    conflict_rate: float = 0.4,
) -> UncertainDatabase:
    """A database guaranteed to be in ``CERTAINTY(q)``.

    A reserved witness (over constants outside the noise domain) is planted
    with singleton blocks; since every repair contains all singleton blocks,
    the query is certain regardless of the surrounding noise.
    """
    rng = random.Random(seed)
    db = synthetic_instance(
        query,
        seed=seed + 1,
        domain_size=domain_size,
        witnesses=2,
        noise_per_relation=noise_per_relation,
        conflict_rate=conflict_rate,
    )
    reserved = Valuation({v: Constant(f"planted_{v.name}") for v in query.variables})
    for atom in query.atoms:
        db.add(reserved.ground(atom))
    return db


def scaling_instances(
    query: ConjunctiveQuery,
    sizes: Sequence[int],
    seed: int = 0,
    conflict_rate: float = 0.4,
) -> List[Tuple[int, UncertainDatabase]]:
    """A family of instances of growing size (for the scaling benchmarks).

    Each entry plants ``size`` witnesses over a domain of ``2 * size``
    constants and ``size`` noise facts per relation, so the number of facts
    grows linearly with ``size``.
    """
    out = []
    for i, size in enumerate(sizes):
        db = synthetic_instance(
            query,
            seed=seed + i,
            domain_size=max(2, 2 * size),
            witnesses=size,
            noise_per_relation=size,
            conflict_rate=conflict_rate,
        )
        out.append((size, db))
    return out
