"""Synthetic uncertain-database generators.

The paper has no data sets of its own (it is a theory paper), so the
experiments run on synthetic databases.  The generators below are
parameterised by the quantities that drive the behaviour of CERTAINTY
solvers:

* the *active domain size*, which controls join selectivity;
* the number of *witness valuations* planted (random valuations of the
  query variables whose atom images are inserted), which controls how much
  evidence for the query exists;
* the number of *noise facts* per relation, which controls how much
  irrelevant data the purification step has to strip;
* the *conflict rate*, which controls block sizes — the actual source of
  uncertainty.

All generators take an explicit seed and are fully deterministic.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Sequence, Tuple

from ..model.atoms import Fact
from ..model.database import UncertainDatabase
from ..model.symbols import Constant
from ..model.valuation import Valuation
from ..query.conjunctive import ConjunctiveQuery
from .streaming import MutationOp


def _domain(size: int, prefix: str = "c") -> List[str]:
    return [f"{prefix}{i}" for i in range(size)]


def random_valuation(
    query: ConjunctiveQuery, domain: Sequence[str], rng: random.Random
) -> Valuation:
    """A uniformly random valuation of the query variables over *domain*."""
    return Valuation({v: Constant(rng.choice(domain)) for v in query.variables})


def synthetic_instance(
    query: ConjunctiveQuery,
    seed: int = 0,
    domain_size: int = 6,
    witnesses: int = 4,
    noise_per_relation: int = 4,
    conflict_rate: float = 0.4,
) -> UncertainDatabase:
    """A random uncertain database tailored to *query*.

    The database mixes planted witnesses (full images of random valuations),
    uniform noise facts, and extra key-conflicting facts controlled by
    *conflict_rate*.
    """
    rng = random.Random(seed)
    domain = _domain(domain_size)
    db = UncertainDatabase()

    for _ in range(witnesses):
        valuation = random_valuation(query, domain, rng)
        for atom in query.atoms:
            db.add(valuation.ground(atom))

    for atom in query.atoms:
        relation = atom.relation
        for _ in range(noise_per_relation):
            db.add(relation.fact(*[rng.choice(domain) for _ in range(relation.arity)]))

    # Add conflicting facts: same key, fresh non-key values.
    for fact in list(db.facts):
        relation = fact.relation
        if relation.is_all_key or rng.random() >= conflict_rate:
            continue
        key_values = [c.value for c in fact.key_terms]
        rest = [rng.choice(domain) for _ in range(relation.arity - relation.key_size)]
        db.add(relation.fact(*(key_values + rest)))
    return db


def uniform_random_instance(
    query: ConjunctiveQuery,
    seed: int = 0,
    domain_size: int = 4,
    facts_per_relation: int = 6,
) -> UncertainDatabase:
    """Fully random facts per relation, with no planted structure."""
    rng = random.Random(seed)
    domain = _domain(domain_size)
    db = UncertainDatabase()
    for atom in query.atoms:
        relation = atom.relation
        for _ in range(facts_per_relation):
            db.add(relation.fact(*[rng.choice(domain) for _ in range(relation.arity)]))
    return db


def planted_certain_instance(
    query: ConjunctiveQuery,
    seed: int = 0,
    domain_size: int = 6,
    noise_per_relation: int = 5,
    conflict_rate: float = 0.4,
) -> UncertainDatabase:
    """A database guaranteed to be in ``CERTAINTY(q)``.

    A reserved witness (over constants outside the noise domain) is planted
    with singleton blocks; since every repair contains all singleton blocks,
    the query is certain regardless of the surrounding noise.
    """
    rng = random.Random(seed)
    db = synthetic_instance(
        query,
        seed=seed + 1,
        domain_size=domain_size,
        witnesses=2,
        noise_per_relation=noise_per_relation,
        conflict_rate=conflict_rate,
    )
    reserved = Valuation({v: Constant(f"planted_{v.name}") for v in query.variables})
    for atom in query.atoms:
        db.add(reserved.ground(atom))
    return db


def _zipf_weights(n: int, skew: float) -> List[float]:
    """Unnormalised Zipf weights ``1/rank^skew`` for ranks ``1..n``."""
    return [1.0 / (rank**skew) for rank in range(1, n + 1)]


def zipfian_instance(
    query: ConjunctiveQuery,
    seed: int = 0,
    domain_size: int = 32,
    facts_per_relation: int = 64,
    skew: float = 1.1,
    conflict_rate: float = 0.4,
) -> UncertainDatabase:
    """A random instance whose *block keys* follow a Zipfian distribution.

    Key positions draw from a rank-weighted domain (weight ``1/rank^skew``),
    so a handful of hot keys own most blocks while the tail is sparse — the
    adversarial shape for anything that partitions by block key: hash
    shards inherit the imbalance, and hot blocks grow deep with conflicts.
    Non-key positions stay uniform (skew there would only shrink the value
    domain, not concentrate blocks).
    """
    rng = random.Random(seed)
    domain = _domain(domain_size)
    weights = _zipf_weights(domain_size, skew)
    db = UncertainDatabase()
    for atom in query.atoms:
        relation = atom.relation
        for _ in range(facts_per_relation):
            key = rng.choices(domain, weights, k=relation.key_size)
            rest = [
                rng.choice(domain)
                for _ in range(relation.arity - relation.key_size)
            ]
            db.add(relation.fact(*(key + rest)))
            if not relation.is_all_key and rng.random() < conflict_rate:
                conflicting = [
                    rng.choice(domain)
                    for _ in range(relation.arity - relation.key_size)
                ]
                db.add(relation.fact(*(key + conflicting)))
    return db


def bursty_mutation_stream(
    query: ConjunctiveQuery,
    db: UncertainDatabase,
    steps: int,
    seed: int = 0,
    domain_size: Optional[int] = None,
    skew: float = 1.1,
    p_burst: float = 0.25,
    burst_range: Tuple[int, int] = (8, 24),
    quiet_range: Tuple[int, int] = (1, 2),
    p_discard: float = 0.3,
) -> Iterator[List[MutationOp]]:
    """Yield *steps* batches alternating quiet trickle and hot-key bursts.

    Complements :func:`~repro.workloads.streaming.mutation_stream` (same
    **live contract**: apply each yielded batch before pulling the next)
    with the write pattern that stresses delta shipping: most steps are a
    small uniform trickle, but with probability *p_burst* a step hammers a
    single Zipf-hot block key — a burst of key-conflicting insertions and
    discards concentrated on one block, of size drawn from *burst_range*.
    Under block-hash sharding an entire burst lands on one shard, so the
    other shards' deltas stay near-empty while one grows deep.
    """
    rng = random.Random(seed)
    relations = [atom.relation for atom in query.atoms]
    size = domain_size if domain_size is not None else max(8, len(db) // 4)
    domain = [f"c{i}" for i in range(size)]
    weights = _zipf_weights(size, skew)

    def uniform_fact() -> "Fact":
        relation = rng.choice(relations)
        return relation.fact(*[rng.choice(domain) for _ in range(relation.arity)])

    def hot_block_fact(relation, hot_key: List[str]) -> "Fact":
        rest = [rng.choice(domain) for _ in range(relation.arity - relation.key_size)]
        return relation.fact(*(hot_key + rest))

    def existing_fact() -> Optional["Fact"]:
        facts = sorted(db.facts, key=str)
        return rng.choice(facts) if facts else None

    for _ in range(steps):
        batch: List[MutationOp] = []
        if rng.random() < p_burst:
            relation = rng.choice(relations)
            hot_key = rng.choices(domain, weights, k=relation.key_size)
            block_key = (relation.name, tuple(Constant(v) for v in hot_key))
            for _ in range(rng.randint(*burst_range)):
                victims = sorted(db.block(block_key), key=str)
                if victims and rng.random() < p_discard:
                    batch.append(("discard", rng.choice(victims)))
                else:
                    batch.append(("add", hot_block_fact(relation, hot_key)))
            # The burst's ops are staged against the pre-batch database, so
            # a staged discard may name a fact a staged add re-creates —
            # db.batch() nets that out, which is exactly the point.
        else:
            for _ in range(rng.randint(*quiet_range)):
                if db and rng.random() < p_discard:
                    victim = existing_fact()
                    if victim is not None:
                        batch.append(("discard", victim))
                else:
                    batch.append(("add", uniform_fact()))
        yield batch


def scaling_instances(
    query: ConjunctiveQuery,
    sizes: Sequence[int],
    seed: int = 0,
    conflict_rate: float = 0.4,
) -> List[Tuple[int, UncertainDatabase]]:
    """A family of instances of growing size (for the scaling benchmarks).

    Each entry plants ``size`` witnesses over a domain of ``2 * size``
    constants and ``size`` noise facts per relation, so the number of facts
    grows linearly with ``size``.
    """
    out = []
    for i, size in enumerate(sizes):
        db = synthetic_instance(
            query,
            seed=seed + i,
            domain_size=max(2, 2 * size),
            witnesses=size,
            noise_per_relation=size,
            conflict_rate=conflict_rate,
        )
        out.append((size, db))
    return out
