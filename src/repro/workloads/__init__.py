"""Synthetic workloads: database generators, paper instances, query corpora,
and streaming mutation workloads for the incremental view subsystem."""

from .corpora import mixed_corpus, named_corpus, random_acyclic_query, random_corpus
from .generators import (
    bursty_mutation_stream,
    planted_certain_instance,
    random_valuation,
    scaling_instances,
    synthetic_instance,
    uniform_random_instance,
    zipfian_instance,
)
from .multitenant import (
    MultiTenantWorkload,
    TenantTrace,
    multi_tenant_workload,
    replay_trace,
)
from .streaming import apply_batch, apply_mutation, mutation_stream
from .instances import (
    figure1_database,
    figure1_query,
    figure6_database,
    figure7_falsifying_repairs,
    ring_instance,
)

__all__ = [
    "apply_batch",
    "apply_mutation",
    "bursty_mutation_stream",
    "figure1_database",
    "figure1_query",
    "figure6_database",
    "figure7_falsifying_repairs",
    "mixed_corpus",
    "multi_tenant_workload",
    "MultiTenantWorkload",
    "mutation_stream",
    "named_corpus",
    "planted_certain_instance",
    "random_acyclic_query",
    "random_corpus",
    "random_valuation",
    "replay_trace",
    "ring_instance",
    "TenantTrace",
    "scaling_instances",
    "synthetic_instance",
    "uniform_random_instance",
    "zipfian_instance",
]
