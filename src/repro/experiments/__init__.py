"""Executable reproductions of the paper's figures, examples, and theorem claims."""

from .figures import (
    ALL_EXPERIMENTS,
    experiment_counting,
    experiment_figure1,
    experiment_figure2,
    experiment_figure4,
    experiment_figure6,
    experiment_frontier_census,
    experiment_lemmas,
    experiment_probability_bridge,
    experiment_theorem1,
    experiment_theorem2,
    experiment_theorem3_agreement,
    experiment_theorem4_agreement,
    run_all_experiments,
)
from .runner import Check, ExperimentReport, timed

__all__ = [
    "ALL_EXPERIMENTS",
    "Check",
    "ExperimentReport",
    "experiment_counting",
    "experiment_figure1",
    "experiment_figure2",
    "experiment_figure4",
    "experiment_figure6",
    "experiment_frontier_census",
    "experiment_lemmas",
    "experiment_probability_bridge",
    "experiment_theorem1",
    "experiment_theorem2",
    "experiment_theorem3_agreement",
    "experiment_theorem4_agreement",
    "run_all_experiments",
    "timed",
]
