"""Executable reproductions of every figure, example, and theorem claim.

The paper is a theory paper: its "evaluation" consists of worked examples
(Figures 1–7, Examples 1–6) and complexity theorems.  Each ``experiment_*``
function below regenerates the corresponding artefact with the library and
checks the claims the paper makes about it, returning an
:class:`~repro.experiments.runner.ExperimentReport`.  The benchmark harness
and EXPERIMENTS.md are built on these functions.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from ..attacks.cycles import enumerate_cycles, has_strong_cycle
from ..attacks.graph import AttackGraph
from ..attacks.properties import lemma_report
from ..certainty import (
    certain_brute_force,
    certain_cycle_query,
    certain_fo,
    certain_terminal_cycles,
    is_certain,
    purify,
    theorem2_reduction,
)
from ..core.classify import classify
from ..core.complexity import ComplexityBand
from ..core.frontier import band_counts, classify_corpus
from ..counting import count_satisfying_repairs, repair_frequency
from ..fo import evaluate_sentence, formula_size
from ..model.repairs import count_repairs, enumerate_repairs, is_repair
from ..probability import (
    BIDDatabase,
    compare_frontiers,
    is_safe,
    probability_by_worlds,
    probability_safe_plan,
    proposition1_holds,
)
from ..query.evaluation import satisfies
from ..query.families import (
    cycle_query_ac,
    cycle_query_c,
    figure2_q1,
    figure4_query,
    kolaitis_pema_q0,
)
from ..query.jointree import build_join_tree
from ..workloads.corpora import mixed_corpus
from ..workloads.generators import synthetic_instance, uniform_random_instance
from ..workloads.instances import (
    figure1_database,
    figure1_query,
    figure6_database,
    figure7_falsifying_repairs,
)
from .runner import ExperimentReport


def experiment_figure1() -> ExperimentReport:
    """E1: the conference-planning example of Figure 1 and the introduction."""
    report = ExperimentReport("E1", "Figure 1 — uncertain conference database")
    db = figure1_database()
    query = figure1_query()
    repairs = list(enumerate_repairs(db))
    satisfied = sum(1 for repair in repairs if satisfies(repair, query))
    report.set_columns("quantity", "value")
    report.add_row("facts", len(db))
    report.add_row("blocks", db.num_blocks())
    report.add_row("repairs", len(repairs))
    report.add_row("repairs satisfying q", satisfied)
    report.add_row("certain", is_certain(db, query))
    report.add_check("the database has four repairs", len(repairs) == 4)
    report.add_check("the query is true in exactly three repairs", satisfied == 3)
    report.add_check("the query is not certain", not is_certain(db, query))
    report.add_check(
        "CERTAINTY(q) is first-order expressible for the Figure 1 query",
        classify(query).band is ComplexityBand.FO,
    )
    return report


def experiment_figure2() -> ExperimentReport:
    """E2: the join tree, closures and attack graph of q1 (Figure 2, Examples 2–4)."""
    report = ExperimentReport("E2", "Figure 2 — attack graph of q1")
    query = figure2_q1()
    graph = AttackGraph(query)
    atoms = {atom.name: atom for atom in query.atoms}
    f, g, h, i = atoms["R"], atoms["S"], atoms["T"], atoms["P"]

    def names(variables) -> str:
        return "{" + ",".join(sorted(v.name for v in variables)) + "}"

    report.set_columns("atom", "key", "F+,q", "F⊞,q")
    for atom in (f, g, h, i):
        report.add_row(
            str(atom),
            names(atom.key_variables),
            names(graph.plus_closures[atom]),
            names(graph.box_closures[atom]),
        )
    expected_plus = {
        "R": {"u"},
        "S": {"y"},
        "T": {"x", "z"},
        "P": {"x", "y", "z"},
    }
    closures_match = all(
        {v.name for v in graph.plus_closures[atoms[name]]} == expected
        for name, expected in expected_plus.items()
    )
    report.add_check("the F+,q closures match Example 2", closures_match)
    report.add_check(
        "the attack from G=S to F=R is strong", graph.is_strong_attack(g, f)
    )
    strong_attacks = [a for a in graph.attacks if a.is_strong]
    report.add_check(
        "G ⤳ F is the only strong attack (Example 4)",
        len(strong_attacks) == 1 and strong_attacks[0].source == g and strong_attacks[0].target == f,
    )
    cycles = enumerate_cycles(graph)
    report.add_check(
        "the attack graph has both a strong 2-cycle and a strong 3-cycle (Example 4)",
        any(c.is_strong and c.length == 2 for c in cycles)
        and any(c.is_strong and c.length == 3 for c in cycles),
    )
    report.add_check(
        "the weak cycle G ⤳ H ⤳ G exists (Example 4)",
        graph.is_weak_attack(h, g) and graph.is_weak_attack(g, h),
    )
    report.add_check(
        "q1 is classified coNP-complete (Theorem 2)",
        classify(query).band is ComplexityBand.CONP_COMPLETE,
    )
    tree = build_join_tree(query)
    report.add_check("the constructed join tree satisfies connectedness", tree.satisfies_connectedness())
    return report


def experiment_figure4() -> ExperimentReport:
    """E3: the Figure 4 query — all cycles weak and terminal, CERTAINTY in P."""
    report = ExperimentReport("E3", "Figure 4 — weak terminal cycles (Theorem 3)")
    query = figure4_query()
    graph = AttackGraph(query)
    cycles = enumerate_cycles(graph)
    report.set_columns("cycle", "weak", "terminal")
    for cycle in cycles:
        report.add_row(" ⤳ ".join(a.name for a in cycle.atoms), cycle.is_weak, cycle.is_terminal)
    report.add_check("the attack graph has exactly three cycles", len(cycles) == 3)
    report.add_check("every cycle is weak", all(c.is_weak for c in cycles))
    report.add_check("every cycle is terminal", all(c.is_terminal for c in cycles))
    report.add_check(
        "the query is classified in P but not FO (Theorem 3 + Theorem 1)",
        classify(query).band is ComplexityBand.PTIME_NOT_FO,
    )
    agreement = True
    for seed in range(8):
        db = synthetic_instance(query, seed=seed, domain_size=3, witnesses=2, noise_per_relation=2)
        if certain_terminal_cycles(db, query) != certain_brute_force(db, query):
            agreement = False
            break
    report.add_check("the Theorem 3 solver agrees with the oracle on random instances", agreement)
    return report


def experiment_figure6() -> ExperimentReport:
    """E4: AC(3), the Figure 6 database and the falsifying repairs of Figure 7."""
    report = ExperimentReport("E4", "Figures 5–7 — AC(3) and its graph algorithm (Theorem 4)")
    query = cycle_query_ac(3)
    graph = AttackGraph(query)
    cycles = enumerate_cycles(graph)
    two_cycles = [c for c in cycles if c.length == 2]
    report.set_columns("quantity", "value")
    report.add_row("elementary attack cycles", len(cycles))
    report.add_row("attack 2-cycles", len(two_cycles))
    report.add_row("weak cycles", sum(1 for c in cycles if c.is_weak))
    report.add_row("nonterminal cycles", sum(1 for c in cycles if not c.is_terminal))
    report.add_check(
        "AC(3) has k(k-1)/2 = 3 attack 2-cycles, all weak and nonterminal (Figure 5)",
        len(two_cycles) == 3 and all(c.is_weak and not c.is_terminal for c in cycles),
    )
    report.add_check("no attack cycle of AC(3) is strong", not has_strong_cycle(graph))

    db = figure6_database()
    purified = purify(db, query)
    report.add_row("Figure 6 facts", len(db))
    report.add_check("the Figure 6 database is purified relative to AC(3)", purified.facts == db.facts)
    certain_graph = certain_cycle_query(db, query)
    certain_oracle = certain_brute_force(db, query)
    report.add_row("certain (Theorem 4 algorithm)", certain_graph)
    report.add_row("certain (oracle)", certain_oracle)
    report.add_check("the Figure 6 database is NOT certain for AC(3)", not certain_graph)
    report.add_check("the Theorem 4 algorithm agrees with the oracle on Figure 6", certain_graph == certain_oracle)

    falsifiers_ok = True
    for repair in figure7_falsifying_repairs():
        if not is_repair(db, repair) or satisfies(repair, query):
            falsifiers_ok = False
            break
    report.add_check("both Figure 7 repairs are repairs of Figure 6 and falsify AC(3)", falsifiers_ok)
    report.add_check(
        "AC(3) is classified in P via Theorem 4",
        classify(query).band is ComplexityBand.PTIME_CYCLE_QUERY,
    )
    report.add_check(
        "C(3) is classified in P via Corollary 1",
        classify(cycle_query_c(3)).band is ComplexityBand.PTIME_CYCLE_QUERY,
    )
    return report


def experiment_theorem1(trials: int = 25, seed: int = 11) -> ExperimentReport:
    """E5: FO classification and the certain FO rewriting versus the oracle.

    The rewriting is exercised through *both* evaluation strategies — the
    naive active-domain recursion and the compiled set-at-a-time plans of
    :mod:`repro.fo.compile` — and the compiled plans are additionally
    checked to be fully guarded (they never enumerate the active domain).
    """
    report = ExperimentReport("E5", "Theorem 1 — first-order expressibility")
    from ..fo import EvalContext, certain_rewriting_cached, compile_formula
    from ..query.families import fuxman_miller_cfree_example, path_query

    queries = [fuxman_miller_cfree_example(), path_query(3), figure1_query()]
    report.set_columns("query", "band", "rewriting size", "oracle agreement", "guarded")
    all_agree = True
    all_guarded = True
    rng = random.Random(seed)
    for query in queries:
        formula = certain_rewriting_cached(query)
        plan = compile_formula(formula)
        agree = True
        expansions = 0
        for _ in range(trials):
            db = uniform_random_instance(query, seed=rng.randrange(10**9), domain_size=3, facts_per_relation=4)
            expected = certain_brute_force(db, query)
            ctx = EvalContext.for_database(db)
            if (
                plan.evaluate(context=ctx) != expected
                or evaluate_sentence(db, formula, compiled=False) != expected
                or certain_fo(db, query) != expected
            ):
                agree = False
                break
            expansions += ctx.domain_expansions
        all_agree &= agree
        all_guarded &= expansions == 0
        report.add_row(
            str(query), classify(query).band.name, formula_size(formula), agree, expansions == 0
        )
    report.add_check("compiled and naive rewriting evaluation agree with the oracle", all_agree)
    report.add_check(
        "compiled rewriting plans are fully guarded (no active-domain enumeration)",
        all_guarded,
    )
    report.add_check(
        "every tested query with an acyclic attack graph is classified FO",
        all(classify(q).band is ComplexityBand.FO for q in queries),
    )
    return report


def experiment_theorem2(trials: int = 12, seed: int = 5) -> ExperimentReport:
    """E6: the Theorem 2 reduction preserves certainty on concrete instances."""
    report = ExperimentReport("E6", "Theorem 2 — reduction from CERTAINTY(q0)")
    q0 = kolaitis_pema_q0()
    target = figure2_q1()
    rng = random.Random(seed)
    agreements = 0
    sizes: List[Tuple[int, int]] = []
    for trial in range(trials):
        db0 = uniform_random_instance(q0, seed=rng.randrange(10**9), domain_size=3, facts_per_relation=4)
        transformed = theorem2_reduction(target, db0)
        source_certain = certain_brute_force(purify(db0, q0), q0)
        target_certain = certain_brute_force(transformed, target)
        if source_certain == target_certain:
            agreements += 1
        sizes.append((len(db0), len(transformed)))
    report.set_columns("quantity", "value")
    report.add_row("trials", trials)
    report.add_row("equivalences preserved", agreements)
    report.add_row("average source size", sum(s for s, _ in sizes) / len(sizes))
    report.add_row("average target size", sum(t for _, t in sizes) / len(sizes))
    report.add_check(
        "db0 ∈ CERTAINTY(q0) ⇔ reduction(db0) ∈ CERTAINTY(q1) on every trial",
        agreements == trials,
    )
    report.add_check(
        "the reduction output stays polynomial (≤ |q| · #witnesses facts)",
        all(t <= len(target) * max(1, s) ** 3 for s, t in sizes),
    )
    report.add_check(
        "q1 (the reduction target) is classified coNP-complete",
        classify(target).band is ComplexityBand.CONP_COMPLETE,
    )
    return report


def experiment_theorem3_agreement(trials: int = 20, seed: int = 3) -> ExperimentReport:
    """E7: Theorem 3 solver agreement with the oracle on random instances."""
    report = ExperimentReport("E7", "Theorem 3 — weak terminal cycles solver")
    queries = [cycle_query_c(2), figure4_query(include_r0=False), figure4_query()]
    rng = random.Random(seed)
    report.set_columns("query", "band", "trials", "agreements")
    all_ok = True
    for query in queries:
        agreements = 0
        for _ in range(trials):
            db = synthetic_instance(
                query, seed=rng.randrange(10**9), domain_size=3, witnesses=2, noise_per_relation=2
            )
            if certain_terminal_cycles(db, query) == certain_brute_force(db, query):
                agreements += 1
        all_ok &= agreements == trials
        report.add_row(str(query)[:60], classify(query).band.name, trials, agreements)
    report.add_check("the Theorem 3 solver matches the oracle on every instance", all_ok)
    return report


def experiment_theorem4_agreement(trials: int = 20, seed: int = 9) -> ExperimentReport:
    """E8: Theorem 4 / Corollary 1 solver agreement for AC(k) and C(k)."""
    report = ExperimentReport("E8", "Theorem 4 — AC(k) and C(k) solver")
    rng = random.Random(seed)
    report.set_columns("query", "band", "trials", "agreements")
    all_ok = True
    for query in (cycle_query_ac(2), cycle_query_ac(3), cycle_query_c(3), cycle_query_c(4)):
        agreements = 0
        for _ in range(trials):
            db = uniform_random_instance(
                query, seed=rng.randrange(10**9), domain_size=3, facts_per_relation=5
            )
            if certain_cycle_query(db, query) == certain_brute_force(db, query):
                agreements += 1
        all_ok &= agreements == trials
        report.add_row(str(query)[:60], classify(query).band.name, trials, agreements)
    report.add_check("the Theorem 4 solver matches the oracle on every instance", all_ok)
    return report


def experiment_lemmas(corpus_size: int = 30, seed: int = 13) -> ExperimentReport:
    """E9: structural lemmas (2, 3, 4, 6, 7) checked over a random query corpus."""
    report = ExperimentReport("E9", "Lemmas 2–7 — structural properties of attack graphs")
    corpus = [q for q in mixed_corpus(corpus_size, seed=seed) if not q.has_self_join]
    checked = 0
    failures: Dict[str, int] = {}
    for query in corpus:
        try:
            graph = AttackGraph(query)
        except Exception:
            continue
        checked += 1
        for name, holds in lemma_report(graph):
            if not holds:
                failures[name] = failures.get(name, 0) + 1
    report.set_columns("quantity", "value")
    report.add_row("queries checked", checked)
    report.add_row("lemma violations", sum(failures.values()))
    for name, count in sorted(failures.items()):
        report.add_row(f"violations of {name}", count)
    report.add_check("no lemma is violated on any corpus query", not failures)
    report.add_check("the corpus is non-trivial (≥ 20 acyclic queries)", checked >= 20)
    return report


def experiment_probability_bridge(trials: int = 10, seed: int = 21) -> ExperimentReport:
    """E10: Section 7 — IsSafe, safe plans, Proposition 1, Theorem 6."""
    report = ExperimentReport("E10", "Section 7 — CERTAINTY versus PROBABILITY")
    from ..query.families import fuxman_miller_cfree_example
    from ..query.parser import parse_query

    safe_query = parse_query("Single(x | y)")
    unsafe_queries = [kolaitis_pema_q0(), fuxman_miller_cfree_example(), cycle_query_ac(2)]
    report.set_columns("query", "safe", "CERTAINTY band", "Theorem 6 consistent")
    comparisons = compare_frontiers([safe_query] + unsafe_queries + [figure2_q1()])
    for comparison in comparisons:
        report.add_row(
            str(comparison.query)[:50],
            comparison.safe,
            comparison.classification.band.name,
            comparison.consistent_with_theorem6,
        )
    report.add_check(
        "Theorem 6 (safe ⇒ FO-expressible) holds on every tested query",
        all(c.consistent_with_theorem6 for c in comparisons),
    )
    report.add_check("the single-atom query is safe", is_safe(safe_query))
    report.add_check("q0 is unsafe (PROBABILITY(q0) is #P-hard)", not is_safe(kolaitis_pema_q0()))

    rng = random.Random(seed)
    safe_plan_ok = True
    proposition_ok = True
    for _ in range(trials):
        db = uniform_random_instance(safe_query, seed=rng.randrange(10**9), domain_size=3, facts_per_relation=5)
        bid = BIDDatabase.uniform_repairs(db)
        if probability_safe_plan(bid, safe_query) != probability_by_worlds(bid, safe_query):
            safe_plan_ok = False
        for query in (safe_query, fuxman_miller_cfree_example()):
            db2 = uniform_random_instance(query, seed=rng.randrange(10**9), domain_size=3, facts_per_relation=4)
            if not proposition1_holds(BIDDatabase.uniform_repairs(db2), query):
                proposition_ok = False
    report.add_check("the safe plan matches world enumeration exactly (Theorem 5)", safe_plan_ok)
    report.add_check("Proposition 1 holds on uniform-repair BID databases", proposition_ok)
    return report


def experiment_frontier_census(corpus_size: int = 60, seed: int = 17) -> ExperimentReport:
    """E11: census of complexity bands over a mixed query corpus."""
    report = ExperimentReport("E11", "Section 8 — tractability-frontier census")
    corpus = mixed_corpus(corpus_size, seed=seed)
    classifications = classify_corpus(corpus)
    counts = band_counts(classifications)
    report.set_columns("band", "queries")
    for band, count in counts.items():
        if count:
            report.add_row(band.name, count)
    supported = [c for c in classifications if c.band.is_supported]
    dichotomy = all(
        c.band
        in (
            ComplexityBand.FO,
            ComplexityBand.PTIME_NOT_FO,
            ComplexityBand.PTIME_CYCLE_QUERY,
            ComplexityBand.OPEN_CONJECTURED_P,
            ComplexityBand.CONP_COMPLETE,
        )
        for c in supported
    )
    report.add_check("every supported query lands in one of the paper's bands", dichotomy)
    report.add_check(
        "the corpus exercises at least three distinct bands",
        sum(1 for count in counts.values() if count) >= 3,
    )
    return report


def experiment_counting(trials: int = 10, seed: int = 19) -> ExperimentReport:
    """E12: repair counting is consistent with CERTAINTY and uniform probability."""
    report = ExperimentReport("E12", "#CERTAINTY — repair counting consistency")
    from ..query.families import fuxman_miller_cfree_example

    query = fuxman_miller_cfree_example()
    rng = random.Random(seed)
    consistent = True
    probability_consistent = True
    for _ in range(trials):
        db = uniform_random_instance(query, seed=rng.randrange(10**9), domain_size=3, facts_per_relation=4)
        satisfying = count_satisfying_repairs(db, query)
        total = count_repairs(db)
        certain = certain_brute_force(db, query)
        if certain != (satisfying == total):
            consistent = False
        bid = BIDDatabase.uniform_repairs(db)
        if probability_by_worlds(bid, query) != repair_frequency(db, query):
            probability_consistent = False
    report.set_columns("quantity", "value")
    report.add_row("trials", trials)
    report.add_check("certainty ⇔ all repairs satisfy the query", consistent)
    report.add_check(
        "uniform-repair BID probability equals the satisfying-repair frequency",
        probability_consistent,
    )
    return report


ALL_EXPERIMENTS = {
    "E1": experiment_figure1,
    "E2": experiment_figure2,
    "E3": experiment_figure4,
    "E4": experiment_figure6,
    "E5": experiment_theorem1,
    "E6": experiment_theorem2,
    "E7": experiment_theorem3_agreement,
    "E8": experiment_theorem4_agreement,
    "E9": experiment_lemmas,
    "E10": experiment_probability_bridge,
    "E11": experiment_frontier_census,
    "E12": experiment_counting,
}


def run_all_experiments() -> List[ExperimentReport]:
    """Run every experiment and return the reports (used by EXPERIMENTS.md)."""
    return [factory() for factory in ALL_EXPERIMENTS.values()]
