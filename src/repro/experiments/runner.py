"""Experiment infrastructure: reports, checks, and plain-text rendering."""

from __future__ import annotations

import time
from typing import Any, Callable, List, Sequence, Tuple


class Check:
    """One paper claim checked against the implementation's output."""

    def __init__(self, claim: str, holds: bool, detail: str = "") -> None:
        self.claim = claim
        self.holds = holds
        self.detail = detail

    def __repr__(self) -> str:
        status = "PASS" if self.holds else "FAIL"
        return f"[{status}] {self.claim}" + (f" ({self.detail})" if self.detail else "")


class ExperimentReport:
    """The output of one experiment: tabular rows plus claim checks."""

    def __init__(self, experiment_id: str, title: str) -> None:
        self.experiment_id = experiment_id
        self.title = title
        self.columns: List[str] = []
        self.rows: List[Sequence[Any]] = []
        self.checks: List[Check] = []
        self.notes: List[str] = []

    def set_columns(self, *columns: str) -> None:
        self.columns = list(columns)

    def add_row(self, *values: Any) -> None:
        self.rows.append(tuple(values))

    def add_check(self, claim: str, holds: bool, detail: str = "") -> None:
        self.checks.append(Check(claim, holds, detail))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    @property
    def all_checks_pass(self) -> bool:
        return all(check.holds for check in self.checks)

    def render(self) -> str:
        """A plain-text rendering of the report (table + checks + notes)."""
        lines = [f"=== {self.experiment_id}: {self.title} ==="]
        if self.columns and self.rows:
            rendered_rows = [tuple(str(v) for v in row) for row in self.rows]
            widths = [
                max(len(self.columns[i]), *(len(r[i]) for r in rendered_rows))
                for i in range(len(self.columns))
            ]
            lines.append("  ".join(self.columns[i].ljust(widths[i]) for i in range(len(widths))))
            lines.append("  ".join("-" * w for w in widths))
            for row in rendered_rows:
                lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(widths))))
        for check in self.checks:
            lines.append(repr(check))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        status = "PASS" if self.all_checks_pass else "FAIL"
        return f"ExperimentReport({self.experiment_id}, checks={status})"


def timed(function: Callable[[], Any]) -> Tuple[Any, float]:
    """Run *function* and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = function()
    return result, time.perf_counter() - start
