"""The durability tier: segment snapshots, write-ahead changelog, epochs.

:class:`DurableStore` persists an observed
:class:`~repro.model.database.UncertainDatabase` across restarts and
crashes: checkpoints write checksummed segment files
(:mod:`~repro.durability.segments`), committed mutation batches append to
a framed changelog (:mod:`~repro.durability.changelog`), and recovery
replays snapshot + changelog tail to exactly the last committed state.
Intern-table epochs keep the id space dense under churn.
"""

from .changelog import (
    SYNC_POLICIES,
    ChangelogRecord,
    ChangelogWriter,
    read_changelog,
    truncate_changelog,
)
from .durable import DurabilityError, DurabilityStats, DurableStore
from .segments import SegmentCorruption, SegmentData, read_segment, write_segment

__all__ = [
    "ChangelogRecord",
    "ChangelogWriter",
    "DurabilityError",
    "DurabilityStats",
    "DurableStore",
    "SYNC_POLICIES",
    "SegmentCorruption",
    "SegmentData",
    "read_changelog",
    "read_segment",
    "truncate_changelog",
    "write_segment",
]
