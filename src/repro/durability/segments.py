"""Segment files: checksummed on-disk snapshots of a columnar store.

A *segment* is one immutable file holding the full committed state of a
:class:`~repro.store.columnar.ColumnarFactStore` plus the intern-table
values its ids decode through — the durable twin of the in-memory
:class:`~repro.store.columnar.ColumnarSnapshot` wire format.  Layout::

    [header]  magic  format  epoch  mutation_version  meta_len  body_crc
    [body]    meta blob  ·  per relation, per position: [u64 n][n × int64]

The header is a fixed :mod:`struct` record; ``body_crc`` is the CRC-32 of
the entire body, so any torn or bit-flipped write is detected at read time
(:class:`SegmentCorruption`).  The meta blob carries the relation
signatures (name, arity, key size, row count) and the intern-table values
**in id order** — position ``i`` is the value of id ``i`` — so a reader
rebuilds an id-aligned :class:`~repro.store.intern.InternTable` and adopts
the raw columns without re-encoding a single fact.  Column payloads are
length-prefixed native ``array('q')`` bytes: writing is one ``tobytes``
per column, reading one ``frombytes`` — a memcpy, not a parse.

Segments are written to a temporary name and atomically renamed into
place, so a crash mid-checkpoint never damages the previous segment.
Like :class:`~repro.store.columnar.ColumnarSnapshot`, only raw values and
ids are stored — never object hashes — so segments are safe across
``PYTHONHASHSEED`` boundaries.  Byte order is the writer's native one
(durability is a single-machine concern; cross-machine shipping goes
through the pickled snapshot wire format instead).
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from array import array
from pathlib import Path
from typing import Any, List, Sequence, Tuple

from ..faults import InjectedFault, fire as _fire_fault
from ..model.atoms import RelationSchema
from ..store.columnar import ColumnarFactStore

#: Segment header: magic, format version, epoch, mutation version,
#: pickled-meta length, CRC-32 of the whole body.
_HEADER = struct.Struct("<4sIQQQI")
_COUNT = struct.Struct("<Q")
_MAGIC = b"WJSG"
_FORMAT_VERSION = 1


class SegmentCorruption(Exception):
    """The segment file is truncated, torn, or fails its checksum."""


class SegmentData:
    """A decoded segment: epoch, version, values, and raw relation columns."""

    __slots__ = ("epoch", "mutation_version", "values", "relations")

    def __init__(
        self,
        epoch: int,
        mutation_version: int,
        values: Tuple[Any, ...],
        relations: List[Tuple[RelationSchema, Tuple[array, ...]]],
    ) -> None:
        self.epoch = epoch
        self.mutation_version = mutation_version
        self.values = values
        self.relations = relations

    def fact_count(self) -> int:
        return sum(
            len(columns[0]) if columns else 0 for _, columns in self.relations
        )

    def __repr__(self) -> str:
        return (
            f"SegmentData(epoch={self.epoch}, v{self.mutation_version}, "
            f"{self.fact_count()} facts, {len(self.values)} constants)"
        )


def write_segment(
    path: Path,
    store: ColumnarFactStore,
    values: Sequence[Any],
    epoch: int,
    mutation_version: int,
) -> int:
    """Write *store*'s contents as a segment file; returns bytes written.

    *values* must be the **full** intern-table value list in id order
    (:meth:`~repro.store.intern.InternTable.snapshot`), so every id in the
    columns decodes on read.  The file is written to ``<path>.tmp``,
    fsynced, and atomically renamed onto *path*.
    """
    meta_relations = []
    column_chunks: List[bytes] = []
    for name in store.relation_names():
        rel = store.relation_columns(name)
        schema = rel.schema
        n_rows = len(rel)
        meta_relations.append((name, schema.arity, schema.key_size, n_rows))
        for column in rel.columns:
            raw = column.tobytes()
            column_chunks.append(_COUNT.pack(len(column)))
            column_chunks.append(raw)
    meta_blob = pickle.dumps(
        (tuple(meta_relations), tuple(values)), protocol=pickle.HIGHEST_PROTOCOL
    )
    body = meta_blob + b"".join(column_chunks)
    header = _HEADER.pack(
        _MAGIC,
        _FORMAT_VERSION,
        epoch,
        mutation_version,
        len(meta_blob),
        zlib.crc32(body) & 0xFFFFFFFF,
    )
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(header)
        fh.write(body)
        fh.flush()
        if _fire_fault("segment.fsync") is not None:
            raise InjectedFault(f"injected segment fsync failure for {path.name}")
        os.fsync(fh.fileno())
    if _fire_fault("segment.rename") is not None:
        # The checkpoint-interruption window: the tmp file is fully
        # written but never renamed — exactly what a crash here leaves.
        # The orphan stays on disk on purpose; DurableStore sweeps it.
        raise InjectedFault(
            f"injected checkpoint interruption before renaming {tmp.name}"
        )
    os.replace(tmp, path)
    _fsync_directory(path.parent)
    return len(header) + len(body)


def read_segment(path: Path) -> SegmentData:
    """Decode a segment file, raising :class:`SegmentCorruption` on damage."""
    data = Path(path).read_bytes()
    if len(data) < _HEADER.size:
        raise SegmentCorruption(f"{path}: shorter than the segment header")
    magic, fmt, epoch, mutation_version, meta_len, body_crc = _HEADER.unpack_from(
        data
    )
    if magic != _MAGIC:
        raise SegmentCorruption(f"{path}: bad magic {magic!r}")
    if fmt != _FORMAT_VERSION:
        raise SegmentCorruption(f"{path}: unsupported format version {fmt}")
    body = data[_HEADER.size :]
    if len(body) < meta_len:
        raise SegmentCorruption(f"{path}: truncated before the meta blob ends")
    if zlib.crc32(body) & 0xFFFFFFFF != body_crc:
        raise SegmentCorruption(f"{path}: body checksum mismatch")
    try:
        meta_relations, values = pickle.loads(body[:meta_len])
    except Exception as exc:  # checksum passed but the blob will not parse
        raise SegmentCorruption(f"{path}: undecodable meta blob: {exc}") from exc
    offset = meta_len
    itemsize = array("q").itemsize
    relations: List[Tuple[RelationSchema, Tuple[array, ...]]] = []
    for name, arity, key_size, n_rows in meta_relations:
        columns = []
        for _ in range(arity):
            if offset + _COUNT.size > len(body):
                raise SegmentCorruption(f"{path}: truncated column prefix")
            (count,) = _COUNT.unpack_from(body, offset)
            offset += _COUNT.size
            if count != n_rows:
                raise SegmentCorruption(
                    f"{path}: column of {name!r} holds {count} rows, "
                    f"expected {n_rows}"
                )
            end = offset + count * itemsize
            if end > len(body):
                raise SegmentCorruption(f"{path}: truncated column payload")
            column = array("q")
            column.frombytes(body[offset:end])
            offset += count * itemsize
            columns.append(column)
        relations.append((RelationSchema(name, arity, key_size), tuple(columns)))
    return SegmentData(epoch, mutation_version, values, relations)


def _fsync_directory(directory: Path) -> None:
    """Best-effort fsync of a directory entry (no-op where unsupported)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
