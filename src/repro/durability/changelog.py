"""The write-ahead changelog: framed, checksummed commit records.

Every committed mutation batch of an observed database becomes exactly
one appended record — the durable twin of the net
:class:`~repro.model.database.ChangeSet`, already encoded as interned id
rows plus the intern-table value suffix the ids need to decode.  Frame
layout::

    [u32 payload length][u32 payload CRC-32][payload]

The payload is a pickled :class:`ChangelogRecord` tuple.  The reader
walks frames front to back and **stops at the first damaged one** — a
truncated length prefix, a payload cut short by a torn write, or a
checksum mismatch all mark the end of the committed history; everything
before the damage replays, everything after is discarded.  This is what
lets crash recovery land exactly on the last committed batch.

Durability policy is the writer's ``sync`` knob:

``"commit"`` (default)
    every append is flushed *and* fsynced — a record returned from
    :meth:`ChangelogWriter.append` survives an OS crash;
``"flush"``
    appends are flushed to the OS (they survive the *process* dying but
    not the machine losing power);
``"never"``
    appends ride the stdio buffer until :meth:`flush`/:meth:`close` —
    the fastest option, for workloads where the checkpoint cadence
    bounds acceptable loss.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from pathlib import Path
from typing import Any, List, Tuple

from ..faults import InjectedFault, fire as _fire_fault

_FRAME = struct.Struct("<II")

#: One committed batch: ``(mutation_version, intern_base, intern_values,
#: added, discarded)`` where ``added``/``discarded`` are tuples of
#: ``(relation_name, arity, key_size, rows)`` groups with ``rows`` a tuple
#: of id-tuples.  ``intern_values`` are the raw constant values assigned
#: ids ``intern_base, intern_base+1, ...`` since the previous record.
ChangelogRecord = Tuple[
    int,
    int,
    Tuple[Any, ...],
    Tuple[Tuple[str, int, int, Tuple[Tuple[int, ...], ...]], ...],
    Tuple[Tuple[str, int, int, Tuple[Tuple[int, ...], ...]], ...],
]

SYNC_POLICIES = ("commit", "flush", "never")


class ChangelogWriter:
    """Appends framed, checksummed records to one changelog file."""

    def __init__(self, path: Path, sync: str = "commit") -> None:
        if sync not in SYNC_POLICIES:
            raise ValueError(
                f"unknown sync policy {sync!r}: use one of {SYNC_POLICIES}"
            )
        self._path = Path(path)
        self._sync = sync
        self._fh = open(self._path, "ab")
        self._bytes_written = 0
        self._records_written = 0

    @property
    def path(self) -> Path:
        return self._path

    @property
    def sync(self) -> str:
        return self._sync

    @property
    def bytes_written(self) -> int:
        return self._bytes_written

    @property
    def records_written(self) -> int:
        return self._records_written

    def append(self, record: ChangelogRecord) -> int:
        """Append one commit record; returns the framed size in bytes.

        Raises ``OSError`` when the write or fsync fails — the record is
        then **not** committed (a prefix of it may be on disk; the caller
        must truncate back to the last valid byte before retrying, which
        is what :meth:`DurableStore._commit` does).
        """
        payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        frame = _FRAME.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
        blob = frame + payload
        fault = _fire_fault("wal.write")
        if fault is not None and fault.kind == "torn":
            # A torn write: only a prefix of the frame lands, exactly as a
            # crash mid-write would leave the file, then the append fails.
            self._fh.write(blob[: max(1, len(blob) // 2)])
            self._fh.flush()
            raise InjectedFault("injected torn changelog write")
        self._fh.write(blob)
        if self._sync != "never":
            self._fh.flush()
            if self._sync == "commit":
                if _fire_fault("wal.fsync") is not None:
                    raise InjectedFault("injected changelog fsync failure")
                os.fsync(self._fh.fileno())
        size = len(blob)
        self._bytes_written += size
        self._records_written += 1
        return size

    def flush(self) -> None:
        """Flush (and, under ``"commit"``, fsync) buffered appends."""
        self._fh.flush()
        if self._sync == "commit":
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self) -> "ChangelogWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_changelog(path: Path) -> Tuple[List[ChangelogRecord], int, bool]:
    """Read the committed prefix of a changelog file.

    Returns ``(records, valid_bytes, torn)``: the records up to the first
    damaged frame, the byte offset where the committed history ends, and
    whether trailing damage (a torn or corrupt tail) was found after it.
    A missing file reads as empty.  Re-opening the file for append must
    first truncate it to ``valid_bytes`` so new records never follow
    garbage — :meth:`DurableStore.attach` does exactly that.
    """
    path = Path(path)
    if not path.exists():
        return [], 0, False
    data = path.read_bytes()
    records: List[ChangelogRecord] = []
    offset = 0
    while offset + _FRAME.size <= len(data):
        length, crc = _FRAME.unpack_from(data, offset)
        end = offset + _FRAME.size + length
        if end > len(data):
            break  # torn write: the final record never fully landed
        payload = data[offset + _FRAME.size : end]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            break  # corrupted record: stop at the last good one
        try:
            record = pickle.loads(payload)
        except Exception:
            break  # checksum collision on garbage — treat as damage
        records.append(record)
        offset = end
    return records, offset, offset != len(data)


def truncate_changelog(path: Path, valid_bytes: int) -> None:
    """Drop a torn/corrupt tail so appends resume after the last commit."""
    path = Path(path)
    if not path.exists():
        return
    if path.stat().st_size > valid_bytes:
        with open(path, "rb+") as fh:
            fh.truncate(valid_bytes)
            fh.flush()
            os.fsync(fh.fileno())


__all__ = [
    "ChangelogRecord",
    "ChangelogWriter",
    "SYNC_POLICIES",
    "read_changelog",
    "truncate_changelog",
]
