"""DurableStore: the persistence tier under the columnar engine.

A :class:`DurableStore` makes an :class:`~repro.model.database.UncertainDatabase`
survive restarts with three cooperating mechanisms:

**Segment snapshots** (:mod:`repro.durability.segments`)
    :meth:`checkpoint` writes the mirror store's integer columns plus the
    intern-table values to one checksummed, atomically-renamed segment
    file.  :meth:`open` restores a
    :class:`~repro.store.columnar.ColumnarFactStore` and
    :class:`~repro.store.intern.InternTable` straight from the raw arrays
    — no per-fact re-interning.

**Write-ahead changelog** (:mod:`repro.durability.changelog`)
    Attached as a database observer, the store appends one framed,
    checksummed record per committed mutation batch: the net
    :class:`~repro.model.database.ChangeSet` as interned id rows, plus
    the intern-table *suffix* assigned since the previous record, keyed
    by the database's ``mutation_version`` (the natural log sequence
    number).  The ``sync`` knob picks the fsync-on-commit policy.

**Intern-table epochs**
    Ids are never reused, so churn grows the table without bound.  Every
    checkpoint consults the table's live-id fraction
    (:meth:`~repro.store.intern.InternTable.memory_stats`) and, below the
    ``rotate_live_fraction`` threshold, *rotates the epoch*: live ids are
    remapped into a fresh dense table, the mirror columns are rewritten,
    and the new epoch lands in the segment header — RSS stays bounded by
    the live data, not the churn history.

Recovery (:meth:`open`, or constructing over a non-empty directory) loads
the newest valid segment and replays the changelog tail, stopping at the
first torn or corrupt record, so a cold restart reaches exactly the last
committed pre-crash state.  :meth:`database` then decodes the mirror into
a fresh ``UncertainDatabase`` whose ``mutation_version`` continues the
pre-crash sequence.

The store keeps a **private** intern table and mirror store: rotation
never invalidates ids cached by sessions, compiled plans, or views, and
one database can stay attached while arbitrary engine state comes and
goes above it.  Like the database itself, the writer side assumes a
single mutating thread.  Register the durable store **before** sessions
and view managers (``attach`` does this for you when called first), so a
subscriber-triggered mutation can never reach the log ahead of the
mutation that caused it.
"""

from __future__ import annotations

from array import array
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..model.atoms import Fact, RelationSchema
from ..model.database import ChangeSet, DatabaseObserver, UncertainDatabase
from ..model.schema import DatabaseSchema
from ..store.columnar import ColumnarFactStore
from ..store.intern import InternTable
from .changelog import (
    ChangelogWriter,
    read_changelog,
    truncate_changelog,
)
from .segments import SegmentCorruption, read_segment, write_segment

#: Rotation floor: below this many interned ids, remapping cannot pay off.
DEFAULT_MIN_ROTATE_IDS = 64


class DurabilityError(RuntimeError):
    """A committed batch could not be made durable.

    Raised by the write path when a changelog append fails even after the
    WAL was re-opened.  The batch was **not acknowledged**: it is applied
    to the in-memory database and mirrored (so a later
    :meth:`DurableStore.checkpoint` can still persist it), but it is not
    in the log, and recovery before that checkpoint lands on the last
    acknowledged state.  Once raised, further commits keep raising until
    ``checkpoint()`` re-establishes a durable baseline.
    """


class DurabilityStats:
    """Counters describing one durable store's lifetime."""

    __slots__ = (
        "commits",
        "log_bytes_appended",
        "checkpoints",
        "rotations",
        "replayed_records",
        "skipped_segments",
        "torn_tail_bytes",
        "wal_reopens",
        "failed_commits",
        "failed_checkpoints",
        "tmp_files_swept",
    )

    def __init__(self) -> None:
        self.commits = 0
        self.log_bytes_appended = 0
        self.checkpoints = 0
        self.rotations = 0
        self.replayed_records = 0
        self.skipped_segments = 0
        self.torn_tail_bytes = 0
        self.wal_reopens = 0
        self.failed_commits = 0
        self.failed_checkpoints = 0
        self.tmp_files_swept = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"DurabilityStats({inner})"


class DurableStore(DatabaseObserver):
    """Segment snapshots + write-ahead changelog for one database.

    Parameters
    ----------
    directory:
        Where segments and changelogs live (created if missing).  A
        non-empty directory is **recovered on construction**: the newest
        valid segment is loaded and the changelog tail replayed, after
        which :attr:`store`, :attr:`table`, :attr:`mutation_version`, and
        :attr:`epoch` describe the last committed state.
    sync:
        Changelog durability policy — ``"commit"`` (fsync per batch,
        default), ``"flush"``, or ``"never"``; see
        :class:`~repro.durability.changelog.ChangelogWriter`.
    rotate_live_fraction:
        Live-id fraction below which :meth:`checkpoint` automatically
        rotates the intern-table epoch (default ``0.5``; ``0.0`` disables
        automatic rotation — explicit ``checkpoint(rotate=True)`` still
        rotates).
    min_rotate_ids:
        Table-size floor under which automatic rotation is skipped.
    """

    def __init__(
        self,
        directory,
        sync: str = "commit",
        rotate_live_fraction: float = 0.5,
        min_rotate_ids: int = DEFAULT_MIN_ROTATE_IDS,
    ) -> None:
        if not 0.0 <= rotate_live_fraction <= 1.0:
            raise ValueError("rotate_live_fraction must lie in [0, 1]")
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._sync = sync
        self._rotate_live_fraction = rotate_live_fraction
        self._min_rotate_ids = min_rotate_ids
        self._table = InternTable()
        self._store = ColumnarFactStore(table=self._table)
        self._epoch = 0
        self._version = 0
        self._watermark = 0  # intern ids already shipped to disk
        self._db: Optional[UncertainDatabase] = None
        self._log: Optional[ChangelogWriter] = None
        self._log_path: Optional[Path] = None
        self._log_valid_bytes = 0
        self._closed = False
        self._failed = False  # a commit could not be logged; checkpoint heals
        self.stats = DurabilityStats()
        self._recover()

    # -- construction ------------------------------------------------------------

    @classmethod
    def open(cls, directory, **kwargs) -> "DurableStore":
        """Recover the committed state persisted under *directory*.

        Alias of the constructor, named for the read side: the returned
        store's :attr:`store`/:attr:`table` hold the snapshot + replayed
        changelog tail, and :meth:`database` decodes them into a live
        ``UncertainDatabase``.  Call :meth:`attach` on that database to
        resume appending where the pre-crash process stopped.
        """
        return cls(directory, **kwargs)

    # -- views -------------------------------------------------------------------

    @property
    def directory(self) -> Path:
        return self._dir

    @property
    def store(self) -> ColumnarFactStore:
        """The private mirror store holding the committed facts as id rows."""
        return self._store

    @property
    def table(self) -> InternTable:
        """The private intern table of the current epoch."""
        return self._table

    @property
    def epoch(self) -> int:
        """The current intern-table epoch (bumped by each rotation)."""
        return self._epoch

    @property
    def mutation_version(self) -> int:
        """The log sequence number of the last committed batch."""
        return self._version

    @property
    def attached(self) -> bool:
        return self._db is not None

    @property
    def failed(self) -> bool:
        """``True`` while an unrecoverable append blocks further commits.

        Entered when a changelog append fails even after a WAL re-open;
        cleared by the next successful :meth:`checkpoint`.
        """
        return self._failed

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:
        state = "closed" if self._closed else ("attached" if self.attached else "idle")
        return (
            f"DurableStore({str(self._dir)!r}, epoch={self._epoch}, "
            f"v{self._version}, {len(self._store)} facts, {state})"
        )

    def facts(self) -> Tuple[Fact, ...]:
        """The committed facts, decoded from the mirror store."""
        return tuple(self._store.decode_facts())

    def database(self, schema: Optional[DatabaseSchema] = None) -> UncertainDatabase:
        """A fresh ``UncertainDatabase`` holding the committed state.

        The database's ``mutation_version`` is restored to the recovered
        log sequence number, so changelog records appended after a
        re-:meth:`attach` continue the pre-crash numbering.
        """
        return UncertainDatabase(
            self._store.decode_facts(),
            schema=schema,
            mutation_version=self._version,
        )

    # -- attaching ---------------------------------------------------------------

    def attach(self, db: UncertainDatabase) -> "DurableStore":
        """Observe *db*, appending every committed batch to the changelog.

        Two supported shapes: a database built from this store's own
        :meth:`database` (recovery — the mirror already matches, appends
        resume on the recovered log), or any other database (fresh start —
        the mirror is rebuilt from its facts and an initial checkpoint
        establishes the segment baseline).  Attach **before** creating
        sessions or view managers over *db*, so the changelog observer
        runs first in the notification order.
        """
        self._check_open()
        if self._db is not None:
            raise RuntimeError("this DurableStore is already attached")
        in_sync = (
            db.mutation_version == self._version
            and len(db) == len(self._store)
        )
        self._db = db
        db.register_observer(self)
        if in_sync:
            # Recovery path: resume appending to the existing changelog,
            # dropping any torn tail left by the crash first.
            if self._log_path is not None:
                truncate_changelog(self._log_path, self._log_valid_bytes)
                self._log = ChangelogWriter(self._log_path, sync=self._sync)
            else:
                self.checkpoint(rotate=False)
        else:
            # Fresh start: adopt the database's current contents as the
            # new baseline and checkpoint immediately so recovery always
            # has a segment to stand on.
            self._table = InternTable()
            self._store = ColumnarFactStore(table=self._table)
            for fact in db.facts:
                self._store.add_fact(fact)
            self._version = db.mutation_version
            self._watermark = len(self._table)
            self.checkpoint(rotate=False)
        return self

    def detach(self) -> None:
        """Stop observing the attached database (no-op when idle)."""
        if self._db is not None:
            self._db.unregister_observer(self)
            self._db = None

    def close(self) -> None:
        """Flush and close the changelog, detaching first (idempotent)."""
        if self._closed:
            return
        self.detach()
        if self._log is not None:
            self._log.close()
            self._log = None
        self._closed = True

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def simulate_crash(self) -> None:
        """Abandon the writer as a crash would: no final flush under
        ``sync="never"``, no checkpoint, no clean close.  The on-disk
        state is exactly what the chosen sync policy guaranteed so far —
        tests and benchmarks recover from it with :meth:`open`."""
        self.detach()
        if self._log is not None and self._sync == "never":
            # A real crash loses the user-space buffer; drop it by closing
            # the raw descriptor without flushing Python's buffer.
            import os

            try:
                os.close(self._log._fh.fileno())  # noqa: SLF001 - test hook
            except OSError:
                pass
            try:
                self._log._fh.close()
            except (OSError, ValueError):
                pass
        elif self._log is not None:
            self._log.close()
        self._log = None
        self._closed = True

    # -- observer protocol -------------------------------------------------------

    def fact_added(self, fact: Fact) -> None:
        self._commit(ChangeSet(added=(fact,)))

    def fact_discarded(self, fact: Fact) -> None:
        self._commit(ChangeSet(discarded=(fact,)))

    def batch_applied(self, changes: ChangeSet) -> None:
        self._commit(changes)

    def _commit(self, changes: ChangeSet) -> None:
        """Mirror one committed batch and append its changelog record.

        **Never acknowledges an uncommitted batch**: the record is counted
        as a commit only after the changelog append (including its fsync)
        succeeded.  On an append ``OSError`` the WAL is re-opened — the
        broken handle is closed, any torn partial frame is truncated back
        to the last valid byte, and the append retried on a fresh writer.
        If that retry also fails, :class:`DurabilityError` propagates to
        the mutating caller, the batch stays mirrored-but-unlogged, and
        the store refuses further commits until :meth:`checkpoint`
        re-establishes a durable baseline.
        """
        if not changes or self._closed:
            return
        version = self._db.mutation_version if self._db is not None else self._version + 1
        added = self._encode_group(changes.added, add=True)
        discarded = self._encode_group(changes.discarded, add=False)
        base = self._watermark
        values = self._table.values_since(base)
        self._watermark = base + len(values)
        if self._log is None:
            raise RuntimeError(
                "DurableStore received a mutation before attach() opened "
                "its changelog"
            )
        if self._failed:
            # The mirror keeps tracking the database (so a checkpoint can
            # persist everything), but nothing is acknowledged as durable.
            self._version = version
            self.stats.failed_commits += 1
            raise DurabilityError(
                "durable store is in a failed state after an unrecoverable "
                "changelog append; checkpoint() to restore durability"
            )
        record = (version, base, values, added, discarded)
        try:
            size = self._log.append(record)
        except OSError:
            try:
                size = self._retry_append(record)
            except DurabilityError:
                self._version = version
                self.stats.failed_commits += 1
                raise
        self._version = version
        self.stats.commits += 1
        self.stats.log_bytes_appended += size
        self._log_valid_bytes += size

    def _retry_append(self, record) -> int:
        """Re-open the WAL after a failed append and retry the record once.

        A failed append may have left a torn partial frame on disk;
        re-opening truncates back to ``_log_valid_bytes`` (the end of the
        last acknowledged record) first, so the retried record never lands
        after garbage.  A second failure marks the store failed and raises
        :class:`DurabilityError`.
        """
        self.stats.wal_reopens += 1
        if self._log is not None:
            try:
                self._log.close()
            except OSError:
                pass
        truncate_changelog(self._log_path, self._log_valid_bytes)
        self._log = ChangelogWriter(self._log_path, sync=self._sync)
        try:
            return self._log.append(record)
        except OSError as exc:
            self._failed = True
            raise DurabilityError(
                "changelog append failed twice (WAL re-open did not help); "
                "the batch is NOT durable"
            ) from exc

    def _encode_group(
        self, facts: Tuple[Fact, ...], add: bool
    ) -> Tuple[Tuple[str, int, int, Tuple[Tuple[int, ...], ...]], ...]:
        """Encode net added/discarded facts as per-relation id-row groups,
        applying them to the mirror store as a side effect."""
        grouped: Dict[RelationSchema, List[Tuple[int, ...]]] = {}
        for fact in facts:
            row = (
                self._store.add_fact(fact) if add else self._store.discard_fact(fact)
            )
            if row is None:
                # The mirror already agreed (e.g. duplicate replay); net
                # change sets make this unreachable in normal operation.
                continue
            grouped.setdefault(fact.relation, []).append(row)
        return tuple(
            (schema.name, schema.arity, schema.key_size, tuple(rows))
            for schema, rows in grouped.items()
        )

    # -- checkpointing and epoch rotation ----------------------------------------

    def should_rotate(self) -> bool:
        """Whether the automatic epoch-rotation policy fires right now."""
        if self._rotate_live_fraction <= 0.0:
            return False
        if len(self._table) < self._min_rotate_ids:
            return False
        return (
            self._table.memory_stats()["live_fraction"] < self._rotate_live_fraction
        )

    def checkpoint(self, rotate: Optional[bool] = None) -> Dict[str, object]:
        """Write a segment snapshot and start a fresh changelog.

        *rotate* forces (``True``) or suppresses (``False``) the epoch
        rotation; ``None`` applies the automatic live-fraction policy.
        Returns a summary dict (segment path, epoch, version, whether the
        epoch rotated, segment bytes).

        Failure-contained: the rotated table/store only replace the live
        ones **after** the segment write succeeded (a failed checkpoint
        never leaves the mirror in a new epoch whose segment does not
        exist), stale ``*.tmp`` files from the failed write are swept
        before the error propagates, and a successful checkpoint clears
        the failed-commit state (the new segment is a complete durable
        baseline, including any mirrored-but-unlogged batches).
        """
        self._check_open()
        rotated = False
        if rotate is None:
            rotate = self.should_rotate()
        new_table, new_store, new_epoch = self._table, self._store, self._epoch
        if rotate:
            new_table, new_store, new_epoch = self._rotated_state()
            rotated = True
        segment_path = self._segment_path(self._version, new_epoch)
        try:
            segment_bytes = write_segment(
                segment_path,
                new_store,
                new_table.snapshot(),
                new_epoch,
                self._version,
            )
        except Exception:
            self.stats.failed_checkpoints += 1
            self._sweep_tmp_files()
            raise
        if rotated:
            self._table, self._store, self._epoch = new_table, new_store, new_epoch
            self.stats.rotations += 1
        if self._log is not None:
            self._log.close()
        self._log_path = self._wal_path(self._version, self._epoch)
        # A stale log from an earlier checkpoint at this exact (version,
        # epoch) would replay twice; start clean.
        if self._log_path.exists():
            self._log_path.unlink()
        self._log = ChangelogWriter(self._log_path, sync=self._sync)
        self._log_valid_bytes = 0
        self._watermark = len(self._table)
        self._prune_older_than(segment_path, self._log_path)
        self._failed = False
        self.stats.checkpoints += 1
        return {
            "segment": str(segment_path),
            "epoch": self._epoch,
            "mutation_version": self._version,
            "rotated": rotated,
            "segment_bytes": segment_bytes,
            "facts": len(self._store),
            "constants": len(self._table),
        }

    def _rotated_state(self) -> Tuple[InternTable, ColumnarFactStore, int]:
        """Live ids remapped into a fresh dense table, columns rewritten.

        Deterministic: old ids map to new ids in old-id order, so two
        processes rotating the same state produce identical segments.
        Only the durable tier's private table rotates — ids cached by
        sessions or plans above the database are untouched.  Pure: the
        live table/store are not replaced here — :meth:`checkpoint`
        adopts the rotated state only once its segment is safely on disk.
        """
        old_table, old_store = self._table, self._store
        new_table = InternTable()
        remap: Dict[int, int] = {}
        for old_id in sorted(old_store.term_ids()):
            remap[old_id] = new_table.intern(old_table.constant(old_id))
        relations = []
        for name in old_store.relation_names():
            rel = old_store.relation_columns(name)
            new_columns = tuple(
                array("q", (remap[term_id] for term_id in column))
                for column in rel.columns
            )
            relations.append((rel.schema, new_columns))
        new_store = ColumnarFactStore.from_columns(relations, table=new_table)
        return new_table, new_store, self._epoch + 1

    # -- recovery ----------------------------------------------------------------

    def _recover(self) -> None:
        """Load the newest valid segment, then replay its changelog tail."""
        # A crash between a checkpoint's tmp write and its atomic rename
        # leaves an orphaned *.tmp; it was never part of the committed
        # state, so sweep it before recovery even looks at segments.
        self._sweep_tmp_files()
        segment_path = None
        for candidate in sorted(self._dir.glob("segment-*.seg"), reverse=True):
            try:
                segment = read_segment(candidate)
            except (SegmentCorruption, OSError):
                self.stats.skipped_segments += 1
                continue
            segment_path = candidate
            break
        if segment_path is None:
            return  # empty (or unrecoverable) directory: genesis state
        self._table = InternTable.from_snapshot(segment.values)
        self._store = ColumnarFactStore.from_columns(segment.relations, self._table)
        self._epoch = segment.epoch
        self._version = segment.mutation_version
        self._log_path = self._wal_path(segment.mutation_version, segment.epoch)
        records, valid_bytes, torn = read_changelog(self._log_path)
        if torn:
            self.stats.torn_tail_bytes = (
                self._log_path.stat().st_size - valid_bytes
            )
        self._log_valid_bytes = valid_bytes
        for record in records:
            version, base, values, added, discarded = record
            try:
                self._table.extend_values(base, values)
            except ValueError:
                # An intern-suffix skew means the record cannot decode;
                # everything before it is still committed state.
                break
            for name, arity, key_size, rows in added:
                schema = RelationSchema(name, arity, key_size)
                for row in rows:
                    self._store.add_row(schema, tuple(row))
            for name, _arity, _key_size, rows in discarded:
                for row in rows:
                    self._store.discard_row(name, tuple(row))
            self._version = version
            self.stats.replayed_records += 1
        self._watermark = len(self._table)

    # -- paths and pruning -------------------------------------------------------

    def _segment_path(self, version: int, epoch: int) -> Path:
        return self._dir / f"segment-{version:012d}.{epoch:06d}.seg"

    def _wal_path(self, version: int, epoch: int) -> Path:
        return self._dir / f"wal-{version:012d}.{epoch:06d}.log"

    def _sweep_tmp_files(self) -> int:
        """Delete orphaned ``*.tmp`` files (interrupted checkpoint writes)."""
        swept = 0
        for candidate in self._dir.glob("*.tmp"):
            try:
                candidate.unlink()
                swept += 1
            except OSError:
                pass
        self.stats.tmp_files_swept += swept
        return swept

    def _prune_older_than(self, segment_path: Path, log_path: Path) -> None:
        """Delete superseded segments and changelogs (the new pair stays)."""
        keep = {segment_path.name, log_path.name}
        for pattern in ("segment-*.seg", "wal-*.log", "segment-*.seg.tmp"):
            for candidate in self._dir.glob(pattern):
                if candidate.name not in keep:
                    try:
                        candidate.unlink()
                    except OSError:
                        pass

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("this DurableStore is closed")
