"""Bounded-staleness maintenance: deferred view refresh with read-time sync.

Eager view maintenance (the :class:`~repro.incremental.manager.ViewManager`
default) re-decides dirty candidates synchronously inside every mutation
notification, so a write-heavy tenant pays maintenance latency on the write
path even when nobody reads the view between writes.  *Deferred* mode flips
the cost to the read path: mutations merge into one pending net
:class:`~repro.model.database.ChangeSet` (the same changelog object the
``db.batch()`` protocol produces, so a fact added and later discarded while
deferred cancels out entirely), and views refresh lazily —

* a **read** (``view.answers`` / ``view.is_certain``) first syncs when the
  pending net mutation count exceeds ``max_stale_mutations`` or the oldest
  deferred mutation is older than ``refresh_deadline`` seconds;
* an explicit :meth:`~repro.incremental.manager.ViewManager.flush` always
  syncs.

The staleness *bound* this buys (asserted by the randomized test harness):
a read served without flushing saw an answer set at most
``max_stale_mutations`` net mutations and ``refresh_deadline`` seconds
behind the live database, and any read immediately after a flush (or past
the deadline) is identical to a cold ``certain_answers`` recompute —
deferral delays maintenance, it never changes what maintenance computes,
because the session's fact index stays eagerly maintained and every
deferred refresh runs against the *current* database.
"""

from __future__ import annotations

from typing import Optional


class StalenessPolicy:
    """How stale a deferred view read may be before it forces a refresh.

    Parameters
    ----------
    max_stale_mutations:
        The largest *net* pending mutation count a read may be served over
        without refreshing.  The default ``0`` defers maintenance between
        reads but keeps every read fresh — writes stop paying synchronous
        maintenance, reads never observe staleness.
    refresh_deadline:
        Seconds after the oldest deferred mutation beyond which any read
        refreshes first, regardless of the mutation budget.  ``None``
        (default) disables the deadline.
    """

    __slots__ = ("max_stale_mutations", "refresh_deadline")

    def __init__(
        self,
        max_stale_mutations: int = 0,
        refresh_deadline: Optional[float] = None,
    ) -> None:
        if max_stale_mutations < 0:
            raise ValueError("max_stale_mutations must be non-negative")
        if refresh_deadline is not None and refresh_deadline < 0:
            raise ValueError("refresh_deadline must be non-negative")
        self.max_stale_mutations = max_stale_mutations
        self.refresh_deadline = refresh_deadline

    def __repr__(self) -> str:
        return (
            f"StalenessPolicy(max_stale_mutations={self.max_stale_mutations}, "
            f"refresh_deadline={self.refresh_deadline})"
        )


class StalenessStats:
    """Counters describing deferred maintenance (see :class:`StalenessPolicy`).

    ``deferred_batches`` / ``deferred_mutations``
        mutation notifications absorbed into the pending changelog, and the
        total facts they carried (pre-merge, so cancellations still count);
    ``flushes``
        deferred changelogs delivered to the views, split by trigger into
        ``flushes_on_read_budget`` (a read found the pending count past
        ``max_stale_mutations``), ``flushes_on_read_deadline`` (a read
        found the changelog older than ``refresh_deadline``), and
        ``flushes_explicit`` (:meth:`ViewManager.flush` calls that found
        pending work);
    ``stale_reads``
        reads served from the materialized answers while mutations were
        pending (each one was within the policy's bounds);
    ``max_pending_mutations``
        high-water mark of the pending net mutation count.
    """

    __slots__ = (
        "deferred_batches",
        "deferred_mutations",
        "flushes",
        "flushes_on_read_budget",
        "flushes_on_read_deadline",
        "flushes_explicit",
        "stale_reads",
        "max_pending_mutations",
    )

    def __init__(self) -> None:
        self.deferred_batches = 0
        self.deferred_mutations = 0
        self.flushes = 0
        self.flushes_on_read_budget = 0
        self.flushes_on_read_deadline = 0
        self.flushes_explicit = 0
        self.stale_reads = 0
        self.max_pending_mutations = 0

    def as_dict(self) -> dict:
        """A plain-dict rendering (for service stats aggregation)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        return (
            f"StalenessStats(deferred={self.deferred_batches}, "
            f"flushes={self.flushes}, stale_reads={self.stale_reads}, "
            f"max_pending={self.max_pending_mutations})"
        )
