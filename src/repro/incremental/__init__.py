"""Incremental certainty views: materialized certain answers under mutation.

The engine's batched ``certain_answers`` recomputes from scratch per call.
This subsystem turns that one-shot answer into a **materialized view** that
stays continuously correct while the underlying
:class:`~repro.model.database.UncertainDatabase` mutates — the scaling step
from "fast queries" to "sustained mutation-heavy traffic".

The key observation (conf_pods_Wijsen13): for an FO-band query, certainty
of each candidate answer is decided by evaluating a fixed first-order
rewriting, and the compiled set-at-a-time plan of that rewriting touches
only specific *blocks* of the database.  Recording those touches as a
:class:`~repro.fo.compile.ReadSet` per candidate and inverting them into a
:class:`~repro.incremental.support.SupportIndex` makes maintenance precise:
a block-local mutation re-decides exactly the candidates whose verdict
actually read the changed blocks, while inserted facts surface brand-new
candidates through a seeded delta-join.  Everything else — non-FO bands,
self-join plans, oversized dirty fractions — falls back to a full refresh,
so the maintained answer set is *always* identical to a cold recompute
(differentially tested).

Public surface:

* :class:`ViewManager` — database observer driving all registered views;
  understands the ``db.batch()`` changelog API and coalesced
  ``bulk_add``/``bulk_discard`` notifications;
* :class:`MaterializedCertainView` — the per-query answer set, support
  index, stats, and ``subscribe(on_insert, on_retract)`` delta feed;
* :class:`SupportIndex` / :func:`delta_candidates` — the maintenance
  machinery, exposed for inspection and testing;
* :class:`StalenessPolicy` / :class:`StalenessStats` — bounded-staleness
  (deferred) maintenance: mutations merge into a pending changelog and
  views refresh lazily on read or flush, within a configured staleness
  bound (see :mod:`repro.incremental.staleness`).

>>> from repro import ViewManager                       # doctest: +SKIP
>>> with ViewManager(db) as manager:
...     view = manager.register(open_query)
...     view.subscribe(on_insert=lambda t: print("+", t))
...     db.add(new_fact)          # view refreshed, delta emitted
...     view.answers              # always == certain_answers(db, open_query)
"""

from .delta import delta_candidates
from .manager import ViewManager
from .staleness import StalenessPolicy, StalenessStats
from .support import SupportIndex
from .view import MaterializedCertainView, Subscription, ViewStats

__all__ = [
    "MaterializedCertainView",
    "StalenessPolicy",
    "StalenessStats",
    "Subscription",
    "SupportIndex",
    "ViewManager",
    "ViewStats",
    "delta_candidates",
]
