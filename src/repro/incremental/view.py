"""Materialized certain-answer views, maintained incrementally.

A :class:`MaterializedCertainView` owns the current certain-answer set of
one registered query and keeps it continuously equal to what a cold
``certain_answers`` call would return, as the underlying database mutates.

Maintenance strategy per mutation batch (a
:class:`~repro.model.database.ChangeSet`):

1. **relation prefilter** — batches touching none of the query's relations
   are skipped outright (certainty of ``q`` is a function of the database
   restricted to ``q``'s relations; blocks of other relations repair
   independently and cannot change any verdict);
2. **support-driven dirtying** — the
   :class:`~repro.incremental.support.SupportIndex` maps the touched blocks
   to exactly the candidates whose decision depends on them; every other
   candidate's decision would replay identically and is skipped.  FO-band
   decisions record their probes through the instrumented compiled
   rewriting; every other band (Theorem 3/4, peeling fallback, brute
   force) records the static per-atom support of the grounded query —
   blocks, key masks, relations — so *all* bands maintain fine-grained;
3. **delta candidate discovery** — inserted facts can create brand-new
   candidate answers; a seeded delta-join
   (:func:`~repro.incremental.delta.delta_candidates`) finds them without
   re-running the full enumeration;
4. **re-decision** — the dirty candidates are re-decided through the shared
   ``decide_candidates`` loop (optionally fanned out over the parallel
   session for large dirty sets), refreshing their support entries;
5. **fallbacks** — views over self-join (per-grounding) plans, or batches
   dirtying more than ``full_refresh_threshold`` of the tracked
   candidates, fall back to a full refresh (cold re-enumeration +
   re-decision), which is always correct; :class:`ViewStats` counts each
   full refresh by cause.

Answer-level deltas are pushed to subscribers: ``on_retract`` callbacks
fire before ``on_insert`` callbacks, each in deterministic sorted order.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ..fo.compile import ReadSet
from ..model.database import ChangeSet
from ..query.conjunctive import ConjunctiveQuery
from ..query.evaluation import find_valuation
from ..query.substitution import ground_free_variables
from .delta import delta_candidates
from .support import Candidate, SupportIndex

#: Deterministic candidate ordering (same key the sessions sort by).
def _sort_key(candidate: Candidate) -> Tuple[str, ...]:
    return tuple(str(c) for c in candidate)


class ViewStats:
    """Counters describing how a view has been maintained.

    ``refreshes``
        mutation batches delivered to the view;
    ``skipped_refreshes``
        batches discarded by the relation prefilter (no decision run);
    ``incremental_refreshes`` / ``full_refreshes``
        how the remaining batches were served;
    ``full_refreshes_band_opaque`` / ``full_refreshes_per_grounding`` /
    ``full_refreshes_oversized``
        why mutation-driven full refreshes happened: the view is coarse for
        an unknown (band-opaque) reason, the view is coarse because its
        plan re-classifies per grounding (self-joins), or the dirty set
        exceeded ``full_refresh_threshold``.  The initial materialization
        and explicit :meth:`MaterializedCertainView.refresh` calls count in
        ``full_refreshes`` only.  PTIME-band views on the id kernels should
        show zero band-opaque refreshes — asserted by the test suite;
    ``decisions``
        total per-candidate certainty decisions run on behalf of the view;
    ``last_dirty`` / ``last_decided``
        dirty-set size and decisions of the most recent non-skipped batch;
    ``inserts_emitted`` / ``retracts_emitted``
        answer-level delta callbacks fired;
    ``gc_removed``
        tracked candidates garbage-collected between full refreshes
        because their supporting facts vanished (see
        :meth:`MaterializedCertainView._collect_vanished`).
    """

    __slots__ = (
        "refreshes",
        "skipped_refreshes",
        "incremental_refreshes",
        "full_refreshes",
        "full_refreshes_band_opaque",
        "full_refreshes_per_grounding",
        "full_refreshes_oversized",
        "decisions",
        "last_dirty",
        "last_decided",
        "inserts_emitted",
        "retracts_emitted",
        "gc_removed",
    )

    def __init__(self) -> None:
        self.refreshes = 0
        self.skipped_refreshes = 0
        self.incremental_refreshes = 0
        self.full_refreshes = 0
        self.full_refreshes_band_opaque = 0
        self.full_refreshes_per_grounding = 0
        self.full_refreshes_oversized = 0
        self.decisions = 0
        self.last_dirty = 0
        self.last_decided = 0
        self.inserts_emitted = 0
        self.retracts_emitted = 0
        self.gc_removed = 0

    def __repr__(self) -> str:
        return (
            f"ViewStats(refreshes={self.refreshes}, skipped={self.skipped_refreshes}, "
            f"incremental={self.incremental_refreshes}, full={self.full_refreshes}, "
            f"decisions={self.decisions})"
        )


class Subscription:
    """A registered pair of answer-delta callbacks (see :meth:`MaterializedCertainView.subscribe`)."""

    __slots__ = ("_view", "on_insert", "on_retract", "active")

    def __init__(
        self,
        view: "MaterializedCertainView",
        on_insert: Optional[Callable[[Candidate], None]],
        on_retract: Optional[Callable[[Candidate], None]],
    ) -> None:
        self._view = view
        self.on_insert = on_insert
        self.on_retract = on_retract
        self.active = True

    def unsubscribe(self) -> None:
        """Stop receiving deltas (idempotent)."""
        self.active = False
        self._view._drop_subscription(self)


class MaterializedCertainView:
    """The continuously maintained certain answers of one query.

    Created through :meth:`repro.incremental.ViewManager.register` — the
    manager feeds it consolidated change sets; user code reads
    :attr:`answers`, subscribes to deltas, and inspects :attr:`stats` /
    :attr:`support`.

    Invariant (differentially tested): after every delivered batch,
    ``view.answers`` equals a cold ``certain_answers(query)`` against the
    current database (``{()} if certain else set()`` for Boolean queries).

    Memory note: verdicts of candidates that later leave the enumerable
    candidate set are retained (they stay correct — a vanished candidate is
    never certain) and are pruned on the next full refresh.
    """

    def __init__(
        self,
        manager,  # ViewManager; untyped to avoid a circular import
        query: ConjunctiveQuery,
        allow_exponential: Optional[bool] = None,
        full_refresh_threshold: float = 0.5,
    ) -> None:
        self._manager = manager
        self._query = query
        self._boolean = query.is_boolean
        self._allow_exponential = allow_exponential
        self._full_refresh_threshold = full_refresh_threshold
        self._relations = frozenset(atom.relation.name for atom in query.atoms)
        plan = manager.session.plan_for(query)
        # Every band records support now — FO through the instrumented
        # rewriting (or the peeling fallback's static per-atom support),
        # PTIME/coNP through the static per-atom support of the grounded
        # query — so only per-grounding (self-join) plans stay coarse: their
        # groundings can collapse atoms, changing what the support covers.
        self._fine_grained = not plan.per_grounding
        self._coarse_cause = "per-grounding" if plan.per_grounding else None
        # Columnar sessions capture read sets as dense block ids; give the
        # support index the store's resolver so touched blocks translate.
        store = getattr(manager.session, "store", None)
        self._support = SupportIndex(
            block_id_resolver=store.known_block_id if store is not None else None,
            block_key_decoder=store.decode_block_key if store is not None else None,
        )
        self._verdicts: Dict[Candidate, bool] = {}
        self._answers: Set[Candidate] = set()
        self._subscriptions: List[Subscription] = []
        self.stats = ViewStats()
        self._full_refresh()

    # -- read surface ------------------------------------------------------------

    @property
    def query(self) -> ConjunctiveQuery:
        """The registered query."""
        return self._query

    @property
    def answers(self) -> frozenset:
        """The current certain answers (``{()}``/``set()`` for Boolean queries).

        Under the manager's bounded-staleness (deferred) mode this is the
        read-path sync point: pending mutations past the policy's budget or
        deadline are flushed first, so the returned set is never staler
        than the configured bound.  Eager mode returns directly.
        """
        self._manager._sync_for_read()
        return frozenset(self._answers)

    @property
    def is_certain(self) -> bool:
        """Boolean-query convenience: is the query certain right now?"""
        self._manager._sync_for_read()
        return bool(self._answers)

    @property
    def fine_grained(self) -> bool:
        """``True`` when mutations dirty candidates through the support index.

        Every complexity band is fine-grained on both backends — FO-band
        decisions capture probe-level read sets, the Theorem 3/4 solvers,
        the peeling fallback and brute force capture static per-atom
        support.  Only per-grounding self-join plans are coarse (every
        relevant mutation triggers a full refresh).
        """
        return self._fine_grained

    @property
    def support(self) -> SupportIndex:
        """The support index mapping blocks/relations to dependent candidates."""
        return self._support

    @property
    def tracked_candidates(self) -> frozenset:
        """Every candidate with a remembered verdict (answers ∪ rejected)."""
        return frozenset(self._verdicts)

    def __repr__(self) -> str:
        mode = "fine-grained" if self._fine_grained else "coarse"
        return (
            f"MaterializedCertainView({self._query}, {len(self._answers)} answers, {mode})"
        )

    # -- subscriptions -----------------------------------------------------------

    def subscribe(
        self,
        on_insert: Optional[Callable[[Candidate], None]] = None,
        on_retract: Optional[Callable[[Candidate], None]] = None,
    ) -> Subscription:
        """Receive answer-level deltas after every maintenance step.

        ``on_retract(candidate)`` fires for answers leaving the view,
        ``on_insert(candidate)`` for answers entering it — retractions
        first, each batch in sorted candidate order.  Callbacks must not
        mutate the database directly; mutations they enqueue are processed
        after the current delivery finishes (the manager serialises them).
        Returns a :class:`Subscription` handle with ``unsubscribe()``.
        """
        subscription = Subscription(self, on_insert, on_retract)
        self._subscriptions.append(subscription)
        return subscription

    def _drop_subscription(self, subscription: Subscription) -> None:
        try:
            self._subscriptions.remove(subscription)
        except ValueError:
            pass

    def _emit(self, inserted: Set[Candidate], retracted: Set[Candidate]) -> None:
        if not self._subscriptions or not (inserted or retracted):
            return
        retracts = sorted(retracted, key=_sort_key)
        inserts = sorted(inserted, key=_sort_key)
        for subscription in list(self._subscriptions):
            if not subscription.active:
                continue
            if subscription.on_retract is not None:
                for candidate in retracts:
                    subscription.on_retract(candidate)
            if subscription.on_insert is not None:
                for candidate in inserts:
                    subscription.on_insert(candidate)
        self.stats.retracts_emitted += len(retracts)
        self.stats.inserts_emitted += len(inserts)

    # -- maintenance -------------------------------------------------------------

    def refresh(self) -> None:
        """Force a full refresh (cold re-enumeration and re-decision)."""
        self._full_refresh()

    def apply(self, changes: Optional[ChangeSet]) -> None:
        """Bring the view up to date after *changes* (``None`` = unknown delta)."""
        self.stats.refreshes += 1
        if changes is not None and not self._affected_by(changes):
            self.stats.skipped_refreshes += 1
            return
        if changes is None:
            self._full_refresh()
            return
        if not self._fine_grained:
            if self._coarse_cause == "per-grounding":
                self.stats.full_refreshes_per_grounding += 1
            else:
                self.stats.full_refreshes_band_opaque += 1
            self._full_refresh()
            return
        self._incremental_refresh(changes)

    def _affected_by(self, changes: ChangeSet) -> bool:
        """Can *changes* possibly alter any verdict or the candidate set?

        Certainty of ``q`` depends only on the restriction of the database
        to ``q``'s relations, so batches elsewhere are no-ops — unless some
        tracked decision read the active domain (global support), which
        spans every relation.
        """
        if self._fine_grained and self._support.has_global:
            return True
        return any(name in self._relations for name in changes.touched_relations())

    def _decide(
        self,
        candidates: List[Candidate],
        support: Optional[Dict[Candidate, ReadSet]],
    ) -> List[Candidate]:
        certain = self._manager._decide(
            self._query,
            candidates,
            support=support,
            allow_exponential=self._allow_exponential,
            support_index=self._support,
        )
        self.stats.decisions += len(candidates)
        self.stats.last_decided = len(candidates)
        return certain

    def _full_refresh(self) -> None:
        session = self._manager.session
        if self._boolean:
            candidates: List[Candidate] = [()]
        else:
            # Columnar sessions enumerate through the compiled candidate
            # plan, the object backend through the reference backtracking
            # join; both return the shared deterministic sorted order.
            candidates = session.candidate_answers(self._query)
        support_out: Optional[Dict[Candidate, ReadSet]] = (
            {} if self._fine_grained else None
        )
        certain = set(self._decide(candidates, support_out))
        self._support.clear()
        if support_out is not None:
            for candidate, read_set in support_out.items():
                self._support.set(candidate, read_set)
        self._verdicts = {c: (c in certain) for c in candidates}
        inserted = certain - self._answers
        retracted = self._answers - certain
        self._answers = certain
        self.stats.full_refreshes += 1
        self.stats.last_dirty = len(candidates)
        self._emit(inserted, retracted)

    def _incremental_refresh(self, changes: ChangeSet) -> None:
        dirty = self._support.dirty_for(changes)
        if changes.added and not self._boolean:
            # Insertions can create candidates the view has never decided.
            for candidate in delta_candidates(
                self._query, self._manager.session.index, changes.added
            ):
                if candidate not in self._verdicts:
                    dirty.add(candidate)
        # Count (not materialise) the union: dirty is small, verdicts can
        # be huge, and this runs on every mutation batch.
        total = len(self._verdicts) + sum(1 for c in dirty if c not in self._verdicts)
        if total and len(dirty) > self._full_refresh_threshold * total:
            # Most of the view is dirty: a cold refresh costs the same and
            # also prunes stale candidates.
            self.stats.full_refreshes_oversized += 1
            self._full_refresh()
            return
        self.stats.last_dirty = len(dirty)
        if not dirty:
            self.stats.last_decided = 0
            self.stats.incremental_refreshes += 1
            return
        candidates = sorted(dirty, key=_sort_key)
        support_out: Dict[Candidate, ReadSet] = {}
        certain = set(self._decide(candidates, support_out))
        inserted: Set[Candidate] = set()
        retracted: Set[Candidate] = set()
        for candidate in candidates:
            verdict = candidate in certain
            self._verdicts[candidate] = verdict
            self._support.set(candidate, support_out[candidate])
            if verdict and candidate not in self._answers:
                self._answers.add(candidate)
                inserted.add(candidate)
            elif not verdict and candidate in self._answers:
                self._answers.discard(candidate)
                retracted.add(candidate)
        if changes.discarded:
            self._collect_vanished(candidates, certain)
        self.stats.incremental_refreshes += 1
        self._emit(inserted, retracted)

    def _collect_vanished(
        self, candidates: List[Candidate], certain: Set[Candidate]
    ) -> None:
        """Candidate-set GC: drop re-decided candidates that left the
        enumerable candidate set.

        A candidate whose supporting facts were all discarded can never be
        an answer again until some insertion re-creates it (insertions are
        delta-discovered), so keeping its verdict and support entries only
        grows memory between full refreshes.  A candidate is enumerable iff
        its grounding is satisfiable over the current database — one cheap
        block-probe-backed satisfiability check each, run only for dirty
        candidates that just re-decided to *not certain* after a discard.
        """
        if self._boolean:
            return
        index = self._manager.session.index
        for candidate in candidates:
            if candidate in certain:
                continue
            grounded = ground_free_variables(
                self._query, [c.value for c in candidate]
            )
            if find_valuation(grounded, index) is None:
                del self._verdicts[candidate]
                self._support.remove(candidate)
                self.stats.gc_removed += 1
