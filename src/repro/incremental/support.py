"""The support index: which candidates does a mutated block dirty?

A :class:`~repro.incremental.view.MaterializedCertainView` decides each
candidate answer once and remembers the :class:`~repro.fo.compile.ReadSet`
of the decision — every block the compiled certain rewriting probed, every
relation it scanned, and whether it consulted the active domain.  The
:class:`SupportIndex` inverts those read sets: given the
:class:`~repro.model.database.ChangeSet` of a mutation batch, it returns
exactly the candidates whose verdict may have changed.

Soundness rests on the determinism argument documented on ``ReadSet``: a
decision whose read set is disjoint from the touched blocks/relations
re-executes identically, so its verdict is unchanged and need not be
re-decided.  Candidates with *global* read sets (domain reads, opaque
fallbacks) are dirtied by every mutation.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Set, Tuple, Union

from ..fo.compile import KeyMask, ReadSet
from ..model.database import BlockKey, ChangeSet
from ..model.symbols import Constant

#: A candidate answer: one constant per free variable (``()`` for Boolean).
Candidate = Tuple[Constant, ...]

#: Entries of the inverted block map: object-space ``(name, key)`` block
#: keys from the reference backend, or dense ``int`` block ids from the
#: columnar backend (the two spaces never collide as dict keys).
SupportKey = Union[BlockKey, int]

#: Maps ``(relation name, key constants)`` to the columnar block id that a
#: read set would have recorded for the block, or ``None`` when no stored
#: fact and no recorded probe ever touched it (so nothing can depend on it).
BlockIdResolver = Callable[[str, Tuple[Constant, ...]], Optional[int]]

#: Maps a columnar block id back to its object-space ``(name, key)`` block
#: key (:meth:`~repro.store.columnar.ColumnarFactStore.decode_block_key`);
#: lets :meth:`SupportIndex.route` reason about id-space read sets.
BlockKeyDecoder = Callable[[int], BlockKey]

_EMPTY: Set[Candidate] = set()


class SupportIndex:
    """Inverted dependency index from blocks/relations to candidate answers.

    Maintains, for every tracked candidate, the read set of its most recent
    decision, plus the inverted maps used by :meth:`dirty_for`.  The two
    directions are kept consistent by construction; :meth:`check_invariants`
    verifies this exhaustively (used by the test suite).

    Read sets captured on the columnar backend carry dense integer block
    ids instead of ``(name, key)`` tuples; a *block_id_resolver* (typically
    :meth:`~repro.store.columnar.ColumnarFactStore.known_block_id` of the
    deciding session's store) translates the touched blocks of a mutation
    batch into that id space so :meth:`dirty_for` covers both.
    """

    def __init__(
        self,
        block_id_resolver: Optional[BlockIdResolver] = None,
        block_key_decoder: Optional[BlockKeyDecoder] = None,
    ) -> None:
        self._reads: Dict[Candidate, ReadSet] = {}
        self._by_block: Dict[SupportKey, Set[Candidate]] = {}
        self._by_relation: Dict[str, Set[Candidate]] = {}
        #: relation name -> key mask -> candidates whose (static) support
        #: includes the mask; matched per touched fact in :meth:`dirty_for`.
        self._by_key_mask: Dict[str, Dict[KeyMask, Set[Candidate]]] = {}
        self._global: Set[Candidate] = set()
        self._block_id_resolver = block_id_resolver
        self._block_key_decoder = block_key_decoder

    # -- maintenance -------------------------------------------------------------

    def set(self, candidate: Candidate, read_set: ReadSet) -> None:
        """Record (or replace) the read set supporting *candidate*."""
        self.remove(candidate)
        self._reads[candidate] = read_set
        if read_set.is_global:
            self._global.add(candidate)
            return
        for block in read_set.blocks:
            self._by_block.setdefault(block, set()).add(candidate)
        for block_id in read_set.block_ids:
            self._by_block.setdefault(block_id, set()).add(candidate)
        for name in read_set.relations:
            self._by_relation.setdefault(name, set()).add(candidate)
        for name, mask in read_set.key_masks:
            self._by_key_mask.setdefault(name, {}).setdefault(mask, set()).add(
                candidate
            )

    def remove(self, candidate: Candidate) -> None:
        """Forget *candidate* (no-op if untracked)."""
        read_set = self._reads.pop(candidate, None)
        if read_set is None:
            return
        if read_set.is_global:
            self._global.discard(candidate)
            return
        for block in list(read_set.blocks) + list(read_set.block_ids):
            members = self._by_block.get(block)
            if members is not None:
                members.discard(candidate)
                if not members:
                    del self._by_block[block]
        for name in read_set.relations:
            members = self._by_relation.get(name)
            if members is not None:
                members.discard(candidate)
                if not members:
                    del self._by_relation[name]
        for name, mask in read_set.key_masks:
            masks = self._by_key_mask.get(name)
            if masks is None:
                continue
            members = masks.get(mask)
            if members is not None:
                members.discard(candidate)
                if not members:
                    del masks[mask]
                    if not masks:
                        del self._by_key_mask[name]

    def clear(self) -> None:
        """Forget every candidate."""
        self._reads.clear()
        self._by_block.clear()
        self._by_relation.clear()
        self._by_key_mask.clear()
        self._global.clear()

    # -- queries -----------------------------------------------------------------

    def read_set(self, candidate: Candidate) -> Optional[ReadSet]:
        """The recorded read set of *candidate* (``None`` if untracked)."""
        return self._reads.get(candidate)

    def candidates(self) -> Iterable[Candidate]:
        """Every tracked candidate."""
        return self._reads.keys()

    def candidates_for_block(self, block: SupportKey) -> Set[Candidate]:
        """Candidates whose decision probed *block* (global ones excluded).

        *block* is an object-space block key or a columnar block id,
        matching whichever space the read sets were captured in.
        """
        return set(self._by_block.get(block, _EMPTY))

    def candidates_for_relation(self, name: str) -> Set[Candidate]:
        """Candidates whose decision scanned relation *name* in full."""
        return set(self._by_relation.get(name, _EMPTY))

    @property
    def global_candidates(self) -> Set[Candidate]:
        """Candidates dirtied by *every* mutation (domain/opaque read sets)."""
        return set(self._global)

    @property
    def has_global(self) -> bool:
        """``True`` when some candidate must be re-decided on any change."""
        return bool(self._global)

    def dirty_for(self, changes: ChangeSet) -> Set[Candidate]:
        """The candidates whose verdict may be changed by *changes*.

        The union of the global candidates, the candidates that probed a
        touched block (in either key space — the resolver maps each touched
        block into the columnar id space too), the candidates holding a key
        mask that some touched fact's key constants match, and the
        candidates that scanned a touched relation.
        """
        dirty: Set[Candidate] = set(self._global)
        resolver = self._block_id_resolver
        for block in changes.touched_blocks():
            dirty |= self._by_block.get(block, _EMPTY)
            if resolver is not None:
                block_id = resolver(block[0], block[1])
                if block_id is not None:
                    dirty |= self._by_block.get(block_id, _EMPTY)
            masks = self._by_key_mask.get(block[0])
            if masks:
                key = block[1]
                for mask, members in masks.items():
                    if len(mask) == len(key) and all(
                        m is None or m == k for m, k in zip(mask, key)
                    ):
                        dirty |= members
        for name in changes.touched_relations():
            dirty |= self._by_relation.get(name, _EMPTY)
        return dirty

    def route(
        self,
        candidate: Candidate,
        shard_of_key: Callable[[Tuple[Constant, ...]], int],
    ) -> Optional[int]:
        """The single shard owning every block of *candidate*'s last decision.

        Routing hint for the sharded runtime: *shard_of_key* maps a block's
        key constants to its owning shard.  Returns that shard when the
        recorded read set names concrete blocks only — no global reads, no
        relation scans, no wildcard key masks (a ``None`` position matches
        keys on any shard), and, for id-space blocks, a decoder to recover
        their keys — and every one of them lands on the same shard.
        Returns ``None`` otherwise (including for untracked candidates); a
        ``None`` is never wrong, just unrouted.
        """
        read_set = self._reads.get(candidate)
        if read_set is None or read_set.is_global or read_set.relations:
            return None
        if read_set.block_ids and self._block_key_decoder is None:
            return None
        shard: Optional[int] = None
        keys = [key for _name, key in read_set.blocks]
        for block_id in read_set.block_ids:
            keys.append(self._block_key_decoder(block_id)[1])
        for _name, mask in read_set.key_masks:
            if any(m is None for m in mask):
                return None
            keys.append(mask)
        for key in keys:
            owner = shard_of_key(tuple(key))
            if shard is None:
                shard = owner
            elif owner != shard:
                return None
        return shard

    def dependencies_of(self, candidate: Candidate) -> int:
        """How many block/relation entries support *candidate* (0 if global)."""
        read_set = self._reads.get(candidate)
        if read_set is None or read_set.is_global:
            return 0
        return (
            len(read_set.blocks)
            + len(read_set.block_ids)
            + len(read_set.key_masks)
            + len(read_set.relations)
        )

    def __len__(self) -> int:
        return len(self._reads)

    def __contains__(self, candidate: object) -> bool:
        return candidate in self._reads

    def __repr__(self) -> str:
        masks = sum(len(m) for m in self._by_key_mask.values())
        return (
            f"SupportIndex({len(self._reads)} candidates, "
            f"{len(self._by_block)} blocks, {masks} masks, "
            f"{len(self._by_relation)} relations, {len(self._global)} global)"
        )

    # -- invariants (exercised by the test suite) --------------------------------

    def check_invariants(self) -> None:
        """Verify the forward and inverted maps agree; raise on corruption."""
        for candidate, read_set in self._reads.items():
            if read_set.is_global:
                assert candidate in self._global, f"{candidate} missing from global set"
                continue
            for block in read_set.blocks:
                assert candidate in self._by_block.get(block, _EMPTY), (
                    f"{candidate} missing from block entry {block}"
                )
            for block_id in read_set.block_ids:
                assert candidate in self._by_block.get(block_id, _EMPTY), (
                    f"{candidate} missing from block-id entry {block_id}"
                )
            for name in read_set.relations:
                assert candidate in self._by_relation.get(name, _EMPTY), (
                    f"{candidate} missing from relation entry {name}"
                )
            for name, mask in read_set.key_masks:
                assert candidate in self._by_key_mask.get(name, {}).get(mask, _EMPTY), (
                    f"{candidate} missing from key-mask entry {(name, mask)}"
                )
        for block, members in self._by_block.items():
            assert members, f"empty block entry {block} not pruned"
            for candidate in members:
                read_set = self._reads.get(candidate)
                assert read_set is not None and (
                    block in read_set.blocks or block in read_set.block_ids
                ), f"stale block entry {block} -> {candidate}"
        for name, members in self._by_relation.items():
            assert members, f"empty relation entry {name} not pruned"
            for candidate in members:
                read_set = self._reads.get(candidate)
                assert read_set is not None and name in read_set.relations, (
                    f"stale relation entry {name} -> {candidate}"
                )
        for name, masks in self._by_key_mask.items():
            assert masks, f"empty key-mask relation entry {name} not pruned"
            for mask, members in masks.items():
                assert members, f"empty key-mask entry {(name, mask)} not pruned"
                for candidate in members:
                    read_set = self._reads.get(candidate)
                    assert read_set is not None and (name, mask) in read_set.key_masks, (
                        f"stale key-mask entry {(name, mask)} -> {candidate}"
                    )
        for candidate in self._global:
            read_set = self._reads.get(candidate)
            assert read_set is not None and read_set.is_global, (
                f"stale global entry {candidate}"
            )
