"""Delta enumeration: which *new* candidate answers does an insertion create?

The candidate answers of an open query ``q`` are the tuples of
``answer_tuples(q, db)`` — a monotone conjunctive evaluation.  After a batch
of mutations, every *newly satisfiable* candidate must use at least one
inserted fact in at least one atom position (discards only ever shrink the
candidate set, and a shrunk candidate re-decides to not-certain through its
support anyway).  So instead of re-running the full join per batch, the
incremental view seeds one backtracking join per (inserted fact, matching
atom) pair: the fact is pinned to that atom, the remaining atoms are joined
most-bound-first against the session's fact index, and the free-variable
tuples of the completed valuations are the (superset of) new candidates.

This is the classic delta-join of incremental view maintenance, specialised
to the sideways-information-passing evaluator of
:mod:`repro.query.evaluation`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Set

from ..model.atoms import Atom, Fact
from ..model.symbols import Constant, is_constant
from ..model.valuation import Valuation
from ..query.conjunctive import ConjunctiveQuery
from ..query.evaluation import FactIndex, match_atom
from .support import Candidate


def _boundness(atom: Atom, valuation: Valuation) -> int:
    """How many of the atom's terms are already pinned down."""
    return sum(1 for t in atom.terms if is_constant(t) or t in valuation)


def _seeded_valuations(
    atoms: Sequence[Atom], index: FactIndex, valuation: Valuation
) -> Iterator[Valuation]:
    """Complete *valuation* over the remaining *atoms* (most-bound-first)."""
    if not atoms:
        yield valuation
        return
    position = max(range(len(atoms)), key=lambda i: _boundness(atoms[i], valuation))
    atom = atoms[position]
    rest = [a for i, a in enumerate(atoms) if i != position]
    key_values: List[Constant] = []
    for term in atom.key_terms:
        value = term if is_constant(term) else valuation.get(term)
        if value is None:
            break
        key_values.append(value)  # type: ignore[arg-type]
    else:
        for fact in index.block(atom.relation.name, tuple(key_values)):
            extended = match_atom(atom, fact, valuation)
            if extended is not None:
                yield from _seeded_valuations(rest, index, extended)
        return
    for fact in index.relation(atom.relation.name):
        extended = match_atom(atom, fact, valuation)
        if extended is not None:
            yield from _seeded_valuations(rest, index, extended)


def delta_candidates(
    query: ConjunctiveQuery, index: FactIndex, added: Iterable[Fact]
) -> Set[Candidate]:
    """Candidate tuples of valuations that use at least one *added* fact.

    A superset filter for novelty: the result may include candidates that
    were already enumerable before the insertion (the caller dedups against
    its known set), but every genuinely new candidate is guaranteed to be
    present.
    """
    free = query.free_variables
    atoms = query.atoms
    out: Set[Candidate] = set()
    for fact in added:
        for position, atom in enumerate(atoms):
            seed = match_atom(atom, fact, Valuation())
            if seed is None:
                continue
            rest = [a for i, a in enumerate(atoms) if i != position]
            for valuation in _seeded_valuations(rest, index, seed):
                out.add(tuple(valuation[v] for v in free))
    return out
