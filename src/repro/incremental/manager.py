"""The view manager: database observer driving all registered views.

A :class:`ViewManager` is the subscription point of the incremental
subsystem.  It owns (or wraps) a
:class:`~repro.engine.session.CertaintySession`, registers itself as an
observer on the session's database, and converts every mutation — single
``add``/``discard`` calls, whole ``remove_block`` sweeps, or coalesced
:meth:`~repro.model.database.UncertainDatabase.batch` blocks — into
:class:`~repro.model.database.ChangeSet` deliveries to each registered
:class:`~repro.incremental.view.MaterializedCertainView`.

Ordering matters and is arranged by construction: the session's fact index
is registered as an observer *before* the manager, so by the time a view
refreshes, the index (which candidate enumeration, delta joins, and the
compiled rewritings all read) already reflects the mutation.

Large dirty sets can optionally be fanned out across a
:class:`~repro.engine.parallel.ParallelCertaintySession` (``parallel_workers``):
worker-captured read sets are shipped back with the verdicts, so the
support index stays exact under parallel maintenance.

Like :class:`~repro.model.database.UncertainDatabase` itself, the manager
assumes a single writer: mutations (and hence maintenance) run on the
mutating thread.  Decisions may still fan out to worker processes.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..engine.cache import PlanCache
from ..engine.parallel import ParallelCertaintySession
from ..engine.session import CertaintySession
from ..engine.shards import ShardedCertaintySession
from ..fo.compile import ReadSet
from ..model.atoms import Fact
from ..model.database import ChangeSet, DatabaseObserver, UncertainDatabase
from ..query.conjunctive import ConjunctiveQuery
from ..store import InternTable
from .staleness import StalenessPolicy, StalenessStats
from .support import Candidate
from .view import MaterializedCertainView


class ViewManager(DatabaseObserver):
    """Keeps every registered certain-answer view fresh under mutation.

    Parameters
    ----------
    db:
        The uncertain database to observe.
    session:
        An existing :class:`CertaintySession` over *db* to decide through.
        When omitted the manager opens (and owns) one; a supplied session
        stays the caller's to close.
    plan_cache / allow_exponential / backend:
        Forwarded to the owned session (ignored when *session* is given).
        *backend* selects the execution layer — ``"columnar"`` (default)
        for integer-encoded kernels with block-id read sets, ``"object"``
        for the reference fact-dictionary path.
    full_refresh_threshold:
        Dirty fraction above which a view abandons incremental maintenance
        for a full refresh (default ``0.5``).
    parallel_workers:
        When set, dirty sets of at least *parallel_min_dirty* candidates
        are decided through a process-pool
        :class:`ParallelCertaintySession` with this worker count.  Note the
        pool re-snapshots the database after mutations, so fan-out pays off
        when per-batch decision work is large.
    shard_workers:
        When set, sharded maintenance mode: dirty sets of at least
        *parallel_min_dirty* candidates are decided through a
        :class:`~repro.engine.shards.ShardedCertaintySession` with this
        many long-lived block-hash-sharded workers.  Mutations ship to the
        workers as O(delta) integer rows — the pool is never rebuilt — and
        each worker re-decides the dirty candidates whose supporting
        blocks it owns, shipping back verdicts plus portable read sets, so
        the support index stays exact.  Mutually exclusive with
        *parallel_workers*.
    parallel_min_dirty:
        Candidate-count floor for fanning out (default ``64``).
    intern_table:
        Scoped intern table of the owned session (and of any parallel /
        sharded maintenance session).  Ignored when *session* is supplied —
        the supplied session's table governs.
    staleness:
        When set, **deferred maintenance mode**: mutations merge into one
        pending net :class:`ChangeSet` instead of refreshing views
        synchronously, and views refresh lazily — on a read that exceeds
        the policy's mutation budget or deadline, or on an explicit
        :meth:`flush`.  See :class:`~repro.incremental.staleness.StalenessPolicy`;
        progress is counted in :attr:`staleness_stats`.  ``None`` (default)
        keeps the eager always-fresh behaviour.
    clock:
        Monotonic time source for the staleness deadline (default
        :func:`time.monotonic`); injectable for deterministic tests.

    Example
    -------
    >>> with ViewManager(db) as manager:               # doctest: +SKIP
    ...     view = manager.register(open_query)
    ...     view.subscribe(on_insert=print)
    ...     with db.batch():                           # one consolidated refresh
    ...         db.add(f1); db.discard(f2)
    ...     view.answers
    """

    def __init__(
        self,
        db: UncertainDatabase,
        session: Optional[CertaintySession] = None,
        plan_cache: Optional[PlanCache] = None,
        allow_exponential: bool = False,
        full_refresh_threshold: float = 0.5,
        parallel_workers: Optional[int] = None,
        parallel_min_dirty: int = 64,
        backend: str = "columnar",
        shard_workers: Optional[int] = None,
        intern_table: Optional[InternTable] = None,
        staleness: Optional[StalenessPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not 0.0 <= full_refresh_threshold <= 1.0:
            raise ValueError("full_refresh_threshold must lie in [0, 1]")
        if parallel_workers is not None and shard_workers is not None:
            raise ValueError(
                "parallel_workers and shard_workers are mutually exclusive"
            )
        self._db = db
        if session is None:
            session = CertaintySession(
                db,
                plan_cache=plan_cache,
                allow_exponential=allow_exponential,
                backend=backend,
                intern_table=intern_table,
            )
            self._owns_session = True
        else:
            if session.db is not db:
                raise ValueError("the supplied session wraps a different database")
            self._owns_session = False
            # The supplied session's policy governs all maintenance, so the
            # parallel fan-out below must not apply a different one.
            allow_exponential = session.allow_exponential
        self._session = session
        self._full_refresh_threshold = full_refresh_threshold
        self._parallel: Optional[ParallelCertaintySession] = None
        self._parallel_min_dirty = parallel_min_dirty
        if parallel_workers is not None:
            # Created before the manager registers itself, so the parallel
            # session's mutation counter (and its inline index) are notified
            # first and snapshots are never stale at refresh time.
            self._parallel = ParallelCertaintySession(
                db,
                max_workers=parallel_workers,
                mode="process",
                min_parallel_candidates=parallel_min_dirty,
                allow_exponential=allow_exponential,
                intern_table=intern_table,
            )
        self._sharded: Optional[ShardedCertaintySession] = None
        if shard_workers is not None:
            # Same ordering rule as the parallel session: the sharded
            # session's delta router (and its inline index) register before
            # the manager, so every pending delta is already routed by the
            # time a view refresh dispatches to the shard pool.
            self._sharded = ShardedCertaintySession(
                db,
                n_shards=shard_workers,
                min_shard_candidates=parallel_min_dirty,
                allow_exponential=allow_exponential,
                intern_table=intern_table,
            )
        self._views: Dict[ConjunctiveQuery, MaterializedCertainView] = {}
        self._pending: List[ChangeSet] = []
        self._delivering = False
        self._staleness = staleness
        self._clock = clock
        self._deferred: Optional[ChangeSet] = None
        self._deferred_since: Optional[float] = None
        self._staleness_stats = StalenessStats()
        self._closed = False
        db.register_observer(self)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Detach from the database and release owned resources (idempotent)."""
        if self._closed:
            return
        self._db.unregister_observer(self)
        if self._parallel is not None:
            self._parallel.close()
        if self._sharded is not None:
            self._sharded.close()
        if self._owns_session:
            self._session.close()
        self._closed = True

    def __enter__(self) -> "ViewManager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        """``True`` once :meth:`close` has run (views no longer track)."""
        return self._closed

    # -- views -------------------------------------------------------------------

    @property
    def db(self) -> UncertainDatabase:
        """The observed database."""
        return self._db

    @property
    def session(self) -> CertaintySession:
        """The certainty session views decide through."""
        return self._session

    @property
    def sharded_session(self) -> Optional[ShardedCertaintySession]:
        """The sharded maintenance session (``None`` unless ``shard_workers``)."""
        return self._sharded

    @property
    def views(self) -> Tuple[MaterializedCertainView, ...]:
        """Every registered view, in registration order."""
        return tuple(self._views.values())

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"ViewManager({self._db!r}, {len(self._views)} views, {state})"

    def register(
        self,
        query: ConjunctiveQuery,
        allow_exponential: Optional[bool] = None,
    ) -> MaterializedCertainView:
        """Materialize the certain answers of *query* and keep them fresh.

        Registration performs the initial (full) materialization.
        Registering the same query twice returns the existing view.
        """
        self._check_open()
        existing = self._views.get(query)
        if existing is not None:
            return existing
        view = MaterializedCertainView(
            self,
            query,
            allow_exponential=allow_exponential,
            full_refresh_threshold=self._full_refresh_threshold,
        )
        self._views[query] = view
        return view

    def register_many(
        self,
        queries: Iterable[ConjunctiveQuery],
        allow_exponential: Optional[bool] = None,
    ) -> List[MaterializedCertainView]:
        """Register every query in *queries*, returning the views in order.

        The warm-start helper of the recovery path: after a
        :class:`~repro.durability.DurableStore` rebuilds a database, the
        serving layer re-registers its whole query catalog in one call and
        each view materializes against the recovered state.
        """
        return [self.register(q, allow_exponential=allow_exponential) for q in queries]

    def unregister(self, view: MaterializedCertainView) -> None:
        """Stop maintaining *view* (no-op if not registered)."""
        current = self._views.get(view.query)
        if current is view:
            del self._views[view.query]

    def refresh_all(self) -> None:
        """Force a full refresh of every view (e.g. after out-of-band doubt)."""
        self._check_open()
        # A cold refresh runs against the live database, which subsumes any
        # deferred changelog — drop it instead of replaying it afterwards.
        self._deferred = None
        self._deferred_since = None
        for view in self._views.values():
            view.refresh()

    def full_refresh_causes(self) -> Dict[str, int]:
        """Mutation-driven full-refresh cause counters, summed over views.

        Keys: ``band_opaque`` (a coarse view for an unknown reason — should
        stay zero now that every band records support), ``per_grounding``
        (self-join plans that re-classify per grounding), and ``oversized``
        (dirty sets past the threshold).  Initial materializations and
        explicit :meth:`refresh_all` calls are not attributed to a cause.
        """
        causes = {"band_opaque": 0, "per_grounding": 0, "oversized": 0}
        for view in self._views.values():
            causes["band_opaque"] += view.stats.full_refreshes_band_opaque
            causes["per_grounding"] += view.stats.full_refreshes_per_grounding
            causes["oversized"] += view.stats.full_refreshes_oversized
        return causes

    # -- observer protocol -------------------------------------------------------

    def fact_added(self, fact: Fact) -> None:
        self._enqueue(ChangeSet(added=(fact,)))

    def fact_discarded(self, fact: Fact) -> None:
        self._enqueue(ChangeSet(discarded=(fact,)))

    def batch_applied(self, changes: ChangeSet) -> None:
        self._enqueue(changes)

    def _enqueue(self, changes: ChangeSet) -> None:
        """Deliver *changes* to every view, serialising re-entrant mutations.

        A subscriber callback may trigger further database mutations; those
        arrive here re-entrantly and are queued, then drained after the
        current delivery completes — every view refresh runs against the
        *current* database, so late deliveries only confirm verdicts.

        In deferred (bounded-staleness) mode, mutations arriving outside a
        flush delivery merge into the pending changelog instead; mutations
        triggered *by* a flush's subscriber callbacks still deliver through
        the re-entrancy queue, so a flush leaves the views fully caught up
        with everything it (transitively) caused.
        """
        if self._closed:
            return
        if self._staleness is not None and not self._delivering:
            self._defer(changes)
            return
        self._deliver(changes)

    def _deliver(self, changes: ChangeSet) -> None:
        """Queue *changes* for view delivery and drain unless re-entrant."""
        self._pending.append(changes)
        if self._delivering:
            return
        self._delivering = True
        try:
            while self._pending:
                batch = self._pending.pop(0)
                for view in list(self._views.values()):
                    view.apply(batch)
        finally:
            self._delivering = False

    # -- bounded-staleness (deferred) maintenance --------------------------------

    @property
    def staleness(self) -> Optional[StalenessPolicy]:
        """The bounded-staleness policy (``None`` in eager mode)."""
        return self._staleness

    @property
    def staleness_stats(self) -> StalenessStats:
        """Deferred-maintenance counters (all zero in eager mode)."""
        return self._staleness_stats

    @property
    def pending_mutations(self) -> int:
        """Net deferred mutations not yet delivered to the views."""
        return len(self._deferred) if self._deferred is not None else 0

    def _defer(self, changes: ChangeSet) -> None:
        """Merge *changes* into the pending changelog (net semantics)."""
        if not changes:
            return
        stats = self._staleness_stats
        if self._deferred is None:
            self._deferred = ChangeSet()
            self._deferred_since = self._clock()
        for fact in changes.added:
            self._deferred.record_added(fact)
        for fact in changes.discarded:
            self._deferred.record_discarded(fact)
        stats.deferred_batches += 1
        stats.deferred_mutations += len(changes)
        stats.max_pending_mutations = max(
            stats.max_pending_mutations, len(self._deferred)
        )

    def flush(self) -> bool:
        """Deliver every deferred mutation to the views now.

        Returns ``True`` when pending work was delivered.  After a flush
        (and until the next mutation) every view read is identical to a
        cold recompute.  A no-op in eager mode, where nothing ever defers.
        """
        self._check_open()
        return self._flush("explicit")

    def _flush(self, trigger: str) -> bool:
        if self._deferred is None:
            return False
        changes = self._deferred
        self._deferred = None
        self._deferred_since = None
        stats = self._staleness_stats
        stats.flushes += 1
        if trigger == "read_budget":
            stats.flushes_on_read_budget += 1
        elif trigger == "read_deadline":
            stats.flushes_on_read_deadline += 1
        else:
            stats.flushes_explicit += 1
        if changes:
            self._deliver(changes)
        return True

    def _sync_for_read(self) -> None:
        """Read-path hook: refresh first when the policy's bounds are hit.

        Called by every :attr:`MaterializedCertainView.answers` /
        ``is_certain`` read.  A read served without flushing is *stale but
        bounded*: at most ``max_stale_mutations`` net mutations and (when a
        deadline is configured) ``refresh_deadline`` seconds behind.
        """
        if self._staleness is None or self._deferred is None or self._closed:
            return
        if self._delivering:
            # A subscriber callback reading its own view mid-delivery sees
            # the in-progress refresh; deferral cannot be flushed here.
            return
        policy = self._staleness
        if (
            policy.refresh_deadline is not None
            and self._deferred_since is not None
            and self._clock() - self._deferred_since >= policy.refresh_deadline
        ):
            self._flush("read_deadline")
            return
        if len(self._deferred) > policy.max_stale_mutations:
            self._flush("read_budget")
            return
        self._staleness_stats.stale_reads += 1

    # -- decision routing --------------------------------------------------------

    def _decide(
        self,
        query: ConjunctiveQuery,
        candidates: List[Candidate],
        support: Optional[Dict[Candidate, ReadSet]],
        allow_exponential: Optional[bool],
        support_index=None,
    ) -> List[Candidate]:
        """Decide candidates sequentially, or fan out when the set is large.

        *support_index* (the calling view's
        :class:`~repro.incremental.support.SupportIndex`) is a routing hint
        for sharded maintenance: each dirty candidate goes to the shard
        that owned the blocks of its previous decision.
        """
        if (
            self._sharded is not None
            and len(candidates) >= self._parallel_min_dirty
        ):
            return self._sharded.decide_candidates(
                query,
                candidates,
                allow_exponential=allow_exponential,
                support=support,
                support_index=support_index,
            )
        if (
            self._parallel is not None
            and len(candidates) >= self._parallel_min_dirty
        ):
            return self._parallel.decide_candidates(
                query,
                candidates,
                allow_exponential=allow_exponential,
                support=support,
            )
        return self._session.decide_candidates(
            query,
            candidates,
            allow_exponential=allow_exponential,
            support=support,
        )

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("this ViewManager is closed; its views no longer track")
