"""repro — certain conjunctive query answering over uncertain databases.

A production-quality reproduction of

    Jef Wijsen, *Charting the Tractability Frontier of Certain Conjunctive
    Query Answering*, PODS 2013 (arXiv:1301.1003).

The library models uncertain databases (relations whose primary keys may be
violated), builds attack graphs of acyclic self-join-free conjunctive
queries, classifies ``CERTAINTY(q)`` on the tractability frontier
(FO / P-not-FO / open / coNP-complete), and ships the paper's polynomial
algorithms (FO rewriting, Theorem 3, Theorem 4), its reductions (Theorem 2,
Lemma 9), the brute-force oracle, and the probabilistic-database bridge of
Section 7.

Quickstart
----------
>>> from repro import parse_query, parse_facts, UncertainDatabase, classify, is_certain
>>> q = parse_query("C(x, y | 'Rome'), R(x | 'A')")
>>> db = UncertainDatabase(parse_facts([
...     "C('PODS', 2016 | 'Rome')", "C('PODS', 2016 | 'Paris')",
...     "C('KDD', 2017 | 'Rome')",
...     "R('PODS' | 'A')", "R('KDD' | 'A')", "R('KDD' | 'B')",
... ], schema=q.schema()))
>>> classify(q).band.name
'FO'
>>> is_certain(db, q)
False

Sessions and compiled plans
---------------------------
For repeated queries against one (possibly mutating) database, the engine
subsystem separates one-time query compilation from per-database execution.
A :class:`CertaintySession` keeps an incrementally updated fact index over
the database (wired into its observer hooks) and compiles queries into
cached :class:`QueryPlan` objects, so neither classification nor indexing
is redone per call — and ``session.certain_answers(q)`` classifies the
query shape once for all candidate groundings:

>>> from repro import CertaintySession
>>> with CertaintySession(db) as session:
...     session.is_certain(q)
False

The one-shot ``solve``/``is_certain``/``certain_answers`` keep their
signatures and delegate to the same engine through a process-wide plan
cache.

Incremental certainty views
---------------------------
Under mutation-heavy traffic, a :class:`ViewManager` materializes the
certain answers of registered queries and keeps them continuously equal to
a cold recompute while the database mutates.  Fine-grained maintenance
records the *blocks* each candidate's compiled FO rewriting read (its
support) and re-decides only the candidates a mutation actually touched;
``db.batch()`` / ``db.bulk_add`` coalesce write bursts into one maintenance
step, and ``view.subscribe(on_insert, on_retract)`` streams answer-level
deltas:

>>> with ViewManager(db) as manager:                      # doctest: +SKIP
...     view = manager.register(open_query)
...     with db.batch():
...         db.add(f1); db.discard(f2)
...     view.answers        # == certain_answers(db, open_query), maintained

Serving certain answers
-----------------------
The :mod:`repro.service` layer hosts isolated tenants (each with a private
:class:`InternTable`, database, session, and bounded-staleness views)
behind band-aware admission control: FO-band requests run inline on the
hot compiled path, harder bands queue onto a bounded worker pool:

>>> from repro.service import CertaintyService                # doctest: +SKIP
>>> with CertaintyService(max_workers=4) as svc:
...     svc.create_tenant("acme", facts=facts)
...     svc.certain_answers("acme", q, timeout=1.0)
"""

from .attacks import Attack, AttackCycle, AttackGraph
from .certainty import (
    CertaintyOutcome,
    IntractableQueryError,
    UnsupportedQueryError,
    certain_answers,
    certain_brute_force,
    certain_cycle_query,
    certain_fo,
    certain_fo_rewriting,
    certain_terminal_cycles,
    is_certain,
    purify,
    solve,
    theorem2_reduction,
)
from .core import (
    Classification,
    ComplexityBand,
    classify,
    classify_cached,
    classify_corpus,
    frontier_table,
)
from .durability import (
    ChangelogWriter,
    DurabilityError,
    DurableStore,
    SegmentCorruption,
    read_changelog,
    read_segment,
    write_segment,
)
from .engine import (
    CacheStats,
    CertaintySession,
    DeadlineExceeded,
    ParallelCertaintySession,
    PlanCache,
    QueryPlan,
    ShardedCertaintySession,
    certain_answers_parallel,
    certain_answers_sharded,
    compile_plan,
    default_plan_cache,
    shard_of_key,
)
from .faults import FaultInjector, FaultPlan, FaultSpec, InjectedFault, inject
from .fo import certain_rewriting, evaluate_sentence
from .incremental import (
    MaterializedCertainView,
    StalenessPolicy,
    StalenessStats,
    SupportIndex,
    ViewManager,
)
from .model import (
    Atom,
    ChangeSet,
    Constant,
    DatabaseSchema,
    Fact,
    RelationSchema,
    UncertainDatabase,
    Valuation,
    Variable,
    count_repairs,
    enumerate_repairs,
)
from .probability import BIDDatabase, is_safe, probability, probability_safe_plan
from .service import (
    AdmissionController,
    AdmissionRejected,
    AdmissionTicket,
    CertaintyService,
    CircuitOpen,
    Tenant,
)
from .store import (
    ColumnarFactIndex,
    ColumnarFactStore,
    ColumnarSnapshot,
    InternTable,
    global_intern_table,
)
from .query import (
    ConjunctiveQuery,
    JoinTree,
    build_join_tree,
    cycle_query_ac,
    cycle_query_c,
    figure2_q1,
    figure4_query,
    kolaitis_pema_q0,
    parse_facts,
    parse_query,
    satisfies,
)

__version__ = "1.0.0"

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "AdmissionTicket",
    "Atom",
    "Attack",
    "AttackCycle",
    "AttackGraph",
    "BIDDatabase",
    "CacheStats",
    "CertaintyOutcome",
    "CertaintyService",
    "CertaintySession",
    "ChangeSet",
    "ChangelogWriter",
    "CircuitOpen",
    "Classification",
    "ColumnarFactIndex",
    "ColumnarFactStore",
    "ColumnarSnapshot",
    "ComplexityBand",
    "ConjunctiveQuery",
    "Constant",
    "DatabaseSchema",
    "DeadlineExceeded",
    "DurabilityError",
    "DurableStore",
    "Fact",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "InternTable",
    "IntractableQueryError",
    "JoinTree",
    "MaterializedCertainView",
    "ParallelCertaintySession",
    "PlanCache",
    "QueryPlan",
    "RelationSchema",
    "SegmentCorruption",
    "ShardedCertaintySession",
    "StalenessPolicy",
    "StalenessStats",
    "SupportIndex",
    "Tenant",
    "UncertainDatabase",
    "UnsupportedQueryError",
    "Valuation",
    "Variable",
    "ViewManager",
    "__version__",
    "build_join_tree",
    "certain_answers",
    "certain_answers_parallel",
    "certain_answers_sharded",
    "certain_brute_force",
    "certain_cycle_query",
    "certain_fo",
    "certain_fo_rewriting",
    "certain_rewriting",
    "certain_terminal_cycles",
    "classify",
    "classify_cached",
    "classify_corpus",
    "compile_plan",
    "default_plan_cache",
    "count_repairs",
    "cycle_query_ac",
    "cycle_query_c",
    "enumerate_repairs",
    "evaluate_sentence",
    "figure2_q1",
    "figure4_query",
    "frontier_table",
    "global_intern_table",
    "inject",
    "is_certain",
    "is_safe",
    "kolaitis_pema_q0",
    "parse_facts",
    "parse_query",
    "probability",
    "probability_safe_plan",
    "purify",
    "read_changelog",
    "read_segment",
    "satisfies",
    "shard_of_key",
    "solve",
    "theorem2_reduction",
    "write_segment",
]
