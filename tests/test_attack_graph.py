"""Tests for repro.attacks: closures, attack graphs, weak/strong attacks."""

import pytest

from repro.attacks import (
    AttackGraph,
    all_box_closures,
    all_plus_closures,
    box_closure,
    plus_closure,
)
from repro.query import (
    all_join_trees,
    cycle_query_ac,
    figure2_q1,
    figure4_query,
    fuxman_miller_cfree_example,
    kolaitis_pema_q0,
    parse_query,
)


def _names(variables):
    return {v.name for v in variables}


class TestClosures:
    def test_example2_plus_closures(self):
        """F+, G+, H+, I+ exactly as computed in Example 2."""
        q1 = figure2_q1()
        atoms = {a.name: a for a in q1.atoms}
        assert _names(plus_closure(q1, atoms["R"])) == {"u"}
        assert _names(plus_closure(q1, atoms["S"])) == {"y"}
        assert _names(plus_closure(q1, atoms["T"])) == {"x", "z"}
        assert _names(plus_closure(q1, atoms["P"])) == {"x", "y", "z"}

    def test_example4_box_closures(self):
        """F⊞, G⊞, H⊞, I⊞ exactly as computed in Example 4."""
        q1 = figure2_q1()
        atoms = {a.name: a for a in q1.atoms}
        assert _names(box_closure(q1, atoms["R"])) == {"u", "x", "y", "z"}
        assert _names(box_closure(q1, atoms["S"])) == {"x", "y", "z"}
        assert _names(box_closure(q1, atoms["T"])) == {"x", "y", "z"}
        assert _names(box_closure(q1, atoms["P"])) == {"x", "y", "z"}

    def test_plus_subset_of_box(self):
        for query in (figure2_q1(), figure4_query(), cycle_query_ac(3), kolaitis_pema_q0()):
            plus = all_plus_closures(query)
            box = all_box_closures(query)
            for atom in query.atoms:
                assert plus[atom] <= box[atom]

    def test_closure_requires_member_atom(self):
        q1 = figure2_q1()
        foreign = fuxman_miller_cfree_example().atoms[0]
        with pytest.raises(ValueError):
            plus_closure(q1, foreign)


class TestFigure2AttackGraph:
    @pytest.fixture
    def graph(self):
        return AttackGraph(figure2_q1())

    def test_attacks_from_f(self, graph):
        atoms = {a.name: a for a in graph.query.atoms}
        f = atoms["R"]
        assert {t.name for t in graph.attacks_from(f)} == {"S", "T", "P"}

    def test_h_attacks_only_g(self, graph):
        atoms = {a.name: a for a in graph.query.atoms}
        assert {t.name for t in graph.attacks_from(atoms["T"])} == {"S"}

    def test_h_does_not_attack_f(self, graph):
        atoms = {a.name: a for a in graph.query.atoms}
        assert not graph.has_attack(atoms["T"], atoms["R"])

    def test_g_to_f_is_the_only_strong_attack(self, graph):
        strong = [a for a in graph.attacks if a.is_strong]
        assert len(strong) == 1
        assert strong[0].source.name == "S" and strong[0].target.name == "R"

    def test_graph_is_cyclic(self, graph):
        assert not graph.is_acyclic()
        assert graph.topological_order() is None

    def test_no_unattacked_atom_is_wrong_here(self, graph):
        # q1 has an unattacked atom? F is attacked by G, G by F/H, H by F, I by F/G.
        assert graph.unattacked_atoms() == []

    def test_degrees(self, graph):
        atoms = {a.name: a for a in graph.query.atoms}
        assert graph.out_degree(atoms["R"]) == 3
        assert graph.in_degree(atoms["S"]) == 2


class TestOtherAttackGraphs:
    def test_fm_query_is_acyclic(self):
        graph = AttackGraph(fuxman_miller_cfree_example())
        assert graph.is_acyclic()
        order = graph.topological_order()
        assert [a.name for a in order] == ["R", "S"]

    def test_figure4_structure(self):
        graph = AttackGraph(figure4_query())
        atoms = {a.name: a for a in graph.query.atoms}
        assert graph.unattacked_atoms() == [atoms["R0"]]
        for first, second in (("R1", "R2"), ("R3", "R4"), ("R5", "R6")):
            assert graph.is_weak_attack(atoms[first], atoms[second])
            assert graph.is_weak_attack(atoms[second], atoms[first])

    def test_ack_every_ring_atom_attacks_every_other_atom(self):
        query = cycle_query_ac(3)
        graph = AttackGraph(query)
        sk = query.atom_with_relation("S3")
        ring = [a for a in query.atoms if a is not sk]
        for source in ring:
            for target in query.atoms:
                if source != target:
                    assert graph.has_attack(source, target)
        assert graph.attacks_from(sk) == []

    def test_q0_strong_cycle(self):
        graph = AttackGraph(kolaitis_pema_q0())
        atoms = {a.name: a for a in graph.query.atoms}
        assert graph.has_attack(atoms["R0"], atoms["S0"])
        assert graph.has_attack(atoms["S0"], atoms["R0"])
        assert graph.is_strong_attack(atoms["S0"], atoms["R0"]) or graph.is_strong_attack(
            atoms["R0"], atoms["S0"]
        )

    def test_self_join_rejected(self):
        with pytest.raises(ValueError):
            AttackGraph(parse_query("R(x | y), R(y | z)"))

    def test_join_tree_independence(self):
        """Attack graphs are the same no matter which join tree is used (Wijsen 2012)."""
        for query in (figure2_q1(), parse_query("A(x | y), B(y | z), D(y | w)")):
            trees = all_join_trees(query, limit=20)
            assert len(trees) >= 1
            reference = AttackGraph(query, join_tree=trees[0]).to_edge_set()
            for tree in trees[1:]:
                assert AttackGraph(query, join_tree=tree).to_edge_set() == reference

    def test_edge_set_rendering(self):
        graph = AttackGraph(fuxman_miller_cfree_example())
        assert graph.to_edge_set() == {("R", "S")}
        assert "R" in graph.pretty()
