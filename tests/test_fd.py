"""Tests for repro.fd: functional dependencies and attribute closure."""

import pytest

from repro.fd import FDSet, FunctionalDependency, fd
from repro.model.symbols import Variable
from repro.query import figure2_q1

U, X, Y, Z = Variable("u"), Variable("x"), Variable("y"), Variable("z")


class TestFunctionalDependency:
    def test_equality_and_hash(self):
        assert fd([X], [Y]) == fd([X], [Y])
        assert fd([X], [Y]) != fd([Y], [X])
        assert len({fd([X], [Y]), fd([X], [Y])}) == 1

    def test_trivial(self):
        assert fd([X, Y], [X]).is_trivial
        assert not fd([X], [Y]).is_trivial

    def test_rejects_non_variables(self):
        with pytest.raises(TypeError):
            FunctionalDependency(["x"], [Y])

    def test_str(self):
        assert str(fd([X], [Y, Z])) in ("x→yz", "x→zy")


class TestClosure:
    def test_reflexive(self):
        assert FDSet([]).closure([X]) == {X}

    def test_single_step(self):
        assert FDSet([fd([X], [Y])]).closure([X]) == {X, Y}

    def test_transitive_chain(self):
        fds = FDSet([fd([X], [Y]), fd([Y], [Z])])
        assert fds.closure([X]) == {X, Y, Z}

    def test_composite_lhs_requires_all(self):
        fds = FDSet([fd([X, Y], [Z])])
        assert fds.closure([X]) == {X}
        assert fds.closure([X, Y]) == {X, Y, Z}

    def test_paper_example2_closures(self):
        """The closures computed in Example 2 of the paper."""
        q1 = figure2_q1()
        atoms = {a.name: a for a in q1.atoms}
        k_without_f = q1.key_fds(exclude=[atoms["R"]])
        assert k_without_f.closure(atoms["R"].key_variables) == {U}
        k_without_h = q1.key_fds(exclude=[atoms["T"]])
        assert k_without_h.closure(atoms["T"].key_variables) == {X, Z}
        k_without_i = q1.key_fds(exclude=[atoms["P"]])
        assert k_without_i.closure(atoms["P"].key_variables) == {X, Y, Z}

    def test_idempotent(self):
        fds = FDSet([fd([X], [Y]), fd([Y], [Z])])
        closure = fds.closure([X])
        assert fds.closure(closure) == closure

    def test_monotone(self):
        fds = FDSet([fd([X], [Y])])
        assert fds.closure([X]) <= fds.closure([X, Z])


class TestImplication:
    def test_implies(self):
        fds = FDSet([fd([X], [Y]), fd([Y], [Z])])
        assert fds.implies([X], [Z])
        assert not fds.implies([Z], [X])

    def test_implies_fd(self):
        fds = FDSet([fd([X], [Y])])
        assert fds.implies_fd(fd([X], [X, Y]))

    def test_equivalent(self):
        first = FDSet([fd([X], [Y, Z])])
        second = FDSet([fd([X], [Y]), fd([X], [Z])])
        assert first.equivalent(second)
        assert not first.equivalent(FDSet([fd([X], [Y])]))


class TestFDSetOperations:
    def test_deduplication(self):
        assert len(FDSet([fd([X], [Y]), fd([X], [Y])])) == 1

    def test_union(self):
        merged = FDSet([fd([X], [Y])]).union(FDSet([fd([Y], [Z])]))
        assert merged.implies([X], [Z])

    def test_attributes(self):
        assert FDSet([fd([X], [Y])]).attributes() == {X, Y}

    def test_minimal_cover_equivalent(self):
        fds = FDSet([fd([X], [Y, Z]), fd([X, Y], [Z]), fd([Y], [Y])])
        cover = fds.minimal_cover()
        assert cover.equivalent(fds)
        assert all(len(dependency.rhs) == 1 for dependency in cover)

    def test_keys_of(self):
        fds = FDSet([fd([X], [Y, Z])])
        keys = fds.keys_of([X, Y, Z])
        assert frozenset([X]) in keys
        assert all(not frozenset([X]) < key for key in keys)
