"""Durability tier: segments, changelog, crash recovery, intern epochs.

The harness convention throughout: *ground truth* is the live database the
mutations actually ran against (and a fresh session's certain answers over
it); *recovered* is whatever :class:`~repro.durability.DurableStore.open`
reconstructs from disk after a simulated crash.  Crash injection edits the
on-disk bytes directly — truncating a changelog mid-record, flipping bytes
inside a checksummed region — and every test asserts recovery lands
exactly on the last committed batch, never on a torn or corrupt suffix.
"""

import pickle
import struct
import zlib

import pytest

from repro import CertaintySession, UncertainDatabase, parse_facts, parse_query
from repro.durability import (
    ChangelogWriter,
    DurableStore,
    SegmentCorruption,
    read_changelog,
    read_segment,
    truncate_changelog,
    write_segment,
)
from repro.incremental import ViewManager
from repro.model.symbols import Variable
from repro.query import ConjunctiveQuery, figure2_q1, figure4_query
from repro.query.families import path_query
from repro.service import CertaintyService
from repro.store import ColumnarFactStore, InternTable
from repro.workloads import apply_batch, mutation_stream, synthetic_instance


def open_variant(query, variable_name):
    variable = Variable(variable_name)
    assert variable in query.variables
    return ConjunctiveQuery(query.atoms, free_variables=[variable])


def band_cases():
    selfjoin = parse_query("R(x | 'c'), R(y | 'c')", free=["x", "y"])
    return [
        pytest.param(open_variant(path_query(3), "x1"), False, id="fo-band"),
        pytest.param(path_query(2), False, id="fo-band-boolean"),
        pytest.param(open_variant(figure4_query(), "x"), False, id="ptime-not-fo"),
        pytest.param(open_variant(figure2_q1(), "z"), True, id="conp-band"),
        pytest.param(selfjoin, True, id="self-join-per-grounding"),
    ]


def certain(db, query, allow):
    with CertaintySession(db, allow_exponential=allow) as session:
        if query.is_boolean:
            return session.is_certain(query)
        return session.certain_answers(query)


def quickstart_db():
    q = parse_query("C(x, y | z), R(x | 'A')")
    facts = parse_facts(
        [
            "C('PODS', 2016 | 'Rome')",
            "C('PODS', 2016 | 'Paris')",
            "C('KDD', 2017 | 'Rome')",
            "R('PODS' | 'A')",
            "R('KDD' | 'A')",
            "R('KDD' | 'B')",
        ],
        schema=q.schema(),
    )
    return q, UncertainDatabase(facts)


# --------------------------------------------------------------------------------
# Segment files
# --------------------------------------------------------------------------------


class TestSegments:
    def _store(self):
        _, db = quickstart_db()
        table = InternTable()
        store = ColumnarFactStore(table=table)
        for fact in db.facts:
            store.add_fact(fact)
        return db, table, store

    def test_round_trip(self, tmp_path):
        db, table, store = self._store()
        path = tmp_path / "s.seg"
        n = write_segment(path, store, table.snapshot(), epoch=3, mutation_version=17)
        assert n == path.stat().st_size
        segment = read_segment(path)
        assert segment.epoch == 3
        assert segment.mutation_version == 17
        assert segment.fact_count() == len(db)
        rebuilt_table = InternTable.from_snapshot(segment.values)
        rebuilt = ColumnarFactStore.from_columns(segment.relations, rebuilt_table)
        assert set(rebuilt.decode_facts()) == db.facts

    def test_empty_store_round_trip(self, tmp_path):
        table = InternTable()
        store = ColumnarFactStore(table=table)
        path = tmp_path / "s.seg"
        write_segment(path, store, table.snapshot(), epoch=0, mutation_version=0)
        segment = read_segment(path)
        assert segment.fact_count() == 0
        assert segment.values == ()

    def test_bit_flip_anywhere_in_body_is_detected(self, tmp_path):
        _, table, store = self._store()
        path = tmp_path / "s.seg"
        write_segment(path, store, table.snapshot(), epoch=0, mutation_version=1)
        data = bytearray(path.read_bytes())
        header_size = struct.calcsize("<4sIQQQI")
        for offset in range(header_size, len(data), max(1, (len(data) - header_size) // 7)):
            flipped = bytearray(data)
            flipped[offset] ^= 0xFF
            path.write_bytes(bytes(flipped))
            with pytest.raises(SegmentCorruption):
                read_segment(path)
        path.write_bytes(bytes(data))
        read_segment(path)  # pristine bytes still parse

    def test_truncation_is_detected(self, tmp_path):
        _, table, store = self._store()
        path = tmp_path / "s.seg"
        write_segment(path, store, table.snapshot(), epoch=0, mutation_version=1)
        data = path.read_bytes()
        for cut in (3, len(data) // 2, len(data) - 1):
            path.write_bytes(data[:cut])
            with pytest.raises(SegmentCorruption):
                read_segment(path)

    def test_bad_magic_is_detected(self, tmp_path):
        path = tmp_path / "s.seg"
        path.write_bytes(b"NOPE" + b"\0" * 64)
        with pytest.raises(SegmentCorruption):
            read_segment(path)


# --------------------------------------------------------------------------------
# Write-ahead changelog
# --------------------------------------------------------------------------------


def _record(version):
    return (version, 0, (), (("R", 2, 1, ((version, version),)),), ())


class TestChangelog:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "wal.log"
        with ChangelogWriter(path, sync="commit") as log:
            for v in range(5):
                log.append(_record(v))
            assert log.records_written == 5
        records, valid_bytes, torn = read_changelog(path)
        assert [r[0] for r in records] == list(range(5))
        assert valid_bytes == path.stat().st_size
        assert not torn

    def test_missing_file_reads_empty(self, tmp_path):
        records, valid_bytes, torn = read_changelog(tmp_path / "absent.log")
        assert records == [] and valid_bytes == 0 and not torn

    def test_torn_tail_stops_at_last_committed(self, tmp_path):
        path = tmp_path / "wal.log"
        with ChangelogWriter(path) as log:
            for v in range(4):
                log.append(_record(v))
        committed = path.stat().st_size
        # A torn write: half of a fifth record lands, then the crash.
        payload = pickle.dumps(_record(4))
        frame = struct.pack("<II", len(payload), zlib.crc32(payload))
        with open(path, "ab") as fh:
            fh.write((frame + payload)[: len(frame) + len(payload) // 2])
        records, valid_bytes, torn = read_changelog(path)
        assert [r[0] for r in records] == list(range(4))
        assert valid_bytes == committed
        assert torn

    def test_corrupt_crc_stops_at_last_committed(self, tmp_path):
        path = tmp_path / "wal.log"
        with ChangelogWriter(path) as log:
            offsets = [0]
            for v in range(4):
                log.append(_record(v))
                offsets.append(log.bytes_written)
        data = bytearray(path.read_bytes())
        data[offsets[2] + struct.calcsize("<II") + 1] ^= 0xFF  # damage record 2
        path.write_bytes(bytes(data))
        records, valid_bytes, torn = read_changelog(path)
        assert [r[0] for r in records] == [0, 1]
        assert valid_bytes == offsets[2]
        assert torn

    def test_truncate_then_append_resumes_cleanly(self, tmp_path):
        path = tmp_path / "wal.log"
        with ChangelogWriter(path) as log:
            log.append(_record(0))
            committed = log.bytes_written
        with open(path, "ab") as fh:
            fh.write(b"\x99" * 7)  # garbage tail
        records, valid_bytes, torn = read_changelog(path)
        assert torn and valid_bytes == committed
        truncate_changelog(path, valid_bytes)
        with ChangelogWriter(path) as log:
            log.append(_record(1))
        records, _, torn = read_changelog(path)
        assert [r[0] for r in records] == [0, 1]
        assert not torn

    def test_rejects_unknown_sync_policy(self, tmp_path):
        with pytest.raises(ValueError):
            ChangelogWriter(tmp_path / "wal.log", sync="eventually")


# --------------------------------------------------------------------------------
# DurableStore: checkpoint, replay, crash recovery
# --------------------------------------------------------------------------------


class TestDurableStore:
    def test_attach_fresh_writes_initial_checkpoint(self, tmp_path):
        _, db = quickstart_db()
        with DurableStore(tmp_path) as durable:
            durable.attach(db)
            assert durable.stats.checkpoints == 1
            assert list(tmp_path.glob("segment-*.seg"))
            assert durable.facts() == tuple(durable.store.decode_facts())
            assert set(durable.facts()) == db.facts

    def test_recovery_restores_facts_and_version(self, tmp_path):
        q, db = quickstart_db()
        durable = DurableStore(tmp_path).attach(db)
        extra = parse_facts(["C('VLDB', 2018 | 'LA')", "R('VLDB' | 'A')"], schema=q.schema())
        db.bulk_add(extra)
        db.discard(extra[0])
        durable.simulate_crash()
        recovered = DurableStore.open(tmp_path)
        assert recovered.mutation_version == db.mutation_version
        assert recovered.stats.replayed_records == 2
        rdb = recovered.database()
        assert rdb.facts == db.facts
        assert rdb.mutation_version == db.mutation_version

    def test_reattach_continues_the_version_sequence(self, tmp_path):
        q, db = quickstart_db()
        DurableStore(tmp_path).attach(db).simulate_crash()
        recovered = DurableStore.open(tmp_path)
        db2 = recovered.database()
        recovered.attach(db2)
        before = db2.mutation_version
        db2.add(parse_facts(["R('Z' | 'A')"], schema=q.schema())[0])
        assert db2.mutation_version == before + 1
        recovered.simulate_crash()
        again = DurableStore.open(tmp_path)
        assert again.mutation_version == before + 1
        assert again.database().facts == db2.facts

    def test_torn_changelog_tail_recovers_last_committed_batch(self, tmp_path):
        q, db = quickstart_db()
        durable = DurableStore(tmp_path).attach(db)
        db.add(parse_facts(["R('X' | 'A')"], schema=q.schema())[0])
        committed_facts = set(db.facts)
        committed_version = db.mutation_version
        durable.simulate_crash()
        wal = next(tmp_path.glob("wal-*.log"))
        with open(wal, "ab") as fh:
            fh.write(b"\x07garbage-half-frame")
        recovered = DurableStore.open(tmp_path)
        assert recovered.stats.torn_tail_bytes > 0
        assert recovered.mutation_version == committed_version
        assert set(recovered.database().facts) == committed_facts
        # Re-attaching truncates the garbage and appends cleanly after it.
        db2 = recovered.database()
        recovered.attach(db2)
        db2.add(parse_facts(["R('Y' | 'A')"], schema=q.schema())[0])
        recovered.simulate_crash()
        final = DurableStore.open(tmp_path)
        assert final.stats.torn_tail_bytes == 0
        assert final.database().facts == db2.facts

    def test_corrupt_record_mid_log_recovers_prefix(self, tmp_path):
        q, db = quickstart_db()
        durable = DurableStore(tmp_path).attach(db)
        frontier = []
        for i in range(4):
            db.add(parse_facts([f"R('N{i}' | 'A')"], schema=q.schema())[0])
            frontier.append((set(db.facts), db.mutation_version, durable._log.bytes_written))
        durable.simulate_crash()
        wal = next(tmp_path.glob("wal-*.log"))
        data = bytearray(wal.read_bytes())
        # Damage the third appended record: recovery must stop after two.
        offset = frontier[1][2]
        data[offset + struct.calcsize("<II") + 1] ^= 0xFF
        wal.write_bytes(bytes(data))
        recovered = DurableStore.open(tmp_path)
        expected_facts, expected_version, _ = frontier[1]
        assert recovered.mutation_version == expected_version
        assert set(recovered.database().facts) == expected_facts
        assert recovered.stats.replayed_records == 2

    def test_corrupt_segment_is_skipped(self, tmp_path):
        _, db = quickstart_db()
        DurableStore(tmp_path).attach(db).simulate_crash()
        segment = next(tmp_path.glob("segment-*.seg"))
        data = bytearray(segment.read_bytes())
        data[-1] ^= 0xFF
        segment.write_bytes(bytes(data))
        recovered = DurableStore.open(tmp_path)
        assert recovered.stats.skipped_segments == 1
        assert len(recovered.store) == 0  # no older segment to fall back on

    def test_checkpoint_prunes_superseded_files(self, tmp_path):
        q, db = quickstart_db()
        with DurableStore(tmp_path) as durable:
            durable.attach(db)
            db.add(parse_facts(["R('X' | 'A')"], schema=q.schema())[0])
            durable.checkpoint()
            assert len(list(tmp_path.glob("segment-*.seg"))) == 1
            assert len(list(tmp_path.glob("wal-*.log"))) == 1

    def test_sync_never_loses_only_the_unflushed_tail(self, tmp_path):
        q, db = quickstart_db()
        durable = DurableStore(tmp_path, sync="never").attach(db)
        checkpoint_facts = set(db.facts)
        db.add(parse_facts(["R('X' | 'A')"], schema=q.schema())[0])
        durable.simulate_crash()  # drops the user-space buffer, as a crash would
        recovered = DurableStore.open(tmp_path)
        # The changelog record rode the unflushed buffer: recovery lands on
        # the checkpoint — a committed prefix, never a torn suffix.
        assert set(recovered.database().facts) == checkpoint_facts

    def test_commit_before_attach_is_an_error(self, tmp_path):
        _, db = quickstart_db()
        durable = DurableStore(tmp_path)
        db.register_observer(durable)  # bypassing attach() leaves no changelog
        with pytest.raises(RuntimeError):
            db.add(parse_facts(["R('X' | 'A')"], schema=parse_query("R(x | y)").schema())[0])

    def test_double_attach_is_an_error(self, tmp_path):
        _, db = quickstart_db()
        with DurableStore(tmp_path) as durable:
            durable.attach(db)
            with pytest.raises(RuntimeError):
                durable.attach(db)


# --------------------------------------------------------------------------------
# Randomized crash recovery across the complexity bands
# --------------------------------------------------------------------------------


class TestBandRecoveryEquivalence:
    @pytest.mark.parametrize("query,allow", band_cases())
    def test_recovered_certain_answers_equal_precrash(self, tmp_path, query, allow):
        for seed in range(3):
            workdir = tmp_path / f"seed{seed}"
            db = synthetic_instance(
                query, seed=seed, domain_size=4, witnesses=5, conflict_rate=0.5
            )
            durable = DurableStore(workdir).attach(db)
            stream = mutation_stream(
                query, db, steps=12, seed=seed, batch_range=(1, 4)
            )
            for step, batch in enumerate(stream):
                apply_batch(db, batch)
                if step == 5:
                    durable.checkpoint()  # mid-stream: recovery = segment + tail
            ground_truth = certain(db, query, allow)
            expected_facts = set(db.facts)
            durable.simulate_crash()

            recovered = DurableStore.open(workdir)
            rdb = recovered.database()
            assert set(rdb.facts) == expected_facts
            assert rdb.mutation_version == db.mutation_version
            assert certain(rdb, query, allow) == ground_truth

    @pytest.mark.parametrize("query,allow", band_cases())
    def test_recovered_view_equals_cold_recompute(self, tmp_path, query, allow):
        db = synthetic_instance(
            query, seed=1, domain_size=4, witnesses=5, conflict_rate=0.5
        )
        durable = DurableStore(tmp_path).attach(db)
        for batch in mutation_stream(query, db, steps=8, seed=1, batch_range=(1, 3)):
            apply_batch(db, batch)
        ground_truth = certain(db, query, allow)
        durable.simulate_crash()

        recovered = DurableStore.open(tmp_path)
        rdb = recovered.database()
        with ViewManager(rdb, allow_exponential=allow) as manager:
            (view,) = manager.register_many([query])
            if query.is_boolean:
                assert view.is_certain == ground_truth
            else:
                assert view.answers == ground_truth


# --------------------------------------------------------------------------------
# Intern-table epochs
# --------------------------------------------------------------------------------


class TestEpochRotation:
    def _churn(self, tmp_path, **store_kwargs):
        """Write then delete many facts so most interned ids go dead."""
        q = parse_query("R(x | y)")
        schema = q.schema()
        db = UncertainDatabase(schema=schema)
        durable = DurableStore(tmp_path, **store_kwargs).attach(db)
        generations = [
            parse_facts([f"R('k{g}-{i}' | 'v{g}-{i}')" for i in range(20)], schema=schema)
            for g in range(5)
        ]
        for facts in generations:
            db.bulk_add(facts)
        for facts in generations[:-1]:  # keep only the last generation live
            db.bulk_discard(facts)
        return q, db, durable

    def test_rotation_compacts_to_live_constants(self, tmp_path):
        _, db, durable = self._churn(tmp_path)
        table = durable.table
        assert table.memory_stats()["live_fraction"] < 0.5
        before = len(table)
        summary = durable.checkpoint(rotate=True)
        assert summary["rotated"]
        assert durable.epoch == 1
        # The acceptance bound: post-rotation id count never exceeds the
        # number of distinct constants in the live facts.
        distinct_live = len({c for f in db.facts for c in f.terms})
        assert len(durable.table) <= distinct_live
        assert len(durable.table) < before
        assert set(durable.store.decode_facts()) == db.facts

    def test_recovery_after_rotation(self, tmp_path):
        q, db, durable = self._churn(tmp_path)
        durable.checkpoint(rotate=True)
        db.add(parse_facts(["R('post' | 'rotation')"], schema=q.schema())[0])
        durable.simulate_crash()
        recovered = DurableStore.open(tmp_path)
        assert recovered.epoch == 1
        assert recovered.database().facts == db.facts

    def test_automatic_rotation_policy(self, tmp_path):
        _, db, durable = self._churn(tmp_path, min_rotate_ids=8)
        assert durable.should_rotate()
        summary = durable.checkpoint()  # rotate=None applies the policy
        assert summary["rotated"] and durable.epoch == 1
        assert not durable.should_rotate()  # freshly dense table
        assert durable.checkpoint()["rotated"] is False

    def test_rotation_disabled_below_id_floor(self, tmp_path):
        _, db, durable = self._churn(tmp_path, min_rotate_ids=10_000)
        assert not durable.should_rotate()
        assert durable.checkpoint()["rotated"] is False

    def test_epoch_lands_in_segment_header(self, tmp_path):
        _, db, durable = self._churn(tmp_path)
        durable.checkpoint(rotate=True)
        durable.close()
        segment = read_segment(next(tmp_path.glob("segment-*.seg")))
        assert segment.epoch == 1


# --------------------------------------------------------------------------------
# Service-layer durability
# --------------------------------------------------------------------------------


class TestServiceDurability:
    def test_tenant_recovers_across_service_restart(self, tmp_path):
        q, db = quickstart_db()
        with CertaintyService(durability_dir=tmp_path) as svc:
            tenant = svc.create_tenant("acme", facts=db.facts)
            answers = svc.certain_answers("acme", q, timeout=10)
            svc.apply("acme", [("add", parse_facts(["R('X' | 'A')"], schema=q.schema())[0])])
            expected = tenant.db.facts
            tenant.durable.simulate_crash()  # no checkpoint, no clean close

        with CertaintyService(durability_dir=tmp_path) as svc2:
            assert svc2.tenants == ("acme",)  # rediscovered from disk
            tenant2 = svc2.tenant("acme")
            assert tenant2.db.facts == expected
            assert svc2.certain_answers("acme", q, timeout=10) == answers
            assert tenant2.stats()["durability"]["mutation_version"] > 0

    def test_recovered_state_wins_over_facts_argument(self, tmp_path):
        q, db = quickstart_db()
        with CertaintyService(durability_dir=tmp_path) as svc:
            svc.create_tenant("acme", facts=db.facts)
        with CertaintyService(durability_dir=tmp_path) as svc2:
            with pytest.raises(ValueError):
                svc2.create_tenant("acme")  # already recovered at startup
            assert svc2.tenant("acme").db.facts == db.facts

    def test_checkpoint_all(self, tmp_path):
        q, db = quickstart_db()
        with CertaintyService(durability_dir=tmp_path) as svc:
            svc.create_tenant("a", facts=db.facts)
            svc.create_tenant("b")
            summaries = svc.checkpoint_all()
            assert set(summaries) == {"a", "b"}
            assert all(s is not None for s in summaries.values())

    def test_non_durable_service_checkpoint_is_none(self):
        with CertaintyService() as svc:
            svc.create_tenant("a")
            assert svc.checkpoint("a") is None
            assert svc.tenant("a").stats()["durability"] is None
