"""Tests for the FO-case solver (unattacked-atom peeling) and its rewriting."""

import pytest

from repro.certainty import UnsupportedQueryError, certain_brute_force, certain_fo, is_fo_expressible
from repro.fo import certain_rewriting, evaluate_sentence, formula_size
from repro.fo.formulas import Exists
from repro.model import UncertainDatabase
from repro.query import (
    ConjunctiveQuery,
    cycle_query_c,
    figure2_q1,
    fuxman_miller_cfree_example,
    parse_query,
    path_query,
)
from repro.workloads import figure1_database, figure1_query

from tests.helpers import random_instance

FO_QUERIES = [
    fuxman_miller_cfree_example(),
    path_query(3),
    figure1_query(),
    parse_query("A(x | y), B(x, y | w), D(w, x | v)"),
    parse_query("R(x | y, 'a'), S(y | z), T(y, z | u)"),
    parse_query("A(x | y), B(y | y, w)"),
    parse_query("Lonely(x | y)"),
]


class TestFOExpressibility:
    def test_acyclic_attack_graphs_are_fo(self):
        for query in FO_QUERIES:
            assert is_fo_expressible(query)

    def test_cyclic_attack_graph_not_fo(self):
        assert not is_fo_expressible(figure2_q1())
        assert not is_fo_expressible(cycle_query_c(2))

    def test_fo_solver_rejects_non_fo_query(self):
        db = UncertainDatabase()
        with pytest.raises(UnsupportedQueryError):
            certain_fo(db, cycle_query_c(2))

    def test_empty_query_fo(self):
        assert is_fo_expressible(ConjunctiveQuery([]))
        assert certain_fo(UncertainDatabase(), ConjunctiveQuery([]))


class TestFOSolverAgainstOracle:
    def test_figure1(self):
        assert certain_fo(figure1_database(), figure1_query()) is False

    @pytest.mark.parametrize("query", FO_QUERIES, ids=lambda q: str(q)[:40])
    def test_random_agreement(self, query, rng):
        for _ in range(12):
            db = random_instance(query, rng, domain_size=3, facts_per_relation=4)
            assert certain_fo(db, query) == certain_brute_force(db, query)

    def test_planted_witness_certain(self):
        q = fuxman_miller_cfree_example()
        schema = q.schema()
        db = UncertainDatabase([schema["R"].fact("a", "b"), schema["S"].fact("b", "c")])
        assert certain_fo(db, q)

    def test_conflicting_block_breaks_certainty(self):
        q = fuxman_miller_cfree_example()
        schema = q.schema()
        db = UncertainDatabase(
            [schema["R"].fact("a", "b"), schema["R"].fact("a", "z"), schema["S"].fact("b", "c")]
        )
        assert not certain_fo(db, q)

    def test_certain_despite_conflicts(self):
        """Both choices of the conflicting R-block lead to a witness."""
        q = fuxman_miller_cfree_example()
        schema = q.schema()
        db = UncertainDatabase(
            [
                schema["R"].fact("a", "b"),
                schema["R"].fact("a", "z"),
                schema["S"].fact("b", "c"),
                schema["S"].fact("z", "c"),
            ]
        )
        assert certain_fo(db, q)


class TestCertainRewriting:
    def test_rewriting_rejects_cyclic_attack_graph(self):
        with pytest.raises(UnsupportedQueryError):
            certain_rewriting(figure2_q1())

    def test_rewriting_structure(self):
        formula = certain_rewriting(fuxman_miller_cfree_example())
        assert isinstance(formula, Exists)
        assert formula.free_variables() == frozenset()
        assert formula_size(formula) > 5

    def test_rewriting_of_empty_query_is_true(self):
        formula = certain_rewriting(ConjunctiveQuery([]))
        assert evaluate_sentence(UncertainDatabase(), formula)

    @pytest.mark.parametrize("query", FO_QUERIES[:5], ids=lambda q: str(q)[:40])
    def test_rewriting_agrees_with_oracle(self, query, rng):
        formula = certain_rewriting(query)
        for _ in range(8):
            db = random_instance(query, rng, domain_size=3, facts_per_relation=4)
            assert evaluate_sentence(db, formula) == certain_brute_force(db, query)

    def test_rewriting_on_figure1(self):
        formula = certain_rewriting(figure1_query())
        assert evaluate_sentence(figure1_database(), formula) is False
