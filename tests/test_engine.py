"""Tests for the compiled-plan certainty engine.

Covers the three behaviours the engine adds on top of the solvers:

* plan compilation and the bounded LRU plan cache (hits, misses, evictions);
* incremental fact-index maintenance through the database observer hooks
  (``add`` / ``discard`` / ``remove_block``);
* ``CertaintySession`` equivalence with the one-shot APIs on the paper's
  Figure 1 / Figure 2 / Figure 4 query families, plus the batched
  ``certain_answers`` classifying the query shape only once.
"""

import random
import threading
import time

import pytest

from repro import (
    CertaintySession,
    PlanCache,
    UncertainDatabase,
    certain_answers,
    compile_plan,
    is_certain,
    parse_facts,
    parse_query,
    solve,
)
from repro.core import ComplexityBand, classify_invocations, reset_classify_invocations
from repro.query import (
    FactIndex,
    answer_tuples,
    figure2_q1,
    figure4_query,
    kolaitis_pema_q0,
)
from repro.workloads import figure1_database, figure1_query
from repro.workloads.generators import synthetic_instance

from helpers import random_instance


def employee_setup():
    query = parse_query("Emp(name | dept), Dept(dept | city)")
    schema = query.schema()
    db = UncertainDatabase(
        parse_facts(
            [
                "Emp('ada' | 'db')",
                "Emp('bob' | 'os')",
                "Emp('bob' | 'net')",
                "Dept('db' | 'Mons')",
                "Dept('os' | 'Mons')",
                "Dept('net' | 'Paris')",
                "Dept('net' | 'Lille')",
            ],
            schema=schema,
        )
    )
    open_query = parse_query(
        "Emp(name | dept), Dept(dept | 'Mons')", free=["name"], schema=schema
    )
    return db, query, open_query


class TestQueryPlan:
    def test_compile_fixes_band_and_method(self):
        plan = compile_plan(figure1_query())
        assert plan.band is ComplexityBand.FO
        assert plan.method == "fo-rewriting"
        assert plan.atom_order  # greedy join order is part of the plan

    def test_compile_nonboolean_uses_representative_grounding(self):
        _, _, open_query = employee_setup()
        plan = compile_plan(open_query)
        assert plan.source_query is open_query
        assert plan.query.is_boolean
        assert plan.band is ComplexityBand.FO

    def test_execute_matches_one_shot_solve(self):
        db = figure1_database()
        query = figure1_query()
        plan = compile_plan(query)
        outcome = plan.execute(db)
        reference = solve(db, query)
        assert outcome.certain == reference.certain
        assert outcome.method == reference.method

    def test_brute_force_plan_requires_opt_in(self):
        q1 = figure2_q1()
        plan = compile_plan(q1)
        assert plan.method == "brute-force"
        db = random_instance(q1, random.Random(0))
        with pytest.raises(Exception):
            plan.execute(db)  # coNP-complete without allow_exponential
        assert plan.execute(db, allow_exponential=True).certain in (True, False)


class TestPlanCache:
    def test_hit_after_miss(self):
        cache = PlanCache(maxsize=4)
        q = figure1_query()
        first = cache.get_or_compile(q)
        second = cache.get_or_compile(q)
        assert first is second
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_semantically_equal_queries_share_a_plan(self):
        cache = PlanCache(maxsize=4)
        q = parse_query("R(x | y), S(y | z)")
        reordered = parse_query("S(y | z), R(x | y)")
        assert cache.get_or_compile(q) is cache.get_or_compile(reordered)

    def test_lru_eviction(self):
        cache = PlanCache(maxsize=2)
        q1, q2, q3 = figure1_query(), figure2_q1(), kolaitis_pema_q0()
        cache.get_or_compile(q1)
        cache.get_or_compile(q2)
        cache.get_or_compile(q1)  # refresh q1: q2 becomes LRU
        cache.get_or_compile(q3)  # evicts q2
        assert q1 in cache and q3 in cache and q2 not in cache
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_clear_resets_counters(self):
        cache = PlanCache(maxsize=2)
        cache.get_or_compile(figure1_query())
        cache.clear()
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.evictions, stats.size) == (0, 0, 0, 0)

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)


class TestPlanCacheConcurrency:
    """The cache must be safe (and non-redundant) under thread contention."""

    def test_eight_thread_stress_no_duplicate_compiles(self):
        """8 threads hammering get_or_compile: consistent stats, one compile
        per distinct query, and every thread sees the same plan object."""
        from repro.engine.plan import compile_plan
        from repro.workloads import random_acyclic_query

        cache = PlanCache(maxsize=256)
        queries = [random_acyclic_query(seed=s, atoms=3) for s in range(12)]
        compiled = []
        compile_lock = threading.Lock()

        def slow_counting_compiler(query):
            with compile_lock:
                compiled.append(query)
            time.sleep(0.002)  # widen the race window
            return compile_plan(query)

        calls_per_thread = 120
        plans_seen = [dict() for _ in range(8)]
        barrier = threading.Barrier(8)

        def worker(slot):
            barrier.wait()
            for i in range(calls_per_thread):
                query = queries[(i + slot) % len(queries)]
                plan = cache.get_or_compile(query, compiler=slow_counting_compiler)
                previous = plans_seen[slot].setdefault(query, plan)
                assert previous is plan

        threads = [threading.Thread(target=worker, args=(slot,)) for slot in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # No query was compiled twice — concurrent misses single-flight.
        assert len(compiled) == len(set(compiled)) == len(queries)
        stats = cache.stats
        assert stats.hits + stats.misses == 8 * calls_per_thread
        assert stats.misses == stats.compiles == len(queries)
        assert stats.size == len(queries)
        # All threads converged on identical plan objects per query.
        for query in queries:
            owners = {id(seen[query]) for seen in plans_seen}
            assert len(owners) == 1

    def test_failed_compile_releases_the_single_flight(self):
        cache = PlanCache(maxsize=4)
        query = figure1_query()

        calls = []

        def flaky_compiler(q):
            calls.append(q)
            if len(calls) == 1:
                raise RuntimeError("transient failure")
            from repro.engine.plan import compile_plan

            return compile_plan(q)

        with pytest.raises(RuntimeError):
            cache.get_or_compile(query, compiler=flaky_compiler)
        # The in-flight marker is gone: the next call compiles successfully.
        plan = cache.get_or_compile(query, compiler=flaky_compiler)
        assert plan is cache.get_or_compile(query)
        assert len(calls) == 2

    def test_concurrent_mixed_get_put_is_consistent(self):
        cache = PlanCache(maxsize=8)
        queries = [figure1_query(), figure2_q1(), kolaitis_pema_q0()]

        def worker():
            for _ in range(300):
                for query in queries:
                    cache.get_or_compile(query)
                    cache.get(query)
                    len(cache)
                    cache.stats

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = cache.stats
        assert stats.size == len(queries)
        assert stats.compiles == stats.misses


def assert_index_consistent(index: FactIndex, db: UncertainDatabase) -> None:
    """The incremental index must equal a fresh index over the database."""
    fresh = FactIndex(db.facts)
    assert len(index) == len(fresh) == len(db)
    assert set(index.relations()) == set(fresh.relations())
    for name in fresh.relations():
        assert set(index.relation(name)) == set(fresh.relation(name))
    for fact in db.facts:
        assert fact in index
        assert set(index.block(fact.relation.name, fact.key_terms)) == set(
            fresh.block(fact.relation.name, fact.key_terms)
        )


class TestIncrementalIndex:
    def test_add_discard_remove_block(self):
        db, _, _ = employee_setup()
        session = CertaintySession(db)
        emp = db.schema["Emp"]
        assert_index_consistent(session.index, db)

        db.add(emp.fact("cyn", "db"))
        db.add(emp.fact("cyn", "os"))  # conflicting block for cyn
        assert_index_consistent(session.index, db)

        db.discard(emp.fact("cyn", "os"))
        assert_index_consistent(session.index, db)

        db.remove_block(emp.fact("bob", "os").block_key)
        assert_index_consistent(session.index, db)

        # Discarding an absent fact is a no-op for the index too.
        db.discard(emp.fact("zz", "zz"))
        assert_index_consistent(session.index, db)

        session.close()
        db.add(emp.fact("dan", "db"))
        # After close, the index is detached and no longer updated.
        assert emp.fact("dan", "db") not in session.index

    def test_closed_session_refuses_queries(self):
        db, query, _ = employee_setup()
        session = CertaintySession(db)
        session.close()
        session.close()  # idempotent
        with pytest.raises(RuntimeError):
            session.is_certain(query)


FAMILIES = [
    ("figure1", figure1_query()),
    ("figure2-q1", figure2_q1()),
    ("figure4", figure4_query()),
    ("kolaitis-pema-q0", kolaitis_pema_q0()),
]


class TestSessionEquivalence:
    @pytest.mark.parametrize("name,query", FAMILIES, ids=[n for n, _ in FAMILIES])
    def test_session_matches_one_shot(self, name, query):
        for seed in range(3):
            db = synthetic_instance(query, seed=seed, domain_size=4, witnesses=3,
                                    noise_per_relation=3, conflict_rate=0.5)
            expected = is_certain(db, query, allow_exponential=True)
            with CertaintySession(db, allow_exponential=True) as session:
                assert session.is_certain(query) == expected
                outcome = session.solve(query)
                assert outcome.certain == expected
                assert outcome.method == solve(db, query, allow_exponential=True).method

    def test_session_tracks_mutation(self):
        db = figure1_database()
        query = figure1_query()
        with CertaintySession(db) as session:
            assert session.is_certain(query) == is_certain(db, query)
            # Resolve the uncertainty that made the query non-certain.
            ranking = db.schema["R"]
            db.discard(ranking.fact("PODS", "B"))
            assert session.is_certain(query) == is_certain(db, query)

    def test_certain_answers_equivalence(self):
        db, _, open_query = employee_setup()
        with CertaintySession(db) as session:
            assert session.certain_answers(open_query) == certain_answers(db, open_query)

    def test_boolean_query_rejected_by_certain_answers(self):
        db, query, _ = employee_setup()
        with CertaintySession(db) as session:
            with pytest.raises(ValueError):
                session.certain_answers(query)


class TestSelfJoinGroundings:
    def test_repeated_constants_collapse_atoms(self):
        """Self-join plans must re-classify per grounding.

        For ``q(x, y) :- R(x | 'c'), R(y | 'c')`` the candidate tuple
        ``('a', 'a')`` collapses the two atoms into one, turning an
        unsupported self-join shape into a plain FO query — a
        representative-grounding plan compiled from distinct placeholders
        would wrongly dispatch it to brute force.
        """
        query = parse_query("R(x | 'c'), R(y | 'c')", free=["x", "y"])
        schema = query.schema()
        db = UncertainDatabase(parse_facts(["R('a' | 'c')"], schema=schema))
        plan = compile_plan(query)
        assert plan.per_grounding

        answers = certain_answers(db, query)  # must not raise
        values = {tuple(c.value for c in t) for t in answers}
        assert ("a", "a") in values

        with CertaintySession(db) as session:
            assert session.certain_answers(query) == answers


class TestBatchedClassification:
    def test_certain_answers_classifies_shape_once(self):
        """A 10-candidate workload must not classify once per candidate."""
        query = parse_query("Emp(name | dept), Dept(dept | city)", free=["name"])
        schema = query.schema()
        rows = []
        for i in range(10):
            rows.append(f"Emp('e{i}' | 'd{i % 3}')")
        for j in range(3):
            rows.append(f"Dept('d{j}' | 'city{j}')")
        db = UncertainDatabase(parse_facts(rows, schema=schema))

        with CertaintySession(db, plan_cache=PlanCache(maxsize=8)) as session:
            candidates = len(answer_tuples(query, db.facts))
            assert candidates == 10
            reset_classify_invocations()
            answers = session.certain_answers(query)
            calls = classify_invocations()
        assert len(answers) == 10  # consistent db: every candidate is certain
        # At most one classification for the shape (zero when classify_cached
        # already knows it); the seed behaviour was >= 10.
        assert calls <= candidates / 2
        assert calls <= 1


class TestSessionIndexCoherence:
    """Differential tests: a long-lived session must agree with a fresh one.

    The session's incrementally maintained index is its single point of
    truth for candidate enumeration; after arbitrary interleavings of
    ``add`` / ``discard`` / ``remove_block`` it must produce exactly the
    answers a freshly built session (and the one-shot API) produces.
    """

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_interleaved_mutations_match_fresh_session(self, seed):
        from repro.query.families import path_query
        from repro.model.symbols import Variable
        from repro.query import ConjunctiveQuery

        base = path_query(3)
        query = ConjunctiveQuery(base.atoms, free_variables=[Variable("x1")])
        rng = random.Random(seed)
        db = synthetic_instance(
            query, seed=seed, domain_size=5, witnesses=8,
            noise_per_relation=6, conflict_rate=0.6,
        )
        relations = [atom.relation for atom in query.atoms]
        with CertaintySession(db) as session:
            for step in range(12):
                action = rng.choice(("add", "discard", "remove_block"))
                if action == "add":
                    relation = rng.choice(relations)
                    values = [f"c{rng.randrange(5)}" for _ in range(relation.arity)]
                    db.add(relation.fact(*values))
                elif action == "discard" and len(db):
                    db.discard(rng.choice(sorted(db.facts, key=str)))
                elif action == "remove_block" and db.block_keys():
                    db.remove_block(rng.choice(sorted(
                        db.block_keys(), key=lambda k: (k[0], tuple(str(c) for c in k[1]))
                    )))
                live = session.certain_answers(query)
                with CertaintySession(db) as fresh:
                    assert live == fresh.certain_answers(query), f"step {step}"
                assert live == certain_answers(db, query)
                assert_index_consistent(session.index, db)

    def test_mutations_visible_to_boolean_solve(self):
        db, query, _ = employee_setup()
        schema = db.schema
        with CertaintySession(db) as session:
            before = session.is_certain(query)
            assert before == is_certain(db, query)
            # Remove a whole conflicting block, then add it back.
            db.remove_block(("Dept", (schema["Dept"].fact("net", "x").key_terms)))
            assert session.is_certain(query) == is_certain(db, query)
            db.add(schema["Dept"].fact("net", "Paris"))
            assert session.is_certain(query) == is_certain(db, query)
